"""Learning-rate schedulers."""

from __future__ import annotations

import math

from .optimizer import Optimizer


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        decays = self._epoch // self.step_size
        self.optimizer.lr = self._base_lr * (self.gamma**decays)


class CosineAnnealingLR:
    """Cosine-anneal the learning rate from the base value to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.total_epochs)
        fraction = self._epoch / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * fraction))
        self.optimizer.lr = self.min_lr + (self._base_lr - self.min_lr) * cosine
