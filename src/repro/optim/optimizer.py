"""Gradient-descent optimizers.

The paper trains forecasting models and comparators with Adam (lr 1e-3,
weight decay 5e-4 / 1e-4); both are reproduced here, along with plain SGD
with momentum used by a few baselines and the gradient-norm clipper.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list and the zero-grad hook."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Copy the optimizer's internal state for checkpointing."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict` (bitwise, shape-checked)."""
        if state:
            raise ValueError(f"{type(self).__name__} expects an empty state dict")


def _copy_slot_arrays(slots: list[np.ndarray]) -> list[np.ndarray]:
    return [array.copy() for array in slots]


def _restore_slot_arrays(
    target: list[np.ndarray], saved: list[np.ndarray], name: str
) -> None:
    if len(saved) != len(target):
        raise ValueError(
            f"optimizer state mismatch: {len(saved)} saved {name} buffers "
            f"for {len(target)} parameters"
        )
    for slot, array in zip(target, saved):
        value = np.asarray(array)
        if value.shape != slot.shape:
            raise ValueError(
                f"optimizer state shape mismatch in {name}: "
                f"expected {slot.shape}, got {value.shape}"
            )
        slot[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad

    def state_dict(self) -> dict:
        return {"velocity": _copy_slot_arrays(self._velocity)}

    def load_state_dict(self, state: dict) -> None:
        _restore_slot_arrays(self._velocity, state["velocity"], "velocity")


class Adam(Optimizer):
    """Adam with decoupled-style weight decay (paper's optimizer)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step
        bias2 = 1.0 - beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "step": self._step,
            "m": _copy_slot_arrays(self._m),
            "v": _copy_slot_arrays(self._v),
        }

    def load_state_dict(self, state: dict) -> None:
        _restore_slot_arrays(self._m, state["m"], "m")
        _restore_slot_arrays(self._v, state["v"], "v")
        self._step = int(state["step"])


def grad_norm(parameters: Iterable[Parameter]) -> float:
    """Global L2 norm of all gradients (non-finite if any grad is).

    Overflow in the squared sum is deliberate and silenced: callers (the
    trainer's health monitor, :func:`clip_grad_norm`) detect divergence by
    checking the returned value, not by numpy warnings.
    """
    params = [p for p in parameters if p.grad is not None]
    with np.errstate(over="ignore", invalid="ignore"):
        return float(np.sqrt(np.sum([float((p.grad**2).sum()) for p in params])))


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients in place; return the norm.

    Non-finite and zero norms are returned untouched *without* scaling: a
    NaN/Inf norm would otherwise poison every gradient with NaN (or zero
    them via ``max_norm / inf``), and a zero norm would divide by zero.
    Callers that want to react to a bad norm check the returned value.
    """
    params = [p for p in parameters if p.grad is not None]
    total = grad_norm(params)
    if np.isfinite(total) and total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
