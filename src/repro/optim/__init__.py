"""Optimizers and training utilities."""

from .optimizer import SGD, Adam, Optimizer, clip_grad_norm, grad_norm
from .schedulers import CosineAnnealingLR, StepLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "grad_norm",
    "StepLR",
    "CosineAnnealingLR",
]
