"""Numerical gradient checking for the autodiff engine.

Used by the test-suite to verify every analytic backward pass against central
finite differences computed in float64.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. input ``wrt``."""
    base = [np.asarray(x, dtype=np.float64).copy() for x in inputs]
    grad = np.zeros_like(base[wrt])
    flat = base[wrt].reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*[Tensor(x) for x in base]).data.sum())
        flat[i] = original - eps
        minus = float(fn(*[Tensor(x) for x in base]).data.sum())
        flat[i] = original
        gflat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    eps: float = 1e-5,
) -> None:
    """Assert analytic gradients of ``sum(fn(*inputs))`` match finite differences.

    Raises ``AssertionError`` with the offending input index on mismatch.
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.sum().backward()
    for i, t in enumerate(tensors):
        expected = numerical_gradient(fn, inputs, wrt=i, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        np.testing.assert_allclose(
            actual,
            expected,
            atol=atol,
            rtol=rtol,
            err_msg=f"analytic vs numerical gradient mismatch for input {i}",
        )
