"""Anomaly detection for the autodiff engine: NaN/Inf provenance.

Long proxy-evaluation campaigns deliberately train pathological candidates
(huge learning rates, deep dilated stacks), so the first non-finite value in
a forward or backward pass must be attributable to the op that created it —
otherwise the NaN only surfaces epochs later as a corrupted score.  This
module is the from-scratch engine's ``torch.autograd.detect_anomaly``:

* :func:`detect_anomaly` — a context manager that turns on per-op finite
  checks in :func:`~repro.autodiff.tensor.make_op` (forward) and
  :meth:`~repro.autodiff.tensor.Tensor.backward` (gradients),
* :class:`NonFiniteError` — raised on the first non-finite value, carrying
  the originating op name, the pass (forward/backward), the enclosing module
  path, and input statistics,
* :func:`module_scope` — pushed by :class:`~repro.nn.module.Module` calls so
  errors name the module chain (for example ``CTSForecaster/STBlock/Linear``).

The checks are opt-in: when disabled (the default) the only cost is one
thread-local flag read per op, which keeps overhead well under 5%.  The
``$REPRO_ANOMALY`` environment variable seeds the default state so
process-pool evaluation workers inherit the mode from the CLI.
"""

from __future__ import annotations

import contextlib
import os
import threading

import numpy as np

ANOMALY_ENV = "REPRO_ANOMALY"

_state = threading.local()
_env_default = os.environ.get(ANOMALY_ENV, "").strip().lower() in (
    "1",
    "true",
    "on",
    "yes",
)


def anomaly_enabled() -> bool:
    """Whether per-op non-finite checks are active on this thread."""
    return getattr(_state, "enabled", _env_default)


def set_anomaly_default(enabled: bool) -> None:
    """Set the process-default mode (what threads without an explicit
    :func:`detect_anomaly` context observe).  Used by the CLI's
    ``--anomaly-mode`` so worker processes and threads inherit the mode."""
    global _env_default
    _env_default = bool(enabled)
    os.environ[ANOMALY_ENV] = "1" if enabled else "0"


@contextlib.contextmanager
def detect_anomaly(enabled: bool = True):
    """Enable (or force-disable) non-finite checks for the enclosed region."""
    previous = getattr(_state, "enabled", None)
    _state.enabled = bool(enabled)
    try:
        yield
    finally:
        if previous is None:
            del _state.enabled
        else:
            _state.enabled = previous


# ---------------------------------------------------------------------------
# Module scoping: who created the op
# ---------------------------------------------------------------------------


def _scope_stack() -> list[str]:
    stack = getattr(_state, "scope", None)
    if stack is None:
        stack = []
        _state.scope = stack
    return stack


@contextlib.contextmanager
def module_scope(name: str):
    """Record ``name`` as the enclosing module for ops created inside."""
    stack = _scope_stack()
    stack.append(name)
    try:
        yield
    finally:
        stack.pop()


def current_module_path() -> str:
    """The active module chain, for example ``"AHC/GIN/Linear"``."""
    return "/".join(_scope_stack())


# ---------------------------------------------------------------------------
# The typed error and its provenance payload
# ---------------------------------------------------------------------------


class NonFiniteError(FloatingPointError):
    """A non-finite value appeared in a tracked autodiff operation.

    Attributes:
        op: name of the originating operation (``"exp"``, ``"matmul"``, ...).
        phase: ``"forward"`` or ``"backward"``.
        module_path: the ``/``-joined module chain active when the op ran.
        input_stats: one summary dict per op input (shape, finite min/max/
            mean, and the non-finite element count).
    """

    def __init__(
        self,
        message: str,
        op: str = "<unknown>",
        phase: str = "forward",
        module_path: str = "",
        input_stats: list[dict] | None = None,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.phase = phase
        self.module_path = module_path
        self.input_stats = input_stats or []


def array_stats(array: np.ndarray) -> dict:
    """A compact numeric summary of ``array`` for provenance messages."""
    array = np.asarray(array)
    finite = np.isfinite(array)
    n_bad = int(array.size - finite.sum())
    stats: dict = {"shape": tuple(array.shape), "non_finite": n_bad}
    if finite.any():
        with np.errstate(over="ignore", invalid="ignore"):
            good = array[finite]
            stats.update(
                min=float(good.min()), max=float(good.max()), mean=float(good.mean())
            )
    return stats


def _format_stats(input_stats: list[dict]) -> str:
    parts = []
    for i, stats in enumerate(input_stats):
        desc = f"input[{i}] shape={stats['shape']}"
        if "min" in stats:
            desc += f" min={stats['min']:.3g} max={stats['max']:.3g}"
        if stats.get("non_finite"):
            desc += f" non_finite={stats['non_finite']}"
        parts.append(desc)
    return "; ".join(parts)


def raise_non_finite(
    op: str, phase: str, out_data: np.ndarray, parents: tuple
) -> None:
    """Build and raise a :class:`NonFiniteError` with full provenance."""
    input_stats = [array_stats(p.data) for p in parents]
    module_path = current_module_path()
    where = f" in module {module_path!r}" if module_path else ""
    out_summary = array_stats(out_data)
    raise NonFiniteError(
        f"non-finite values in {phase} pass of op {op!r}{where}: "
        f"{out_summary['non_finite']}/{int(np.asarray(out_data).size)} bad "
        f"elements ({_format_stats(input_stats)})",
        op=op,
        phase=phase,
        module_path=module_path,
        input_stats=input_stats,
    )


def op_name_of(backward) -> str:
    """Derive the public op name from a backward closure's qualname.

    Backward closures are defined inside their op function, so the qualname
    looks like ``"exp.<locals>.backward"`` — the leading component is the op.
    """
    qualname = getattr(backward, "__qualname__", "")
    return qualname.split(".", 1)[0] if qualname else "<unknown>"
