"""Differentiable operations on :class:`~repro.autodiff.tensor.Tensor`.

Every function takes tensors (or array-likes) and returns a new tensor whose
backward closure propagates gradients to its inputs.  Importing this module
also attaches the Python arithmetic operators to ``Tensor`` so expressions
read naturally (``a @ b + c``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .pool import active_pool, take_buffer
from .tensor import Tensor, as_tensor, make_op, unbroadcast

# ---------------------------------------------------------------------------
# Buffer-pool plumbing
#
# When a BufferPool is active (training steps, see repro.autodiff.pool) the
# elementwise and matmul ops compute into recycled ``out=`` buffers instead
# of fresh allocations.  A ufunc writing into an ``out`` buffer of the exact
# result dtype produces bitwise-identical values, so pooled and pool-free
# runs cannot diverge; with no active pool these helpers reduce to the plain
# numpy expressions.
# ---------------------------------------------------------------------------


def _unary(ufunc, a_data: np.ndarray) -> np.ndarray:
    return ufunc(a_data, out=take_buffer(a_data.shape, a_data.dtype))


def _binary(ufunc, a_data: np.ndarray, b_data: np.ndarray) -> np.ndarray:
    pool = active_pool()
    if pool is None:
        return ufunc(a_data, b_data)
    # Fast path for the overwhelmingly common same-shape/same-dtype case;
    # broadcast_shapes/result_type cost real time at ~1e3 calls per step.
    if a_data.shape == b_data.shape:
        shape = a_data.shape
    else:
        shape = np.broadcast_shapes(a_data.shape, b_data.shape)
    if a_data.dtype == b_data.dtype:
        dtype = a_data.dtype
    else:
        dtype = np.result_type(a_data, b_data)
    return ufunc(a_data, b_data, out=pool.take(shape, dtype))


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = _binary(np.add, a.data, b.data)

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(grad, b.shape)

    return make_op(out, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = _binary(np.subtract, a.data, b.data)

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape)

    return make_op(out, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = _binary(np.multiply, a.data, b.data)

    def backward(grad):
        return (
            unbroadcast(_binary(np.multiply, grad, b.data), a.shape),
            unbroadcast(_binary(np.multiply, grad, a.data), b.shape),
        )

    return make_op(out, (a, b), backward)


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = _binary(np.divide, a.data, b.data)

    def backward(grad):
        return (
            unbroadcast(_binary(np.divide, grad, b.data), a.shape),
            unbroadcast(
                _binary(
                    np.divide,
                    _binary(np.multiply, -grad, a.data),
                    _binary(np.multiply, b.data, b.data),
                ),
                b.shape,
            ),
        )

    return make_op(out, (a, b), backward)


def neg(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad):
        return (-grad,)

    return make_op(_unary(np.negative, a.data), (a,), backward)


def power(a, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a Python-scalar exponent."""
    a = as_tensor(a)
    out = a.data**exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1),)

    return make_op(out, (a,), backward)


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out = np.sqrt(a.data)

    def backward(grad):
        return (grad * 0.5 / np.maximum(out, 1e-12),)

    return make_op(out, (a,), backward)


def absolute(a) -> Tensor:
    a = as_tensor(a)
    out = np.abs(a.data)

    def backward(grad):
        return (grad * np.sign(a.data),)

    return make_op(out, (a,), backward)


def exp(a) -> Tensor:
    a = as_tensor(a)
    out = _unary(np.exp, a.data)

    def backward(grad):
        return (_binary(np.multiply, grad, out),)

    return make_op(out, (a,), backward)


def log(a) -> Tensor:
    a = as_tensor(a)
    out = _unary(np.log, a.data)

    def backward(grad):
        return (_binary(np.divide, grad, a.data),)

    return make_op(out, (a,), backward)


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out = _unary(np.tanh, a.data)

    def backward(grad):
        return (grad * (1.0 - out * out),)

    return make_op(out, (a,), backward)


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    # Stable formulation: exp of a non-positive argument on both branches.
    # Selecting the numerator before the (single) divide is bitwise-equal to
    # the textbook where(pos, 1/(1+e), e/(1+e)) but runs one full-size
    # divide instead of two.
    positive = a.data >= 0
    e = np.exp(np.where(positive, -a.data, a.data))
    numerator = np.where(positive, 1.0, e)
    np.add(e, 1.0, out=e)  # the shared denominator, reusing e's buffer
    out = np.divide(numerator, e, out=take_buffer(a.shape, numerator.dtype))

    def backward(grad):
        return (grad * out * (1.0 - out),)

    return make_op(out, (a,), backward)


def relu(a) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    buffer = take_buffer(a.shape, a.dtype)
    if buffer is None:
        out = np.where(mask, a.data, 0.0)
    else:
        # Bitwise-equal to the np.where formulation: keep a where the mask
        # holds, exact 0.0 elsewhere (np.where lacks an ``out=`` parameter).
        buffer.fill(0.0)
        np.copyto(buffer, a.data, where=mask)
        out = buffer

    def backward(grad):
        return (_binary(np.multiply, grad, mask),)

    return make_op(out, (a,), backward)


def leaky_relu(a, negative_slope: float = 0.01) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out = np.where(mask, a.data, negative_slope * a.data)

    def backward(grad):
        return (grad * np.where(mask, 1.0, negative_slope),)

    return make_op(out, (a,), backward)


def gelu(a) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    a = as_tensor(a)
    c = np.sqrt(2.0 / np.pi).astype(a.dtype)
    inner = c * (a.data + 0.044715 * a.data**3)
    t = np.tanh(inner)
    out = 0.5 * a.data * (1.0 + t)

    def backward(grad):
        dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * a.data**2)
        return (grad * (0.5 * (1.0 + t) + 0.5 * a.data * dt),)

    return make_op(out, (a,), backward)


def clip(a, low: float, high: float) -> Tensor:
    a = as_tensor(a)
    out = np.clip(a.data, low, high)
    mask = (a.data >= low) & (a.data <= high)

    def backward(grad):
        return (grad * mask,)

    return make_op(out, (a,), backward)


def maximum(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = np.maximum(a.data, b.data)
    mask = a.data >= b.data

    def backward(grad):
        return (
            unbroadcast(grad * mask, a.shape),
            unbroadcast(grad * ~mask, b.shape),
        )

    return make_op(out, (a, b), backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Select from ``a`` where ``condition`` (a plain boolean array) else ``b``."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out = np.where(cond, a.data, b.data)

    def backward(grad):
        return (
            unbroadcast(grad * cond, a.shape),
            unbroadcast(grad * ~cond, b.shape),
        )

    return make_op(out, (a, b), backward)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def _normalize_axis(axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(ax % ndim for ax in axis)


def _expand_grad(g: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Materialize a reduction gradient broadcast up to ``shape`` (pooled)."""
    buffer = take_buffer(shape, g.dtype)
    if buffer is None:
        return np.broadcast_to(g, shape).copy()
    np.copyto(buffer, g)
    return buffer


def sum(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = as_tensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)
    axes = _normalize_axis(axis, a.ndim)

    def backward(grad):
        g = grad
        if not keepdims:
            g = np.expand_dims(g, axes) if axes else g
        return (_expand_grad(g, a.shape),)

    return make_op(out, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.mean(axis=axis, keepdims=keepdims)
    axes = _normalize_axis(axis, a.ndim)
    count = int(np.prod([a.shape[ax] for ax in axes])) if axes else 1

    def backward(grad):
        g = grad / count
        if not keepdims:
            g = np.expand_dims(g, axes) if axes else g
        return (_expand_grad(g, a.shape),)

    return make_op(out, (a,), backward)


def amax(a, axis: int, keepdims: bool = False) -> Tensor:
    """Max reduction along a single axis; gradient flows to first argmax."""
    a = as_tensor(a)
    out = a.data.max(axis=axis, keepdims=keepdims)
    out_kd = a.data.max(axis=axis, keepdims=True)
    mask = a.data == out_kd
    # Split gradient equally among ties to stay a valid subgradient.
    counts = mask.sum(axis=axis, keepdims=True)

    def backward(grad):
        g = grad if keepdims else np.expand_dims(grad, axis)
        return (g * mask / counts,)

    return make_op(out, (a,), backward)


def variance(a, axis=None, keepdims: bool = False) -> Tensor:
    """Population variance built from differentiable primitives."""
    m = mean(a, axis=axis, keepdims=True)
    centered = sub(a, m)
    return mean(mul(centered, centered), axis=axis, keepdims=keepdims)


# ---------------------------------------------------------------------------
# Linear algebra and shape manipulation
# ---------------------------------------------------------------------------


def _matmul_data(a_data: np.ndarray, b_data: np.ndarray) -> np.ndarray:
    """``np.matmul`` writing into a pooled buffer when a pool is active."""
    pool = active_pool()
    if pool is None or a_data.ndim < 2 or b_data.ndim < 2:
        return np.matmul(a_data, b_data)
    batch = np.broadcast_shapes(a_data.shape[:-2], b_data.shape[:-2])
    shape = batch + (a_data.shape[-2], b_data.shape[-1])
    dtype = (
        a_data.dtype
        if a_data.dtype == b_data.dtype
        else np.result_type(a_data, b_data)
    )
    return np.matmul(a_data, b_data, out=pool.take(shape, dtype))


def matmul(a, b) -> Tensor:
    """Batched matrix multiplication with numpy broadcasting rules."""
    a, b = as_tensor(a), as_tensor(b)
    out = _matmul_data(a.data, b.data)

    def backward(grad):
        if a.ndim == 1 and b.ndim == 1:
            return grad * b.data, grad * a.data
        a_data = a.data if a.ndim > 1 else a.data[None, :]
        b_data = b.data if b.ndim > 1 else b.data[:, None]
        g = grad
        if a.ndim == 1:
            g = np.expand_dims(g, -2)
        if b.ndim == 1:
            g = np.expand_dims(g, -1)
        ga = _matmul_data(g, np.swapaxes(b_data, -1, -2))
        gb = _matmul_data(np.swapaxes(a_data, -1, -2), g)
        if a.ndim == 1:
            ga = np.squeeze(ga, -2)
        if b.ndim == 1:
            gb = np.squeeze(gb, -1)
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return make_op(out, (a, b), backward)


def reshape(a, shape: Sequence[int]) -> Tensor:
    a = as_tensor(a)
    out = a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(a.shape),)

    return make_op(out, (a,), backward)


def transpose(a, axes: Sequence[int] | None = None) -> Tensor:
    a = as_tensor(a)
    out = a.data.transpose(axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(grad):
        return (grad.transpose(inverse),)

    return make_op(out, (a,), backward)


def swapaxes(a, axis1: int, axis2: int) -> Tensor:
    a = as_tensor(a)
    out = np.swapaxes(a.data, axis1, axis2)

    def backward(grad):
        return (np.swapaxes(grad, axis1, axis2),)

    return make_op(out, (a,), backward)


def expand_dims(a, axis: int) -> Tensor:
    a = as_tensor(a)
    out = np.expand_dims(a.data, axis)

    def backward(grad):
        return (np.squeeze(grad, axis=axis),)

    return make_op(out, (a,), backward)


def squeeze(a, axis: int) -> Tensor:
    a = as_tensor(a)
    out = np.squeeze(a.data, axis=axis)

    def backward(grad):
        return (np.expand_dims(grad, axis),)

    return make_op(out, (a,), backward)


def getitem(a, index) -> Tensor:
    """Differentiable indexing/slicing (basic and integer-array indexing)."""
    a = as_tensor(a)
    out = a.data[index]

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return (full,)

    return make_op(out, (a,), backward)


def broadcast_to(a, shape: Sequence[int]) -> Tensor:
    """Broadcast ``a`` to ``shape`` following numpy rules — lazily.

    The O(1) replacement for ``concat([row] * batch, axis=0)`` style row
    duplication: the output wraps a read-only strided *view*, so the
    expanded array is never materialized (consumers — ufuncs, matmul,
    concatenate — read through the strides; the MyGrad broadcasting idiom).
    Forward values are bitwise-identical to the materialized formulation,
    and the gradient is the sum over the broadcast axes.  Ops never write
    into their inputs, so the read-only view is safe; callers that need a
    writable array should ``.copy()`` the data explicitly.
    """
    a = as_tensor(a)
    out = np.broadcast_to(a.data, tuple(shape))

    def backward(grad):
        return (unbroadcast(grad, a.shape),)

    return make_op(out, (a,), backward)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        grads = []
        for i in range(len(tensors)):
            sl = [slice(None)] * grad.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(grad[tuple(sl)])
        return grads

    return make_op(out, tuple(tensors), backward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        return list(np.moveaxis(grad, axis, 0))

    return make_op(out, tuple(tensors), backward)


def pad(a, pad_width, value: float = 0.0) -> Tensor:
    """Constant-pad ``a``; ``pad_width`` follows ``np.pad`` conventions."""
    a = as_tensor(a)
    out = np.pad(a.data, pad_width, mode="constant", constant_values=value)
    norm = np.broadcast_to(np.asarray(pad_width, dtype=int), (a.ndim, 2))

    def backward(grad):
        sl = tuple(
            slice(before, grad.shape[i] - after)
            for i, (before, after) in enumerate(norm)
        )
        return (grad[sl],)

    return make_op(out, (a,), backward)


def embedding(weight, indices) -> Tensor:
    """Look up rows of ``weight`` (V, D) by an integer array ``indices``."""
    weight = as_tensor(weight)
    idx = np.asarray(indices, dtype=np.int64)
    out = weight.data[idx]

    def backward(grad):
        full = np.zeros_like(weight.data)
        np.add.at(full, idx, grad)
        return (full,)

    return make_op(out, (weight,), backward)


# ---------------------------------------------------------------------------
# Composite neural-network functions
# ---------------------------------------------------------------------------


def softmax(a, axis: int = -1) -> Tensor:
    """Max-subtracted softmax with a guarded denominator.

    After subtracting the row max, the exponentials include ``exp(0) = 1``,
    so the denominator is >= 1 for any finite input and the ``maximum``
    guard is a bitwise no-op there; it only engages for pathological rows
    (for example all ``-inf`` under masking), turning a 0/0 NaN into zeros.
    """
    a = as_tensor(a)
    # errstate: at float32 extremes the shift itself can overflow to -inf,
    # which exp() maps to the intended 0 — a well-defined path, not a warning.
    with np.errstate(over="ignore", invalid="ignore"):
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        denom = np.maximum(e.sum(axis=axis, keepdims=True), np.finfo(e.dtype).tiny)
        out = e / denom

    def backward(grad):
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return (out * (grad - dot),)

    return make_op(out, (a,), backward)


def log_softmax(a, axis: int = -1) -> Tensor:
    """Log-softmax via the shifted log-sum-exp, with a guarded log argument.

    As in :func:`softmax`, the post-shift sum is >= 1 for finite inputs, so
    the guard changes nothing there and only prevents ``log(0)`` on fully
    degenerate rows.
    """
    a = as_tensor(a)
    with np.errstate(over="ignore", invalid="ignore"):
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        sumexp = np.maximum(
            np.exp(shifted).sum(axis=axis, keepdims=True), np.finfo(shifted.dtype).tiny
        )
        logsumexp = np.log(sumexp)
        out = shifted - logsumexp
        soft = np.exp(out)

    def backward(grad):
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return make_op(out, (a,), backward)


def dropout_mask(a, rate: float, rng: np.random.Generator) -> Tensor:
    """Apply inverted dropout using ``rng``; caller decides train/eval."""
    a = as_tensor(a)
    if rate <= 0.0:
        return a
    keep = 1.0 - rate
    mask = (rng.random(a.shape) < keep).astype(a.dtype) / keep

    def backward(grad):
        return (grad * mask,)

    return make_op(a.data * mask, (a,), backward)


# ---------------------------------------------------------------------------
# Operator attachment
# ---------------------------------------------------------------------------


def _attach_operators() -> None:
    Tensor.__add__ = lambda self, other: add(self, other)
    Tensor.__radd__ = lambda self, other: add(other, self)
    Tensor.__sub__ = lambda self, other: sub(self, other)
    Tensor.__rsub__ = lambda self, other: sub(other, self)
    Tensor.__mul__ = lambda self, other: mul(self, other)
    Tensor.__rmul__ = lambda self, other: mul(other, self)
    Tensor.__truediv__ = lambda self, other: div(self, other)
    Tensor.__rtruediv__ = lambda self, other: div(other, self)
    Tensor.__neg__ = lambda self: neg(self)
    Tensor.__pow__ = lambda self, exponent: power(self, exponent)
    Tensor.__matmul__ = lambda self, other: matmul(self, other)
    Tensor.__getitem__ = lambda self, index: getitem(self, index)
    Tensor.sum = lambda self, axis=None, keepdims=False: sum(self, axis, keepdims)
    Tensor.mean = lambda self, axis=None, keepdims=False: mean(self, axis, keepdims)
    Tensor.reshape = lambda self, *shape: reshape(
        self, shape[0] if len(shape) == 1 and not isinstance(shape[0], int) else shape
    )
    Tensor.transpose = lambda self, *axes: transpose(self, axes if axes else None)
    Tensor.exp = lambda self: exp(self)
    Tensor.log = lambda self: log(self)
    Tensor.tanh = lambda self: tanh(self)
    Tensor.sigmoid = lambda self: sigmoid(self)
    Tensor.relu = lambda self: relu(self)
    Tensor.sqrt = lambda self: sqrt(self)
    Tensor.abs = lambda self: absolute(self)


_attach_operators()
