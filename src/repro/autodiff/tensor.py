"""Reverse-mode automatic differentiation over numpy arrays.

This module provides the :class:`Tensor` class, the single data structure the
whole neural substrate is built on.  A ``Tensor`` wraps a numpy array and
records, for every differentiable operation, a backward closure and the parent
tensors it was computed from.  Calling :meth:`Tensor.backward` on a scalar
result walks the recorded graph in reverse topological order and accumulates
gradients into every tensor created with ``requires_grad=True``.

The design mirrors PyTorch's eager autograd at a much smaller scale:

* broadcasting follows numpy semantics; gradients are "un-broadcast" by
  summing over broadcast axes (see :func:`unbroadcast`),
* gradients accumulate (``+=``) so a tensor used twice receives the sum of
  both contributions,
* ``no_grad`` provides a context manager that disables graph recording, used
  by evaluation loops and inference paths.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from ..obs.profile import profiling_enabled, record_op
from .anomaly import anomaly_enabled, op_name_of, raise_non_finite
from .pool import pool_paused

DEFAULT_DTYPE = np.float32

_grad_state = threading.local()


def _grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph construction."""
    previous = _grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    If an operation broadcast an operand of ``shape`` up to ``grad.shape``,
    the operand's gradient is the sum of ``grad`` over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype not in (np.float32, np.float64):
            array = array.astype(DEFAULT_DTYPE)
        self.data = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self._op: str | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Autograd
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        # Gradients flowing to a tensor used several times accumulate with
        # ``+``.  The first contribution is stored by reference (the closure
        # may have handed us a view of another gradient, so it is not ours to
        # mutate); the second allocates the sum once and marks the entry
        # *owned*; contributions beyond that add in place into the owned
        # buffer — no further allocation for residual-style fan-out.
        owned: set[int] = set()
        with pool_paused():
            self._run_backward(order, grads, owned)

    def _run_backward(
        self,
        order: "list[Tensor]",
        grads: dict[int, np.ndarray],
        owned: set[int],
    ) -> None:
        # Backward runs with the buffer pool paused: gradient temporaries
        # are transient, and the allocator's immediate reuse beats recycled
        # pool buffers on cache locality (see repro.autodiff.pool).
        profiled = profiling_enabled()
        check = anomaly_enabled()
        for node in order:
            node_grad = grads.pop(id(node), None)
            owned.discard(id(node))
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # A leaf: accumulate into .grad (in place once it exists —
                # the initial ``.copy()`` makes the buffer the tensor's own).
                if node.grad is None:
                    node.grad = node_grad.copy()
                elif (
                    node.grad.shape == node_grad.shape
                    and node.grad.dtype == node_grad.dtype
                    and node.grad.flags.writeable
                ):
                    np.add(node.grad, node_grad, out=node.grad)
                else:
                    node.grad = node.grad + node_grad
            if node._backward is not None:
                parent_grads = node._backward(node_grad)
                if profiled:
                    record_op(
                        node._op or op_name_of(node._backward), "backward"
                    )
                if parent_grads is None:
                    continue
                for parent, pgrad in zip(node._parents, parent_grads):
                    if pgrad is None or not _needs_grad(parent):
                        continue
                    if check and not np.isfinite(pgrad).all():
                        raise_non_finite(
                            node._op or op_name_of(node._backward),
                            "backward",
                            pgrad,
                            node._parents,
                        )
                    key = id(parent)
                    if key in grads:
                        existing = grads[key]
                        if (
                            key in owned
                            and existing.shape == pgrad.shape
                            and existing.dtype == pgrad.dtype
                        ):
                            np.add(existing, pgrad, out=existing)
                        else:
                            grads[key] = existing + pgrad
                            owned.add(key)
                    else:
                        grads[key] = pgrad

    # Arithmetic operators are attached in repro.autodiff.ops to keep this
    # module focused on the graph machinery.


def _needs_grad(t: Tensor) -> bool:
    return t.requires_grad or t._backward is not None or bool(t._parents)


def _topological_order(root: Tensor) -> list[Tensor]:
    """Return tensors reachable from ``root`` in reverse topological order."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def as_tensor(value) -> Tensor:
    """Coerce ``value`` (array-like, scalar, or Tensor) into a Tensor."""
    return value if isinstance(value, Tensor) else Tensor(value)


def make_op(
    out_data: np.ndarray,
    parents: Sequence[Tensor],
    backward: Callable[[np.ndarray], Iterable[np.ndarray | None]],
) -> Tensor:
    """Create a non-leaf tensor recording ``backward`` if grad is enabled.

    Under :func:`~repro.autodiff.anomaly.detect_anomaly`, the output is
    checked for non-finite values before the graph node is created, and the
    op name is stamped on the node so backward-pass anomalies can name it.
    """
    check = anomaly_enabled()
    if check and not np.isfinite(out_data).all():
        raise_non_finite(op_name_of(backward), "forward", out_data, tuple(parents))
    profiled = profiling_enabled()
    if profiled:
        record_op(op_name_of(backward), "forward")
    track = _grad_enabled() and any(_needs_grad(p) for p in parents)
    if not track:
        return Tensor(out_data)
    out = Tensor(out_data, _parents=tuple(parents), _backward=backward)
    if check or profiled:
        out._op = op_name_of(backward)
    return out
