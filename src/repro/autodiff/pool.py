"""Shape-keyed buffer pool: recycle activation/gradient arrays across steps.

Proxy training runs the *same* computation graph every step, so the set of
array shapes a forward/backward pass allocates is identical step after step.
Allocating those arrays fresh each step costs a trip through the allocator
(and, for the large activations, an ``mmap``/``munmap`` round trip plus page
faults on first touch).  :class:`BufferPool` is a small arena that
eliminates that churn:

* ops request output buffers via :func:`take_buffer`, keyed by
  ``(shape, dtype)``,
* every buffer handed out during one *step* (one forward + backward +
  optimizer update, delimited by :meth:`BufferPool.step`) stays live until
  the step context **exits** — at which point the step's graph is dead by
  contract and its buffers return to the free lists, to be reused by the
  next step.

Reclaiming at step exit (rather than one generation later) keeps the live
working set to a single step's buffers, so the same arrays — same
addresses, warm in cache, pages already faulted in — serve every step.

Safety contract (see ``docs/performance.md``):

* a pooled buffer is only ever used as the *fully overwritten* output of a
  numpy ufunc/gemm (``out=``), so recycled contents can never leak into a
  result — pooled and pool-free runs are **bitwise identical**,
* everything a caller needs from a step must be extracted *inside* the step
  context (scalars, or copies of arrays); once ``step()`` exits, any array
  produced within it may be recycled.
  :func:`~repro.core.trainer.train_forecaster` honors this by reading the
  loss value and stepping the optimizer within the step (parameter and
  optimizer-state arrays are ordinary allocations, never pooled),
* evaluation/inference paths never activate a pool, so arrays returned by
  ``predict`` are ordinary owned allocations.

The pool is thread-local and opt-in: with no active pool every op takes its
original allocation path untouched.  ``$REPRO_BUFFER_POOL=0`` is a global
kill switch for debugging.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections import deque

import numpy as np

POOL_ENV = "REPRO_BUFFER_POOL"

_state = threading.local()


def pooling_allowed() -> bool:
    """Whether the ``$REPRO_BUFFER_POOL`` kill switch permits pooling."""
    return os.environ.get(POOL_ENV, "").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def active_pool() -> "BufferPool | None":
    """The pool activated on this thread, or ``None``."""
    return getattr(_state, "pool", None)


@contextlib.contextmanager
def pool_paused():
    """Deactivate the pool for the enclosed region (used by the backward
    pass).

    Backward-pass temporaries are transient — allocated, consumed by the
    next gradient op, and dropped — so the allocator's immediate reuse keeps
    them in a few cache-hot addresses.  Routing them through the pool
    instead spreads each step's gradient work across hundreds of distinct
    recycled buffers, which profiles measurably *slower* (cold writes).
    Forward activations are the opposite: they all stay live until backward
    anyway, so pooled stable addresses win there.  Hence: pool the forward,
    pause for the backward.
    """
    previous = getattr(_state, "pool", None)
    _state.pool = None
    try:
        yield
    finally:
        _state.pool = previous


def take_buffer(shape: tuple[int, ...], dtype) -> np.ndarray | None:
    """Pooled output buffer for the active pool, or ``None`` when pooling is
    off (numpy ufuncs treat ``out=None`` as "allocate fresh")."""
    pool = getattr(_state, "pool", None)
    if pool is None:
        return None
    return pool.take(shape, dtype)


class BufferPool:
    """Step-scoped ``(shape, dtype)``-keyed arena for training steps."""

    def __init__(self) -> None:
        self._free: dict[tuple[tuple[int, ...], np.dtype], deque[np.ndarray]] = {}
        self._current: list[np.ndarray] = []
        self.hits = 0
        self.misses = 0
        self.steps = 0

    def take(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Hand out a buffer of ``shape``/``dtype``, recycling when possible.

        Free lists are FIFO: a training step performs the same ``take``
        sequence as the last one (same graph), so first-reclaimed-first-out
        hands every op the *same* buffer — same address, warm in cache — it
        wrote the previous step.  LIFO would reverse the pairing each step,
        costing measurable cache locality on the hot activation shapes.
        """
        key = (tuple(shape), np.dtype(dtype))
        queue = self._free.get(key)
        if queue:
            buffer = queue.popleft()
            self.hits += 1
        else:
            buffer = np.empty(key[0], key[1])
            self.misses += 1
        self._current.append(buffer)
        return buffer

    @contextlib.contextmanager
    def step(self):
        """Delimit one training step; activates the pool on this thread.

        Exiting reclaims every buffer handed out during the step — the
        step's computation graph is dead by contract once the context ends,
        so the next step reuses the same arrays.
        """
        self.steps += 1
        previous = getattr(_state, "pool", None)
        _state.pool = self
        try:
            yield self
        finally:
            _state.pool = previous
            for buffer in self._current:
                self._free.setdefault(
                    (buffer.shape, buffer.dtype), deque()
                ).append(buffer)
            self._current = []

    def drain(self) -> None:
        """Drop every free buffer (keeps live handed-out buffers untouched)."""
        self._free.clear()

    def stats(self) -> dict[str, int]:
        """Allocation accounting for benchmarks and debugging."""
        free_bytes = int(
            sum(b.nbytes for stack in self._free.values() for b in stack)
        )
        return {
            "steps": self.steps,
            "hits": self.hits,
            "misses": self.misses,
            "free_buffers": int(sum(len(s) for s in self._free.values())),
            "free_bytes": free_bytes,
        }
