"""Fused elementwise kernels for profiler-hot op chains.

``--profile`` runs of proxy training show two elementwise chains dominating
the non-gemm time: the gated GDCC activation ``tanh(f) * sigmoid(g)`` (three
graph nodes, five full-size temporaries per forward) and the MAE training
loss ``mean(|prediction - target|)`` (three nodes).  Each fused kernel here
collapses one such chain into a single autodiff node computing the *same
floating-point operations in the same order* as the chain it replaces — so
fused and unfused paths are bitwise identical, forward and backward — while
eliminating the intermediate ``Tensor`` bookkeeping and reusing pooled
``out=`` buffers for the temporaries (see :mod:`repro.autodiff.pool`).

Two switches fall back to the unfused chains:

* ``$REPRO_REFERENCE_KERNELS`` — the honest "before" path used by
  ``benchmarks/bench_train_step.py`` and the equivalence tests,
* anomaly mode — the unfused chain names the exact op (``tanh``,
  ``sigmoid``, ``mul``, ...) in :class:`~repro.autodiff.anomaly.NonFiniteError`
  provenance, which fusion would coarsen.
"""

from __future__ import annotations

import os

import numpy as np

from .anomaly import anomaly_enabled
from .tensor import Tensor, _needs_grad, as_tensor, make_op, unbroadcast
from .pool import take_buffer

REFERENCE_KERNELS_ENV = "REPRO_REFERENCE_KERNELS"


def reference_kernels() -> bool:
    """Whether ``$REPRO_REFERENCE_KERNELS`` forces the pre-optimization
    kernel paths (per-tap conv loops, unfused elementwise chains)."""
    return os.environ.get(REFERENCE_KERNELS_ENV, "").strip().lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


def fused_kernels_enabled() -> bool:
    """Fused kernels are on unless the reference switch or anomaly mode
    (which needs per-op provenance) asks for the unfused chains."""
    return not (reference_kernels() or anomaly_enabled())


def gated_tanh_sigmoid(filter_in, gate_in) -> Tensor:
    """Fused WaveNet gate: ``tanh(filter_in) * sigmoid(gate_in)``.

    One graph node replacing the ``tanh`` -> ``sigmoid`` -> ``mul`` chain of
    :class:`~repro.operators.gdcc.GDCC`, bitwise-identical to it in both
    passes (same ops, same order, same stable sigmoid formulation).
    """
    f, g = as_tensor(filter_in), as_tensor(gate_in)
    t = np.tanh(f.data, out=take_buffer(f.shape, f.dtype))
    # Same stable single-divide sigmoid as repro.autodiff.ops.sigmoid —
    # bitwise-identical element math keeps fused == unfused exact.
    positive = g.data >= 0
    e = np.exp(np.where(positive, -g.data, g.data))
    numerator = np.where(positive, 1.0, e)
    np.add(e, 1.0, out=e)
    s = np.divide(numerator, e, out=numerator)
    out = np.multiply(t, s, out=take_buffer(t.shape, np.result_type(t, s)))

    def backward(grad):
        # Same expressions (and evaluation order) the unfused chain's
        # backward closures produce: through mul then tanh on the filter
        # side, through mul then sigmoid on the gate side.
        gf = (grad * s) * (1.0 - t * t)
        gg = ((grad * t) * s) * (1.0 - s)
        return unbroadcast(gf, f.shape), unbroadcast(gg, g.shape)

    return make_op(out, (f, g), backward)


def mean_absolute_error(prediction, target) -> Tensor:
    """Fused MAE loss: ``mean(|prediction - target|)`` as one node.

    Bitwise-identical to the ``sub`` -> ``absolute`` -> ``mean`` chain; the
    backward is the chain's composition ``±(grad / n) * sign(diff)``.
    """
    p, t = as_tensor(prediction), as_tensor(target)
    diff = _binary_sub(p.data, t.data)
    out = np.abs(diff).mean()
    count = diff.size

    def backward(grad):
        scaled = grad / count
        signed = _expanded_sign_product(scaled, diff)
        gt = unbroadcast(np.negative(signed), t.shape) if _needs_grad(t) else None
        return unbroadcast(signed, p.shape), gt

    return make_op(out, (p, t), backward)


def _binary_sub(a_data: np.ndarray, b_data: np.ndarray) -> np.ndarray:
    pool_shape = np.broadcast_shapes(a_data.shape, b_data.shape)
    buffer = take_buffer(pool_shape, np.result_type(a_data, b_data))
    return np.subtract(a_data, b_data, out=buffer)


def _expanded_sign_product(scaled: np.ndarray, diff: np.ndarray) -> np.ndarray:
    """``broadcast(scaled) * sign(diff)`` — the mean-then-abs grad chain."""
    buffer = take_buffer(diff.shape, np.result_type(scaled, diff))
    return np.multiply(scaled, np.sign(diff), out=buffer)
