"""ST-block assembly: instantiate an architecture DAG as a neural module.

Each DAG node holds a latent representation of shape ``(B, H, N, T)``; each
edge applies its operator to the source representation, and a node's value is
the sum of its incoming transformed representations (Eq. 6 specialised to the
derived, discrete architecture).  The hyperparameter ``U`` selects the block
output: the last node (AutoCTS style) or the sum of all intermediate nodes
(Graph WaveNet style).
"""

from __future__ import annotations

from ..autodiff import Tensor
from ..nn.module import Module, ModuleList
from ..operators import OperatorContext, build_operator
from ..space.arch import Architecture


class STBlock(Module):
    """One spatio-temporal block built from an :class:`Architecture` DAG."""

    def __init__(
        self,
        arch: Architecture,
        context: OperatorContext,
        output_mode: int = 0,
    ) -> None:
        super().__init__()
        if output_mode not in (0, 1):
            raise ValueError(f"output_mode must be 0 or 1, got {output_mode}")
        self.arch = arch
        self.output_mode = output_mode
        self.operators = ModuleList(
            build_operator(edge.op, context) for edge in arch.edges
        )

    def forward(self, x: Tensor) -> Tensor:
        nodes: list[Tensor | None] = [x] + [None] * (self.arch.num_nodes - 1)
        for edge, operator in zip(self.arch.edges, self.operators):
            source = nodes[edge.source]
            if source is None:  # unreachable by construction, defensive only
                raise RuntimeError(f"node {edge.source} evaluated before assignment")
            transformed = operator(source)
            current = nodes[edge.target]
            nodes[edge.target] = transformed if current is None else current + transformed
        if self.output_mode == 0:
            return nodes[-1]
        total = nodes[1]
        for node in nodes[2:]:
            total = total + node
        return total
