"""Core forecasting machinery: ST-blocks, the forecaster, and its trainer."""

from .health import DivergenceError, HealthConfig, HealthMonitor, HealthReport, StepHealth
from .model import CTSForecaster, build_forecaster
from .stblock import STBlock
from .trainer import (
    TrainConfig,
    TrainResult,
    evaluate_by_horizon,
    evaluate_forecaster,
    predict,
    train_forecaster,
)

__all__ = [
    "CTSForecaster",
    "build_forecaster",
    "STBlock",
    "DivergenceError",
    "HealthConfig",
    "HealthMonitor",
    "HealthReport",
    "StepHealth",
    "TrainConfig",
    "TrainResult",
    "evaluate_by_horizon",
    "evaluate_forecaster",
    "predict",
    "train_forecaster",
]
