"""Training health monitoring: divergence as a first-class outcome.

The proxy-evaluation campaigns deliberately train pathological candidates
(for example learning rate 1e3 on a deep dilated stack).  Left alone, such a
training either crashes mid-epoch with a numpy overflow or — worse — finishes
and reports a NaN score that silently poisons comparator labels.  The
:class:`HealthMonitor` sits inside the training loop and makes the outcome
well-defined and deterministic:

* every step's loss and gradient norm are checked for finiteness (and for an
  explosion relative to the first observed loss),
* a *bad* step is skipped — parameters are not updated — and the learning
  rate is backed off multiplicatively, which recovers transient spikes,
* after ``max_bad_steps`` consecutive bad steps the parameters and optimizer
  state roll back to the last-good snapshot,
* after ``max_rollbacks`` failed rollbacks (or when no good snapshot exists)
  a :class:`DivergenceError` is raised, carrying the full step history.

All decisions are pure functions of the observed loss/grad-norm sequence, so
recovery is bitwise-reproducible and PR 2's checkpoint/resume guarantee is
preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..obs.metrics import get_registry


@dataclass(frozen=True)
class StepHealth:
    """One observed training step and the monitor's verdict on it."""

    epoch: int
    step: int
    loss: float
    grad_norm: float
    action: str  # "ok" | "skip" | "rollback" | "diverged"


class DivergenceError(RuntimeError):
    """Training diverged beyond recovery.

    Attributes:
        history: the :class:`StepHealth` records leading up to the failure
            (bounded; the most recent steps).
    """

    def __init__(self, message: str, history: list[StepHealth] | None = None) -> None:
        super().__init__(message)
        self.history = history or []

    def __reduce__(self):
        # Keep the error picklable across process-pool workers.
        return (type(self), (str(self), self.history))


@dataclass(frozen=True)
class HealthConfig:
    """Knobs of the in-loop divergence guard.

    Args:
        enabled: turn the monitor off entirely (historical behaviour).
        max_bad_steps: consecutive bad steps tolerated before a rollback.
        max_rollbacks: rollbacks attempted before declaring divergence.
        lr_backoff: multiplicative learning-rate decay applied per bad step
            and per rollback.
        min_lr: floor under the backed-off learning rate.
        loss_explosion_factor: a finite loss larger than
            ``first_loss * factor`` also counts as bad (catches divergence
            that stays float-finite).
        snapshot_interval: applied steps between last-good snapshots (1 =
            snapshot every step; larger amortizes the parameter copy).
        history_limit: most-recent step records kept for the error payload.
    """

    enabled: bool = True
    max_bad_steps: int = 3
    max_rollbacks: int = 2
    lr_backoff: float = 0.5
    min_lr: float = 1e-7
    loss_explosion_factor: float = 1e6
    snapshot_interval: int = 8
    history_limit: int = 64

    def __post_init__(self) -> None:
        if self.max_bad_steps < 1:
            raise ValueError("max_bad_steps must be >= 1")
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be >= 0")
        if not 0 < self.lr_backoff < 1:
            raise ValueError("lr_backoff must lie in (0, 1)")
        if self.loss_explosion_factor <= 1:
            raise ValueError("loss_explosion_factor must be > 1")
        if self.snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")


@dataclass
class HealthReport:
    """Counters accumulated over one monitored training run."""

    bad_steps: int = 0
    skipped_steps: int = 0
    rollbacks: int = 0
    history: list[StepHealth] = field(default_factory=list)


class HealthMonitor:
    """Per-step divergence guard around a model/optimizer pair.

    Usage inside a training loop::

        monitor = HealthMonitor(config, model, optimizer)
        loss = compute_loss(...)
        if not monitor.check_loss(epoch, step, loss.item()):
            continue                      # skip: do not backprop this step
        loss.backward()
        norm = clip_grad_norm(...)
        if not monitor.check_grads(epoch, step, norm):
            continue                      # skip: do not apply this step
        optimizer.step()
        monitor.step_ok()

    The monitor snapshots model and optimizer state after each applied step
    and rolls both back when a bad streak exceeds the budget.
    """

    def __init__(self, config: HealthConfig, model, optimizer) -> None:
        self.config = config
        self.model = model
        self.optimizer = optimizer
        self.report = HealthReport()
        self._consecutive_bad = 0
        self._good_steps = 0
        self._first_loss: float | None = None
        self._snapshot: tuple[dict, dict] | None = None
        self._pending: tuple[int, int, float] | None = None

    # ------------------------------------------------------------------
    # Step-level checks
    # ------------------------------------------------------------------
    def check_loss(self, epoch: int, step: int, loss: float) -> bool:
        """True when the loss is healthy and the step may proceed."""
        if self._is_bad_loss(loss):
            self._bad(epoch, step, loss, float("nan"))
            return False
        if self._first_loss is None:
            self._first_loss = loss
        self._pending = (epoch, step, loss)
        return True

    def check_grads(self, epoch: int, step: int, grad_norm: float) -> bool:
        """True when the gradient norm is finite and the update may apply."""
        if not math.isfinite(grad_norm):
            loss = self._pending[2] if self._pending else float("nan")
            self._pending = None
            self._bad(epoch, step, loss, grad_norm)
            return False
        return True

    def step_ok(self) -> None:
        """Record a successfully applied step and snapshot last-good state."""
        epoch, step, loss = self._pending if self._pending else (0, 0, float("nan"))
        self._pending = None
        self._consecutive_bad = 0
        self._record(StepHealth(epoch, step, loss, 0.0, "ok"))
        self._good_steps += 1
        if self._snapshot is None or self._good_steps % self.config.snapshot_interval == 0:
            self._snapshot = (self.model.state_dict(), self.optimizer.state_dict())

    # ------------------------------------------------------------------
    # Checkpointing (warm fidelity resume)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The monitor's full decision state, for bitwise warm resume.

        Captured at a step boundary (``_pending`` is always ``None`` there):
        every counter, the first-loss explosion reference, and the last-good
        snapshot, so a resumed run takes exactly the skip/backoff/rollback
        decisions an uninterrupted one would.
        """
        return {
            "consecutive_bad": self._consecutive_bad,
            "good_steps": self._good_steps,
            "first_loss": self._first_loss,
            "snapshot": self._snapshot,
            "report": {
                "bad_steps": self.report.bad_steps,
                "skipped_steps": self.report.skipped_steps,
                "rollbacks": self.report.rollbacks,
                "history": list(self.report.history),
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict`."""
        self._consecutive_bad = int(state["consecutive_bad"])
        self._good_steps = int(state["good_steps"])
        first_loss = state["first_loss"]
        self._first_loss = None if first_loss is None else float(first_loss)
        self._snapshot = state["snapshot"]
        report = state["report"]
        self.report.bad_steps = int(report["bad_steps"])
        self.report.skipped_steps = int(report["skipped_steps"])
        self.report.rollbacks = int(report["rollbacks"])
        self.report.history = list(report["history"])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _is_bad_loss(self, loss: float) -> bool:
        if not math.isfinite(loss):
            return True
        if self._first_loss is not None:
            threshold = self.config.loss_explosion_factor * max(
                abs(self._first_loss), 1.0
            )
            if abs(loss) > threshold:
                return True
        return False

    def _backoff_lr(self) -> None:
        self.optimizer.lr = max(
            self.optimizer.lr * self.config.lr_backoff, self.config.min_lr
        )

    def _record(self, record: StepHealth) -> None:
        self.report.history.append(record)
        if len(self.report.history) > self.config.history_limit:
            del self.report.history[0]

    def _bad(self, epoch: int, step: int, loss: float, grad_norm: float) -> None:
        self.report.bad_steps += 1
        self.report.skipped_steps += 1
        # The ambient registry is resolved per event (not captured at
        # construction) so pool-worker monitors report into the worker-local
        # scope whose deltas relay back to the parent snapshot.
        registry = get_registry()
        registry.counter("health.bad_steps").inc()
        registry.counter("health.skipped_steps").inc()
        self._consecutive_bad += 1
        self._backoff_lr()
        self._record(StepHealth(epoch, step, loss, grad_norm, "skip"))
        if self._consecutive_bad < self.config.max_bad_steps:
            return
        # The bad streak exhausted its budget: roll back, or give up.
        if self._snapshot is None or self.report.rollbacks >= self.config.max_rollbacks:
            self._record(StepHealth(epoch, step, loss, grad_norm, "diverged"))
            registry.counter("health.divergences").inc()
            raise DivergenceError(
                f"training diverged at epoch {epoch}, step {step}: "
                f"{self.report.bad_steps} bad step(s), "
                f"{self.report.rollbacks} rollback(s) exhausted"
                + ("" if self._snapshot is not None else " (no good snapshot)"),
                history=list(self.report.history),
            )
        model_state, optimizer_state = self._snapshot
        self.model.load_state_dict(model_state)
        self.optimizer.load_state_dict(optimizer_state)
        self.report.rollbacks += 1
        registry.counter("health.rollbacks").inc()
        self._consecutive_bad = 0
        self._record(StepHealth(epoch, step, loss, grad_norm, "rollback"))
