"""Training and evaluation loops for CTS forecasting models.

The paper trains forecasting models with MAE loss and Adam (lr 1e-3, weight
decay 1e-4); this trainer reproduces that recipe with early stopping on
validation MAE and keeps the best state.

Numerical robustness (see ``docs/numerics.md``): every step's loss and
gradient norm pass through a :class:`~repro.core.health.HealthMonitor`,
which skips bad steps with learning-rate backoff, rolls back to the
last-good snapshot on a bad streak, and raises a typed
:class:`~repro.core.health.DivergenceError` when recovery fails — so a
pathological candidate in a search campaign is a well-defined outcome
rather than a crash three epochs in.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..autodiff import Tensor, no_grad
from ..autodiff.pool import BufferPool, pooling_allowed
from ..data.windows import WindowSet, iterate_batches, iterate_masked_batches
from ..metrics import ForecastScores, evaluate_forecast
from ..nn.loss import mae_loss, masked_mae_loss
from ..nn.module import Module
from ..obs.trace import span
from ..optim import Adam, clip_grad_norm, grad_norm
from ..utils.seeding import derive_rng
from ..utils.validation import (
    ConfigError,
    require_finite,
    require_int_at_least,
    require_positive_finite,
)
from .health import DivergenceError, HealthConfig, HealthMonitor, HealthReport


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters of the training loop itself (paper Section 4.1.4)."""

    epochs: int = 30
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 1e-4
    grad_clip: float = 5.0
    patience: int = 5
    seed: int = 0
    health: HealthConfig = field(default_factory=HealthConfig)
    # Recycle forward/gradient buffers across steps (see repro.autodiff.pool).
    # Score-inert: pooled training is bitwise-identical to pool-off training.
    # Tri-state: None resolves $REPRO_BUFFER_POOL at use time (default on);
    # an explicit bool — e.g. a per-job override threaded through a service
    # payload — wins over the environment.
    buffer_pool: bool | None = None

    def __post_init__(self) -> None:
        # Typed, construction-time validation (ConfigError subclasses
        # ValueError): a bad knob must fail here, not as an empty batch
        # iterator or silent divergence deep inside the loop.
        require_int_at_least(self.epochs, 1, "epochs")
        require_int_at_least(self.batch_size, 1, "batch_size")
        require_int_at_least(self.patience, 1, "patience")
        require_positive_finite(self.lr, "lr")
        require_finite(self.weight_decay, "weight_decay")
        require_finite(self.grad_clip, "grad_clip")


@dataclass
class TrainResult:
    """Loss history and the best validation checkpoint."""

    train_losses: list[float] = field(default_factory=list)
    val_maes: list[float] = field(default_factory=list)
    best_val_mae: float = float("inf")
    best_epoch: int = -1
    stopped_early: bool = False
    health: HealthReport = field(default_factory=HealthReport)
    # The warm-resume snapshot captured at the epoch the run stopped on
    # (only when the caller asked via ``capture_state``; see
    # :func:`train_forecaster`).  Feeding it back as ``resume_state``
    # continues training bitwise-identically to a never-interrupted run.
    state: dict | None = None

    @property
    def epochs_trained(self) -> int:
        return len(self.train_losses)


def _module_rng_states(model: Module) -> list:
    """Forward-time RNG streams (dropout noise) in module-traversal order.

    Dropout layers own private generators that advance every training
    forward; they are invisible to ``state_dict`` but score-relevant, so a
    bitwise warm resume must capture and restore them alongside the weights.
    """
    return [
        module._rng.bit_generator.state
        for module in model.modules()
        if isinstance(getattr(module, "_rng", None), np.random.Generator)
    ]


def _load_module_rng_states(model: Module, states: list) -> None:
    holders = [
        module
        for module in model.modules()
        if isinstance(getattr(module, "_rng", None), np.random.Generator)
    ]
    if len(holders) != len(states):
        raise ValueError(
            f"module RNG mismatch: snapshot has {len(states)} stream(s), "
            f"model has {len(holders)}"
        )
    for module, state in zip(holders, states):
        module._rng.bit_generator.state = state


def train_forecaster(
    model: Module,
    train_windows: WindowSet,
    val_windows: WindowSet,
    config: TrainConfig = TrainConfig(),
    *,
    stop_after_epoch: int | None = None,
    resume_state: dict | None = None,
    capture_state: bool = False,
) -> TrainResult:
    """Train ``model`` on ``train_windows`` with early stopping on val MAE.

    Raises :class:`~repro.core.health.DivergenceError` when the health
    monitor's skip/backoff/rollback ladder cannot recover the run.  Overflow
    warnings are suppressed inside the monitored loop: non-finite values are
    *detected* by the monitor's explicit checks, not reported as numpy
    warnings, so ``-W error::RuntimeWarning`` runs stay clean.

    Fidelity resume (see ``docs/fidelity.md``): ``stop_after_epoch=k`` ends
    the run after epoch ``k`` (1-based count) without marking it early-
    stopped; ``capture_state=True`` attaches a full snapshot — current
    weights (pre best-restore), best-so-far state, optimizer moments and
    backed-off learning rate, batch-order and dropout RNG streams, monitor
    state, histories — to ``result.state``.  Feeding that snapshot back as
    ``resume_state`` (with the *same* config) continues the run so that the
    final weights, histories, and scores are bitwise-identical to a single
    uninterrupted training.  With all three defaults the loop is the exact
    historical code path.
    """
    optimizer = Adam(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    rng = derive_rng(config.seed, "trainer")
    result = TrainResult()
    monitor = (
        HealthMonitor(config.health, model, optimizer)
        if config.health.enabled
        else None
    )
    if monitor is not None:
        result.health = monitor.report
    best_state: dict[str, np.ndarray] | None = None
    epochs_without_improvement = 0
    step = 0
    start_epoch = 0
    if resume_state is not None:
        start_epoch = int(resume_state["epoch"])
        model.load_state_dict(resume_state["model"])
        optimizer.load_state_dict(resume_state["optimizer"])
        optimizer.lr = float(resume_state["lr"])  # health backoff survives
        rng.bit_generator.state = resume_state["rng"]
        _load_module_rng_states(model, resume_state["module_rngs"])
        best_state = resume_state["best_state"]
        result.train_losses = list(resume_state["train_losses"])
        result.val_maes = list(resume_state["val_maes"])
        result.best_val_mae = float(resume_state["best_val_mae"])
        result.best_epoch = int(resume_state["best_epoch"])
        result.stopped_early = bool(resume_state["stopped_early"])
        epochs_without_improvement = int(resume_state["epochs_without_improvement"])
        step = int(resume_state["step"])
        if monitor is not None and resume_state.get("monitor") is not None:
            monitor.load_state_dict(resume_state["monitor"])
    # The pool is scoped strictly to the per-batch training step: buffers
    # handed out inside `pool.step()` are reclaimed one generation later, and
    # validation/inference below runs with no pool active, so arrays that
    # outlive a step (val predictions, checkpoints) are never recycled.
    pool_wanted = (
        config.buffer_pool if config.buffer_pool is not None else pooling_allowed()
    )
    pool = BufferPool() if pool_wanted else None
    epochs_done = start_epoch
    with span(
        "train-forecaster", epochs=config.epochs
    ) as train_span, np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        for epoch in range(start_epoch, config.epochs):
            if result.stopped_early:
                break  # a resumed run that had already early-stopped
            model.train()
            epoch_losses = []
            for x, y, y_mask in iterate_masked_batches(
                train_windows, config.batch_size, rng=rng
            ):
                with pool.step() if pool is not None else nullcontext():
                    optimizer.zero_grad()
                    # Maskless batches take the exact historical loss chain
                    # (bitwise-identical clean path); masked batches exclude
                    # unobserved targets from the objective.
                    if y_mask is None:
                        loss = mae_loss(model(Tensor(x)), y)
                    else:
                        loss = masked_mae_loss(model(Tensor(x)), y, mask=y_mask)
                    loss_value = loss.item()
                    step += 1
                    if monitor is not None and not monitor.check_loss(
                        epoch, step, loss_value
                    ):
                        continue
                    loss.backward()
                    if config.grad_clip:
                        norm = clip_grad_norm(optimizer.parameters, config.grad_clip)
                    else:
                        norm = grad_norm(optimizer.parameters) if monitor else 0.0
                    if monitor is not None and not monitor.check_grads(
                        epoch, step, norm
                    ):
                        continue
                    optimizer.step()
                    if monitor is not None:
                        monitor.step_ok()
                    epoch_losses.append(loss_value)
            if pool is not None:
                pool.drain()
            result.train_losses.append(
                float(np.mean(epoch_losses)) if epoch_losses else float("inf")
            )

            val_mae = evaluate_forecaster(model, val_windows, config.batch_size).mae
            result.val_maes.append(val_mae)
            if val_mae < result.best_val_mae:
                result.best_val_mae = val_mae
                result.best_epoch = epoch
                best_state = model.state_dict()
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= config.patience:
                    result.stopped_early = True
                    epochs_done = epoch + 1
                    break
            epochs_done = epoch + 1
            if stop_after_epoch is not None and epochs_done >= stop_after_epoch:
                break  # rung budget reached; not an early stop
        train_span.set(
            best_epoch=result.best_epoch, stopped_early=result.stopped_early
        )
    if capture_state:
        # Snapshot *before* the best-state restore below: resume needs the
        # end-of-epoch weights the next epoch would have trained from.
        result.state = {
            "epoch": epochs_done,
            "done": result.stopped_early or epochs_done >= config.epochs,
            "model": model.state_dict(),
            "best_state": best_state,
            "optimizer": optimizer.state_dict(),
            "lr": float(optimizer.lr),
            "rng": rng.bit_generator.state,
            "module_rngs": _module_rng_states(model),
            "train_losses": list(result.train_losses),
            "val_maes": list(result.val_maes),
            "best_val_mae": float(result.best_val_mae),
            "best_epoch": int(result.best_epoch),
            "stopped_early": bool(result.stopped_early),
            "epochs_without_improvement": int(epochs_without_improvement),
            "step": int(step),
            "monitor": monitor.state_dict() if monitor is not None else None,
        }
    if best_state is not None:
        model.load_state_dict(best_state)
    return result


def predict(model: Module, windows: WindowSet, batch_size: int = 64) -> np.ndarray:
    """Run inference over every window; returns ``(num, H, N, F)``."""
    model.eval()
    outputs = []
    with no_grad():
        for x, _ in iterate_batches(windows, batch_size):
            outputs.append(model(Tensor(x)).numpy())
    return np.concatenate(outputs, axis=0)


def evaluate_forecaster(
    model: Module,
    windows: WindowSet,
    batch_size: int = 64,
    inverse: Callable[[np.ndarray], np.ndarray] | None = None,
) -> ForecastScores:
    """Score ``model`` on ``windows``; ``inverse`` maps back to raw units.

    When the windows carry an observation mask, unobserved targets are
    excluded from every metric (the model is never scored against imputed
    or corrupted entries).
    """
    predictions = predict(model, windows, batch_size)
    targets = windows.y
    if inverse is not None:
        predictions = inverse(predictions)
        targets = inverse(targets)
    return evaluate_forecast(predictions, targets, mask=windows.y_mask)


def evaluate_by_horizon(
    model: Module,
    windows: WindowSet,
    batch_size: int = 64,
    inverse: Callable[[np.ndarray], np.ndarray] | None = None,
) -> list[ForecastScores]:
    """Per-forecast-step scores (step 1 ... step H), the CTS reporting style.

    Errors typically grow with the horizon; this surfaces that profile
    instead of the single averaged number.
    """
    predictions = predict(model, windows, batch_size)
    targets = windows.y
    if inverse is not None:
        predictions = inverse(predictions)
        targets = inverse(targets)
    return [
        evaluate_forecast(
            predictions[:, step],
            targets[:, step],
            mask=None if windows.y_mask is None else windows.y_mask[:, step],
        )
        for step in range(targets.shape[1])
    ]
