"""The full CTS forecasting model (paper Figure 2).

``input module -> B stacked ST-blocks (residual) -> output module``

* the input module lifts the ``F`` raw features to the hidden width ``H``
  with a 1x1 convolution,
* ST-blocks are stacked sequentially with residual connections and channel
  normalization, the simple-yet-effective topology the paper adopts,
* the output module reads the final time step (the causal summary of the
  window), widens to the output dimension ``I``, and maps to the forecasting
  horizon.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, as_tensor
from ..data.datasets import CTSData
from ..data.graph import transition_matrix
from ..nn.conv import PointwiseConv2d
from ..nn.module import Module, ModuleList
from ..nn.norm import ChannelNorm2d
from ..operators import OperatorContext
from ..space.archhyper import ArchHyper
from ..utils.seeding import derive_rng
from .stblock import STBlock

DROPOUT_RATE_WHEN_ENABLED = 0.3


class CTSForecaster(Module):
    """End-to-end forecasting model defined by an :class:`ArchHyper`."""

    def __init__(
        self,
        arch_hyper: ArchHyper,
        n_nodes: int,
        n_features: int,
        horizon: int,
        supports: list[np.ndarray] | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.arch_hyper = arch_hyper
        self.horizon = horizon
        self.n_features = n_features
        self.n_nodes = n_nodes
        self.supports = [np.asarray(s, dtype=np.float32) for s in (supports or [])]
        hyper = arch_hyper.hyper
        rng = derive_rng(seed, "forecaster", arch_hyper.key())
        dropout_rate = DROPOUT_RATE_WHEN_ENABLED if hyper.dropout else 0.0
        context = OperatorContext(
            hidden_dim=hyper.hidden_dim,
            n_nodes=n_nodes,
            supports=self.supports,
            dropout_rate=dropout_rate,
            rng=rng,
        )
        self.input_proj = PointwiseConv2d(n_features, hyper.hidden_dim, rng=rng)
        self.blocks = ModuleList(
            STBlock(arch_hyper.arch, context, output_mode=hyper.output_mode)
            for _ in range(hyper.num_blocks)
        )
        self.norms = ModuleList(
            ChannelNorm2d(hyper.hidden_dim) for _ in range(hyper.num_blocks)
        )
        self.out_widen = PointwiseConv2d(hyper.hidden_dim, hyper.output_dim, rng=rng)
        self.out_head = PointwiseConv2d(
            hyper.output_dim, horizon * n_features, rng=rng
        )

    def forward(self, x) -> Tensor:
        """Forecast from history ``x (B, P, N, F)`` to ``(B, horizon, N, F)``."""
        x = as_tensor(x)
        batch, _, n_nodes, _ = x.shape
        latent = self.input_proj(x.transpose(0, 3, 2, 1))  # (B, H, N, P)
        for block, norm in zip(self.blocks, self.norms):
            latent = norm(latent + block(latent))
        summary = latent[:, :, :, -1:]  # causal summary at the last step
        widened = self.out_widen(summary.relu()).relu()
        projected = self.out_head(widened)  # (B, horizon * F, N, 1)
        return (
            projected.reshape(batch, self.horizon, self.n_features, n_nodes)
            .transpose(0, 1, 3, 2)
        )


def build_forecaster(
    arch_hyper: ArchHyper,
    data: CTSData,
    horizon: int,
    seed: int = 0,
) -> CTSForecaster:
    """Construct a forecaster for ``data`` with diffusion supports from its graph."""
    forward = transition_matrix(data.adjacency)
    backward = transition_matrix(data.adjacency.T)
    return CTSForecaster(
        arch_hyper,
        n_nodes=data.n_series,
        n_features=data.n_features,
        horizon=horizon,
        supports=[forward, backward],
        seed=seed,
    )
