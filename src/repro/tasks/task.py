"""CTS forecasting tasks (paper Eq. 3): ``T = (D, P, Q, M)``.

A task couples a dataset with a forecasting setting; it also owns the data
preparation pipeline shared by every model in the framework — chronological
splitting, train-fitted standardization, and window construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..data.datasets import CTSData
from ..data.scalers import StandardScaler
from ..data.windows import WindowSet, make_windows, split_windows


@dataclass(frozen=True)
class Task:
    """One CTS forecasting task: dataset ``D``, lengths ``P``/``Q``, mode ``M``."""

    data: CTSData
    p: int
    q: int
    single_step: bool = False
    split_ratio: tuple[int, int, int] = (6, 2, 2)
    # Optional cap on the number of training windows (evenly thinned).  The
    # paper trains on everything; the CPU-scale harness caps this to bound
    # per-model training cost.  Validation/test windows are never thinned.
    max_train_windows: int | None = None

    def __post_init__(self) -> None:
        if self.p <= 0 or self.q <= 0:
            raise ValueError(f"P and Q must be positive, got P={self.p}, Q={self.q}")
        if self.data.n_steps < self.window_span * 3:
            raise ValueError(
                f"dataset {self.data.name} ({self.data.n_steps} steps) is too "
                f"short for P={self.p}, Q={self.q}"
            )

    @property
    def window_span(self) -> int:
        """S = P + Q, the sliding-window length used for task embedding."""
        return self.p + self.q

    @property
    def horizon(self) -> int:
        """Model output length: Q steps (multi-step) or 1 (single-step)."""
        return 1 if self.single_step else self.q

    @property
    def name(self) -> str:
        """Readable task identity: ``dataset/P{p}-Q{q}(M|S)``."""
        mode = "S" if self.single_step else "M"
        return f"{self.data.name}/P{self.p}-Q{self.q}({mode})"

    def setting(self) -> tuple[int, int, bool]:
        """The forecasting setting triple ``(P, Q, single_step)``."""
        return (self.p, self.q, self.single_step)

    @cached_property
    def prepared(self) -> "PreparedTask":
        """Scaled train/val/test windows (computed once, cached)."""
        return PreparedTask.from_task(self)

    def embedding_windows(self, max_windows: int = 8) -> np.ndarray:
        """Evenly spaced S-length windows ``(num, N, S, F)`` for task embedding.

        These are the time-series windows ``{D_i}`` of Section 3.2.2, drawn
        from the training region only, standardized so embeddings are
        scale-free.
        """
        span = self.window_span
        values = self.prepared.scaled_values  # (N, T, F)
        train_steps = self.prepared.train_steps
        last_start = max(train_steps - span, 0)
        count = min(max_windows, last_start + 1)
        starts = np.unique(np.linspace(0, last_start, count).astype(int))
        return np.stack([values[:, s : s + span, :] for s in starts])


@dataclass(frozen=True)
class PreparedTask:
    """Materialized data pipeline for one task."""

    train: WindowSet
    val: WindowSet
    test: WindowSet
    scaler: StandardScaler
    scaled_values: np.ndarray
    train_steps: int

    @classmethod
    def from_task(cls, task: Task) -> "PreparedTask":
        """Split, scale, and window ``task.data`` (chronological, train-fitted)."""
        data = task.data
        ratio = task.split_ratio
        weight = sum(ratio)
        train_steps = data.n_steps * ratio[0] // weight
        # Scaler statistics come from *observed* training entries only, so
        # imputed outage fills cannot drag the standardization; maskless data
        # takes the historical unweighted path (bitwise-identical).
        scaler = StandardScaler().fit(
            data.values[:, :train_steps, :],
            mask=None if data.mask is None else data.mask[:, :train_steps, :],
        )
        scaled = scaler.transform(data.values)
        scaled_data = CTSData(
            name=data.name,
            values=scaled,
            adjacency=data.adjacency,
            domain=data.domain,
            steps_per_day=data.steps_per_day,
            mask=data.mask,
        )
        windows = make_windows(
            scaled_data, task.p, task.q, single_step=task.single_step
        )
        train, val, test = split_windows(windows, ratio)
        cap = task.max_train_windows
        if cap is not None and len(train) > cap:
            keep = np.unique(np.linspace(0, len(train) - 1, cap).astype(int))
            train = train.take(keep)
        return cls(
            train=train,
            val=val,
            test=test,
            scaler=scaler,
            scaled_values=scaled,
            train_steps=train_steps,
        )

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Map model outputs back to the dataset's raw units."""
        return self.scaler.inverse_transform(values)
