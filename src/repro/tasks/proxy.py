"""The early-validation performance proxy R' (paper Eq. 22).

Collecting comparator training labels with fully trained models is
prohibitively expensive; instead an arch-hyper is trained for only ``k``
epochs (k=5 in the paper) and its validation error is used as the label
source.  :func:`measure_arch_hyper` is that proxy; :func:`full_train_score`
is the expensive ground truth used by the proxy-fidelity ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.health import DivergenceError
from ..core.model import build_forecaster
from ..core.trainer import TrainConfig, evaluate_forecaster, train_forecaster
from ..metrics import ForecastScores
from ..space.archhyper import ArchHyper
from .task import Task

# The deterministic worst-case score assigned to a diverged candidate when
# the evaluator's divergence policy is "sentinel".  It is *finite* (so
# downstream ranking math stays NaN-free), bitwise-stable across backends
# and platforms (a float32/float64-exact constant), and larger than any real
# validation error, so a diverged candidate automatically loses every
# comparison.  See docs/numerics.md.
SENTINEL_SCORE = float(np.finfo(np.float32).max)


def is_sentinel_score(score: float) -> bool:
    """Whether ``score`` marks a diverged candidate (sentinel or non-finite)."""
    return not np.isfinite(score) or score >= SENTINEL_SCORE


@dataclass(frozen=True)
class ProxyConfig:
    """Settings of the early-validation proxy."""

    epochs: int = 5  # the paper's k
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 1e-4
    seed: int = 0
    # Score-inert performance knob: pooled proxy training produces bitwise
    # identical scores, so this field is excluded from eval-cache
    # fingerprints (see repro.runtime.fingerprint.proxy_fingerprint).
    # Tri-state: None resolves $REPRO_BUFFER_POOL at use time; an explicit
    # bool (e.g. a per-job service override) wins over the environment.
    buffer_pool: bool | None = None

    def train_config(self, epochs: int | None = None) -> TrainConfig:
        """Materialize the proxy's training configuration."""
        chosen = epochs if epochs is not None else self.epochs
        return TrainConfig(
            epochs=chosen,
            batch_size=self.batch_size,
            lr=self.lr,
            weight_decay=self.weight_decay,
            patience=max(chosen, 1),
            seed=self.seed,
            buffer_pool=self.buffer_pool,
        )


def measure_arch_hyper(
    arch_hyper: ArchHyper,
    task: Task,
    config: ProxyConfig | None = None,
) -> float:
    """R'(ah): validation error after only ``k`` training epochs (Eq. 22).

    Returns the validation MAE (multi-step) or RRSE (single-step); lower is
    better.  Raises :class:`~repro.core.health.DivergenceError` when the
    candidate diverges beyond the trainer's recovery ladder *or* finishes
    with a non-finite validation score — divergence is a typed, deterministic
    outcome here; the evaluator decides whether it becomes a sentinel score
    or propagates (``--divergence-policy``).
    """
    config = config if config is not None else ProxyConfig()
    prepared = task.prepared
    model = build_forecaster(arch_hyper, task.data, task.horizon, seed=config.seed)
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        train_forecaster(model, prepared.train, prepared.val, config.train_config())
        scores = evaluate_forecaster(model, prepared.val, config.batch_size)
        value = float(scores.primary(single_step=task.single_step))
    if not np.isfinite(value):
        raise DivergenceError(
            f"proxy evaluation produced a non-finite score ({value}) for "
            f"{arch_hyper.hyper} on task {task.name!r}"
        )
    return value


def full_train_score(
    arch_hyper: ArchHyper,
    task: Task,
    epochs: int = 30,
    config: ProxyConfig | None = None,
    return_test: bool = True,
) -> ForecastScores:
    """Fully train ``arch_hyper`` on ``task`` and score it (val or test)."""
    config = config if config is not None else ProxyConfig()
    prepared = task.prepared
    model = build_forecaster(arch_hyper, task.data, task.horizon, seed=config.seed)
    train_forecaster(
        model,
        prepared.train,
        prepared.val,
        TrainConfig(
            epochs=epochs,
            batch_size=config.batch_size,
            lr=config.lr,
            weight_decay=config.weight_decay,
            patience=max(3, epochs // 4),
            seed=config.seed,
            buffer_pool=config.buffer_pool,
        ),
    )
    windows = prepared.test if return_test else prepared.val
    return evaluate_forecaster(
        model, windows, config.batch_size, inverse=prepared.inverse
    )
