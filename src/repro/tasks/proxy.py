"""The early-validation performance proxy R' (paper Eq. 22).

Collecting comparator training labels with fully trained models is
prohibitively expensive; instead an arch-hyper is trained for only ``k``
epochs (k=5 in the paper) and its validation error is used as the label
source.  :func:`measure_arch_hyper` is that proxy; :func:`full_train_score`
is the expensive ground truth used by the proxy-fidelity ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.health import DivergenceError
from ..core.model import build_forecaster
from ..core.trainer import TrainConfig, evaluate_forecaster, train_forecaster
from ..metrics import ForecastScores
from ..space.archhyper import ArchHyper
from ..utils.validation import (
    require,
    require_finite,
    require_int_at_least,
    require_positive_finite,
)
from .task import Task

# The deterministic worst-case score assigned to a diverged candidate when
# the evaluator's divergence policy is "sentinel".  It is *finite* (so
# downstream ranking math stays NaN-free), bitwise-stable across backends
# and platforms (a float32/float64-exact constant), and larger than any real
# validation error, so a diverged candidate automatically loses every
# comparison.  See docs/numerics.md.
SENTINEL_SCORE = float(np.finfo(np.float32).max)


def is_sentinel_score(score: float) -> bool:
    """Whether ``score`` marks a diverged candidate (sentinel or non-finite)."""
    return not np.isfinite(score) or score >= SENTINEL_SCORE


@dataclass(frozen=True)
class ProxyConfig:
    """Settings of the early-validation proxy."""

    epochs: int = 5  # the paper's k
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 1e-4
    seed: int = 0
    # Score-inert performance knob: pooled proxy training produces bitwise
    # identical scores, so this field is excluded from eval-cache
    # fingerprints (see repro.runtime.fingerprint.proxy_fingerprint).
    # Tri-state: None resolves $REPRO_BUFFER_POOL at use time; an explicit
    # bool (e.g. a per-job service override) wins over the environment.
    buffer_pool: bool | None = None
    # Fidelity axis (successive halving, docs/fidelity.md): train only this
    # many epochs of the full `epochs` budget.  None = full fidelity (the
    # historical behaviour).  Score-MATERIAL when partial: a k'-epoch score
    # is a different measurement than a k-epoch one, so the fingerprint
    # includes it — but only when partial, keeping full-fidelity keys
    # byte-identical to pre-fidelity ones.
    fidelity_epochs: int | None = None
    # Directory for warm-resume training snapshots.  Score-INERT: a warm
    # continuation is bitwise-identical to a fresh run of the same fidelity
    # (enforced by test), so this is excluded from fingerprints like
    # buffer_pool.
    warm_dir: str | None = None

    def __post_init__(self) -> None:
        require_int_at_least(self.epochs, 1, "epochs")
        require_int_at_least(self.batch_size, 1, "batch_size")
        require_positive_finite(self.lr, "lr")
        require_finite(self.weight_decay, "weight_decay")
        require_int_at_least(self.seed, 0, "seed")
        if self.fidelity_epochs is not None:
            require_int_at_least(self.fidelity_epochs, 1, "fidelity_epochs")
            require(
                self.fidelity_epochs <= self.epochs,
                f"fidelity_epochs must be <= epochs ({self.epochs}), "
                f"got {self.fidelity_epochs}",
            )

    @property
    def is_partial(self) -> bool:
        """Whether this config measures at a reduced (sub-full) fidelity."""
        return self.fidelity_epochs is not None and self.fidelity_epochs < self.epochs

    def train_config(self, epochs: int | None = None) -> TrainConfig:
        """Materialize the proxy's training configuration.

        Note the fidelity axis deliberately does NOT change this config: a
        partial-fidelity run trains under the *full*-epochs configuration
        (same patience, same identity) and is merely cut short by the
        trainer's ``stop_after_epoch`` — that is what makes a promoted
        candidate's continuation bitwise-identical to an uninterrupted run.
        """
        chosen = epochs if epochs is not None else self.epochs
        return TrainConfig(
            epochs=chosen,
            batch_size=self.batch_size,
            lr=self.lr,
            weight_decay=self.weight_decay,
            patience=max(chosen, 1),
            seed=self.seed,
            buffer_pool=self.buffer_pool,
        )


def measure_arch_hyper(
    arch_hyper: ArchHyper,
    task: Task,
    config: ProxyConfig | None = None,
) -> float:
    """R'(ah): validation error after only ``k`` training epochs (Eq. 22).

    Returns the validation MAE (multi-step) or RRSE (single-step); lower is
    better.  Raises :class:`~repro.core.health.DivergenceError` when the
    candidate diverges beyond the trainer's recovery ladder *or* finishes
    with a non-finite validation score — divergence is a typed, deterministic
    outcome here; the evaluator decides whether it becomes a sentinel score
    or propagates (``--divergence-policy``).
    """
    config = config if config is not None else ProxyConfig()
    if config.fidelity_epochs is None and config.warm_dir is None:
        # The exact historical single-fidelity path: no snapshot capture, no
        # warm lookup — byte-for-byte the pre-fidelity pipeline.
        prepared = task.prepared
        model = build_forecaster(
            arch_hyper, task.data, task.horizon, seed=config.seed
        )
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            train_forecaster(
                model, prepared.train, prepared.val, config.train_config()
            )
            scores = evaluate_forecaster(model, prepared.val, config.batch_size)
            value = float(scores.primary(single_step=task.single_step))
        return _checked(value, arch_hyper, task)
    return _measure_with_fidelity(arch_hyper, task, config)


def _checked(value: float, arch_hyper: ArchHyper, task: Task) -> float:
    if not np.isfinite(value):
        raise DivergenceError(
            f"proxy evaluation produced a non-finite score ({value}) for "
            f"{arch_hyper.hyper} on task {task.name!r}"
        )
    return value


def _measure_with_fidelity(
    arch_hyper: ArchHyper, task: Task, config: ProxyConfig
) -> float:
    """R'(ah) at a (possibly partial) fidelity, warm-continuing when possible.

    Training runs under the *full*-epochs :class:`TrainConfig` and is cut at
    the fidelity budget by ``stop_after_epoch``; with a ``warm_dir``, the
    end-of-run trainer snapshot is persisted so a later, higher-fidelity
    measurement of the same candidate resumes instead of retraining — and
    the resumed run is bitwise-identical to a fresh one of that fidelity.
    """
    # Lazy import: the runtime layer imports this module at load time, so
    # the reverse dependency must resolve at call time only.
    from ..runtime.warm import WarmStore

    budget = (
        config.fidelity_epochs
        if config.fidelity_epochs is not None
        else config.epochs
    )
    store = WarmStore(config.warm_dir) if config.warm_dir else None
    snapshot = (
        store.load(arch_hyper, task, config) if store is not None else None
    )
    if snapshot is not None and int(snapshot["epoch"]) > budget:
        # A snapshot past the requested fidelity cannot be rewound; measure
        # fresh (the scheduler only ever promotes upward, so this is rare).
        snapshot = None
    prepared = task.prepared
    model = build_forecaster(arch_hyper, task.data, task.horizon, seed=config.seed)
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        result = train_forecaster(
            model,
            prepared.train,
            prepared.val,
            config.train_config(),
            stop_after_epoch=None if budget >= config.epochs else budget,
            resume_state=snapshot,
            capture_state=store is not None,
        )
        scores = evaluate_forecaster(model, prepared.val, config.batch_size)
        value = float(scores.primary(single_step=task.single_step))
    if store is not None and result.state is not None:
        store.save(arch_hyper, task, config, result.state)
    return _checked(value, arch_hyper, task)


def full_train_score(
    arch_hyper: ArchHyper,
    task: Task,
    epochs: int = 30,
    config: ProxyConfig | None = None,
    return_test: bool = True,
) -> ForecastScores:
    """Fully train ``arch_hyper`` on ``task`` and score it (val or test)."""
    config = config if config is not None else ProxyConfig()
    prepared = task.prepared
    model = build_forecaster(arch_hyper, task.data, task.horizon, seed=config.seed)
    train_forecaster(
        model,
        prepared.train,
        prepared.val,
        TrainConfig(
            epochs=epochs,
            batch_size=config.batch_size,
            lr=config.lr,
            weight_decay=config.weight_decay,
            patience=max(3, epochs // 4),
            seed=config.seed,
            buffer_pool=config.buffer_pool,
        ),
    )
    windows = prepared.test if return_test else prepared.val
    return evaluate_forecaster(
        model, windows, config.batch_size, inverse=prepared.inverse
    )
