"""Task enrichment for comparator pre-training (paper Section 3.2.4, Fig. 5).

Pre-training the T-AHC needs many diverse tasks.  Commonly used CTS datasets
are multiplied into sub-tasks by:

* cutting **temporally continuous** segments (preserving temporal patterns),
* sampling **variables** (series) and reconstructing their adjacency matrix
  (preserving spatial correlations),
* pairing each subset with forecasting settings appropriate to its length —
  short datasets are only associated with small P/Q values (the paper's
  first guideline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.datasets import CTSData
from .task import Task


@dataclass(frozen=True)
class EnrichmentConfig:
    """Knobs for subset creation."""

    min_fraction_steps: float = 0.5  # minimal temporal-slice length
    min_fraction_nodes: float = 0.5  # minimal node-sample size
    min_windows: int = 20  # subset must support this many (P+Q)-windows

    def __post_init__(self) -> None:
        if not 0 < self.min_fraction_steps <= 1 or not 0 < self.min_fraction_nodes <= 1:
            raise ValueError("fractions must lie in (0, 1]")


def derive_subset(
    data: CTSData, rng: np.random.Generator, config: EnrichmentConfig = EnrichmentConfig()
) -> CTSData:
    """Draw one temporally-continuous, node-sampled subset of ``data``."""
    min_steps = max(int(data.n_steps * config.min_fraction_steps), 2)
    length = int(rng.integers(min_steps, data.n_steps + 1))
    start = int(rng.integers(0, data.n_steps - length + 1))
    min_nodes = max(int(data.n_series * config.min_fraction_nodes), 2)
    n_nodes = int(rng.integers(min_nodes, data.n_series + 1))
    nodes = np.sort(rng.choice(data.n_series, size=n_nodes, replace=False))
    subset = data.slice_time(start, start + length).select_nodes(nodes)
    return subset


def supported_settings(
    data: CTSData,
    settings: list[tuple[int, int]],
    min_windows: int,
) -> list[tuple[int, int]]:
    """Filter forecasting settings to those the dataset can support.

    Implements the guideline that datasets with few time steps should only be
    associated with smaller P and Q values.
    """
    return [
        (p, q)
        for p, q in settings
        if data.n_steps >= (p + q) * 3 and data.n_steps - (p + q) + 1 >= min_windows
    ]


def enrich_tasks(
    source_datasets: list[CTSData],
    settings: list[tuple[int, int]],
    n_subsets: int,
    seed: int = 0,
    config: EnrichmentConfig = EnrichmentConfig(),
    corruptions: list[tuple[str, float]] | None = None,
) -> list[Task]:
    """Create pre-training tasks from source datasets (Algorithm 1 input).

    Each of the ``n_subsets`` subsets is cut from a round-robin-chosen source
    dataset and paired with every forecasting setting its length supports.

    ``corruptions`` — ``(profile, severity)`` pairs from
    :data:`~repro.data.corruption.CORRUPTION_PROFILES` — widens the bank
    with dirty tasks: accepted subsets cycle through clean and each listed
    corruption in turn, so roughly ``len(corruptions)/(len(corruptions)+1)``
    of the bank is dirty.  The corruption RNG is derived per subset from the
    subset name, not drawn from the enrichment stream, so passing
    ``corruptions=None`` leaves the clean bank bitwise-identical.  Source
    datasets that already carry masks keep them either way.
    """
    if not source_datasets:
        raise ValueError("need at least one source dataset")
    if not settings:
        raise ValueError("need at least one forecasting setting")
    if corruptions:
        from ..data.corruption import corrupt_dataset

    rng = np.random.default_rng(seed)
    tasks: list[Task] = []
    attempts = 0
    index = 0
    accepted = 0
    while len({t.data.name for t in tasks}) < n_subsets:
        attempts += 1
        if attempts > 50 * n_subsets:
            break  # sources too short for the requested settings
        data = source_datasets[index % len(source_datasets)]
        index += 1
        subset = derive_subset(data, rng, config)
        usable = supported_settings(subset, settings, config.min_windows)
        if not usable:
            continue
        if corruptions:
            slot = accepted % (len(corruptions) + 1)
            if slot > 0:
                profile, severity = corruptions[slot - 1]
                subset = corrupt_dataset(subset, profile, severity=severity, seed=seed)
        accepted += 1
        for p, q in usable:
            tasks.append(Task(data=subset, p=p, q=q, single_step=False))
    if not tasks:
        raise RuntimeError(
            "task enrichment produced no tasks; settings exceed dataset lengths"
        )
    return tasks
