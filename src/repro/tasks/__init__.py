"""CTS forecasting tasks, enrichment, and the early-validation proxy."""

from .enrichment import EnrichmentConfig, derive_subset, enrich_tasks, supported_settings
from .proxy import (
    SENTINEL_SCORE,
    ProxyConfig,
    full_train_score,
    is_sentinel_score,
    measure_arch_hyper,
)
from .task import PreparedTask, Task

__all__ = [
    "EnrichmentConfig",
    "derive_subset",
    "enrich_tasks",
    "supported_settings",
    "SENTINEL_SCORE",
    "ProxyConfig",
    "full_train_score",
    "is_sentinel_score",
    "measure_arch_hyper",
    "PreparedTask",
    "Task",
]
