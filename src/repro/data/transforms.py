"""Time series augmentations.

Used for robustness experiments and as the augmentation inventory behind
contrastive pre-training (TS2Vec's crop + mask live in the TS2Vec module
itself; these are the generic, reusable forms).  All transforms accept and
return ``(..., T, F)`` arrays and take an explicit RNG.
"""

from __future__ import annotations

import numpy as np


def jitter(values: np.ndarray, rng: np.random.Generator, sigma: float = 0.03) -> np.ndarray:
    """Additive Gaussian noise scaled by the series' standard deviation."""
    scale = values.std() * sigma
    return values + rng.normal(0.0, scale, size=values.shape)


def magnitude_scale(
    values: np.ndarray, rng: np.random.Generator, sigma: float = 0.1
) -> np.ndarray:
    """Multiply each feature channel by a random factor around 1."""
    factors = rng.normal(1.0, sigma, size=values.shape[-1])
    return values * factors


def random_crop(
    values: np.ndarray, rng: np.random.Generator, crop_length: int
) -> np.ndarray:
    """Contiguous random crop along the time axis (second-to-last axis)."""
    time = values.shape[-2]
    if not 0 < crop_length <= time:
        raise ValueError(f"crop_length {crop_length} not in (0, {time}]")
    start = int(rng.integers(0, time - crop_length + 1))
    return values[..., start : start + crop_length, :]


def timestamp_mask(
    values: np.ndarray, rng: np.random.Generator, rate: float = 0.15
) -> np.ndarray:
    """Zero out random timestamps (TS2Vec's masking augmentation)."""
    if not 0 <= rate < 1:
        raise ValueError(f"mask rate must be in [0, 1), got {rate}")
    masked = values.copy()
    drop = rng.random(values.shape[:-1]) < rate
    masked[drop] = 0.0
    return masked


def impute_non_finite(values: np.ndarray) -> np.ndarray:
    """Replace NaN/Inf entries with their series-feature's finite mean.

    Works on ``(..., T, F)`` arrays: each (series, feature) slice is imputed
    with the mean of its *finite* timesteps; a slice with no finite value at
    all falls back to 0.0.  Finite entries are returned bit-identical, so
    imputation is a no-op on clean data.
    """
    values = np.asarray(values)
    with np.errstate(invalid="ignore"):
        bad = ~np.isfinite(values)
    if not bad.any():
        return values
    clean = values.copy()
    clean[bad] = 0.0
    finite_count = (~bad).sum(axis=-2, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = clean.sum(axis=-2, keepdims=True) / np.maximum(finite_count, 1)
    fill = np.broadcast_to(means, values.shape)[bad]
    clean[bad] = fill
    return clean


def missing_blocks(
    values: np.ndarray,
    rng: np.random.Generator,
    n_blocks: int = 2,
    block_length: int = 4,
) -> np.ndarray:
    """Simulate sensor outages: zero out contiguous time blocks per series.

    Used by failure-injection tests: CTS pipelines must stay finite under
    realistic missing-data patterns.
    """
    corrupted = values.copy()
    time = values.shape[-2]
    for _ in range(n_blocks):
        start = int(rng.integers(0, max(time - block_length, 1)))
        corrupted[..., start : start + block_length, :] = 0.0
    return corrupted
