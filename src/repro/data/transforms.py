"""Time series augmentations.

Used for robustness experiments and as the augmentation inventory behind
contrastive pre-training (TS2Vec's crop + mask live in the TS2Vec module
itself; these are the generic, reusable forms).  All transforms accept and
return ``(..., T, F)`` arrays and take an explicit RNG.
"""

from __future__ import annotations

import numpy as np

from .corruption import CorruptionResult, inject_irregular_sampling


def jitter(values: np.ndarray, rng: np.random.Generator, sigma: float = 0.03) -> np.ndarray:
    """Additive Gaussian noise scaled by the series' standard deviation."""
    scale = values.std() * sigma
    return values + rng.normal(0.0, scale, size=values.shape)


def magnitude_scale(
    values: np.ndarray, rng: np.random.Generator, sigma: float = 0.1
) -> np.ndarray:
    """Multiply each feature channel by a random factor around 1."""
    factors = rng.normal(1.0, sigma, size=values.shape[-1])
    return values * factors


def random_crop(
    values: np.ndarray, rng: np.random.Generator, crop_length: int
) -> np.ndarray:
    """Contiguous random crop along the time axis (second-to-last axis)."""
    time = values.shape[-2]
    if not 0 < crop_length <= time:
        raise ValueError(f"crop_length {crop_length} not in (0, {time}]")
    start = int(rng.integers(0, time - crop_length + 1))
    return values[..., start : start + crop_length, :]


def timestamp_mask(
    values: np.ndarray, rng: np.random.Generator, rate: float = 0.15
) -> CorruptionResult:
    """Drop random timestamps as NaN-with-mask (TS2Vec's masking augmentation).

    Dropped timestamps used to be zero-filled, which conflated outages with
    legitimate zero readings; now they become NaN and the returned
    :class:`~repro.data.corruption.CorruptionResult` records *which* entries
    were dropped, so callers can impute and score mask-aware.
    """
    values = np.asarray(values)
    t, f = values.shape[-2:]
    result = inject_irregular_sampling(values.reshape(-1, t, f), rng, rate=rate)
    return CorruptionResult(
        result.values.reshape(values.shape),
        result.mask.reshape(values.shape),
        values,
    )


IMPUTATION_POLICIES = ("mean", "ffill", "linear")


def impute_missing(
    values: np.ndarray, mask: np.ndarray | None = None, policy: str = "mean"
) -> np.ndarray:
    """Repair non-finite entries of a ``(..., T, F)`` array under a policy.

    ``mask`` (boolean, same shape, ``True`` = trusted observation) restricts
    which entries feed the fill statistics; untrusted-but-finite entries
    (e.g. point anomalies) are kept as-is — they are what a model sees in the
    wild — but never contribute to means or interpolation anchors.  Finite
    entries are returned bit-identical; only NaN/Inf positions are written.

    Policies:

    * ``"mean"`` — per-(series, feature) mean of observed finite timesteps;
    * ``"ffill"`` — last observed value carried forward, then the first
      observed value carried backward over any leading gap;
    * ``"linear"`` — linear interpolation between observed anchors along
      time, clamped to the edge anchors outside them.

    A (series, feature) slice with no observed finite entry falls back to
    0.0 under every policy.
    """
    if policy not in IMPUTATION_POLICIES:
        raise ValueError(
            f"unknown imputation policy {policy!r}; expected one of {IMPUTATION_POLICIES}"
        )
    values = np.asarray(values)
    if values.ndim < 2:
        raise ValueError(f"impute_missing expects (..., T, F) values, got {values.shape}")
    with np.errstate(invalid="ignore"):
        finite = np.isfinite(values)
    if finite.all():
        return values
    t, f = values.shape[-2:]
    flat = values.reshape(-1, t, f).astype(np.float64, copy=True)
    observed = finite.reshape(-1, t, f).copy()
    if mask is not None:
        mask = np.asarray(mask)
        if mask.shape != values.shape:
            raise ValueError(f"mask shape {mask.shape} != values shape {values.shape}")
        observed &= mask.reshape(-1, t, f)

    if policy == "mean":
        anchored = np.where(observed, flat, 0.0)
        count = observed.sum(axis=1, keepdims=True)
        fill = np.broadcast_to(
            anchored.sum(axis=1, keepdims=True) / np.maximum(count, 1), flat.shape
        )
    elif policy == "ffill":
        steps = np.arange(t)[None, :, None]
        last = np.maximum.accumulate(np.where(observed, steps, -1), axis=1)
        forward = np.take_along_axis(flat, np.maximum(last, 0), axis=1)
        nxt = np.flip(
            np.minimum.accumulate(np.flip(np.where(observed, steps, t), axis=1), axis=1),
            axis=1,
        )
        backward = np.take_along_axis(flat, np.minimum(nxt, t - 1), axis=1)
        fill = np.where(last >= 0, forward, np.where(nxt < t, backward, 0.0))
    else:  # linear
        fill = np.zeros_like(flat)
        for series in range(flat.shape[0]):
            for feature in range(f):
                anchors = np.flatnonzero(observed[series, :, feature])
                if anchors.size:
                    fill[series, :, feature] = np.interp(
                        np.arange(t), anchors, flat[series, anchors, feature]
                    )
    repaired = np.where(finite.reshape(-1, t, f), flat, fill).reshape(values.shape)
    if np.issubdtype(values.dtype, np.floating):
        repaired = repaired.astype(values.dtype)
    return repaired


def impute_non_finite(values: np.ndarray) -> np.ndarray:
    """Replace NaN/Inf entries with their series-feature's finite mean.

    Works on ``(..., T, F)`` arrays: each (series, feature) slice is imputed
    with the mean of its *finite* timesteps; a slice with no finite value at
    all falls back to 0.0.  Finite entries are returned bit-identical, so
    imputation is a no-op on clean data.
    """
    values = np.asarray(values)
    with np.errstate(invalid="ignore"):
        bad = ~np.isfinite(values)
    if not bad.any():
        return values
    clean = values.copy()
    clean[bad] = 0.0
    finite_count = (~bad).sum(axis=-2, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = clean.sum(axis=-2, keepdims=True) / np.maximum(finite_count, 1)
    fill = np.broadcast_to(means, values.shape)[bad]
    clean[bad] = fill
    return clean


def missing_blocks(
    values: np.ndarray,
    rng: np.random.Generator,
    n_blocks: int = 2,
    block_length: int = 4,
) -> CorruptionResult:
    """Simulate fleet-wide outages: NaN out contiguous time blocks.

    Each block hits every series at once (a collector outage, not a single
    bad sensor — for per-series blocks use
    :func:`~repro.data.corruption.inject_block_missing`).  Dropped entries
    are NaN with the observation mask recording them, not zero-filled.  The
    block start is drawn over every valid position including the last one;
    when ``time <= block_length`` the single possible block covers the whole
    axis instead of hitting a degenerate range.
    """
    values = np.asarray(values)
    time = values.shape[-2]
    block = min(max(1, block_length), time)
    corrupted = values.astype(np.float64, copy=True)
    mask = np.ones(values.shape, dtype=bool)
    for _ in range(n_blocks):
        start = int(rng.integers(0, time - block + 1))
        corrupted[..., start : start + block, :] = np.nan
        mask[..., start : start + block, :] = False
    return CorruptionResult(corrupted, mask, values)
