"""Dataset objects and the benchmark registry.

:class:`CTSData` is the in-memory representation of a correlated time series
dataset — the ``X ∈ R^{N×T×F}`` array of Section 2.1 plus its spatial graph.
:func:`get_dataset` materializes any of the paper's benchmark datasets from
the synthetic generators, with sizes scaled down from the paper's Table 3 by
a constant factor so everything runs on CPU (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..utils.seeding import derive_rng
from .generators import GENERATORS
from .graph import subsample_adjacency


@dataclass(frozen=True)
class NonFiniteReport:
    """Where the NaN/Inf entries of a ``(N, T, F)`` array live.

    ``sensors`` and ``timesteps`` list the affected indices (capped at
    ``MAX_LISTED`` each so a fully-corrupted array stays readable).
    """

    MAX_LISTED = 16

    bad_count: int
    total: int
    sensors: tuple[int, ...]
    timesteps: tuple[int, ...]
    sensors_truncated: bool = False
    timesteps_truncated: bool = False

    def describe(self) -> str:
        sensors = ", ".join(map(str, self.sensors)) + (
            ", ..." if self.sensors_truncated else ""
        )
        steps = ", ".join(map(str, self.timesteps)) + (
            ", ..." if self.timesteps_truncated else ""
        )
        return (
            f"{self.bad_count}/{self.total} non-finite entries; "
            f"affected sensors: [{sensors}]; affected timesteps: [{steps}]"
        )


def non_finite_report(values: np.ndarray) -> NonFiniteReport | None:
    """A :class:`NonFiniteReport` for ``values`` (N, T, F), or ``None`` if clean."""
    values = np.asarray(values)
    with np.errstate(invalid="ignore"):
        bad = ~np.isfinite(values)
    if not bad.any():
        return None
    cap = NonFiniteReport.MAX_LISTED
    if values.ndim >= 2:
        sensors = np.flatnonzero(bad.reshape(bad.shape[0], -1).any(axis=1))
        timesteps = np.flatnonzero(
            bad.reshape(bad.shape[0], bad.shape[1], -1).any(axis=(0, 2))
        )
    else:
        sensors = np.array([], dtype=np.int64)
        timesteps = np.flatnonzero(bad)
    return NonFiniteReport(
        bad_count=int(bad.sum()),
        total=int(bad.size),
        sensors=tuple(int(i) for i in sensors[:cap]),
        timesteps=tuple(int(i) for i in timesteps[:cap]),
        sensors_truncated=len(sensors) > cap,
        timesteps_truncated=len(timesteps) > cap,
    )


class NonFiniteDataError(ValueError):
    """A dataset carried NaN/Inf values at load time.

    Rejecting corrupt data at the door is the cheapest numerical guardrail:
    one NaN timestep silently poisons every training window that overlaps
    it, and the failure only surfaces much later as a diverged candidate.
    """

    def __init__(self, name: str, report: NonFiniteReport, where: str = "values"):
        self.name = name
        self.report = report
        self.where = where
        super().__init__(
            f"dataset {name!r} has non-finite {where}: {report.describe()}"
        )


@dataclass(frozen=True)
class CTSData:
    """A correlated time series dataset: values ``(N, T, F)`` and its graph.

    Construction validates finiteness: corrupt values or adjacency raise a
    :class:`NonFiniteDataError` naming the affected sensors and timesteps.
    Use :func:`sanitize_values` (``on_non_finite="impute"``) to repair an
    array before construction instead of rejecting it.

    ``mask`` is the optional observation mask (boolean, same shape as
    ``values``, ``True`` = trusted observation; see
    :mod:`repro.data.corruption` for the semantics).  Values must be finite
    even when a mask is present — imputation happens *before* construction;
    the mask records which entries are repaired/untrusted so downstream
    statistics, losses, and metrics can exclude them.  ``mask=None`` is the
    clean-data path and must stay bitwise-identical to a maskless build.
    """

    name: str
    values: np.ndarray
    adjacency: np.ndarray
    domain: str
    steps_per_day: int = 288
    mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.values.ndim != 3:
            raise ValueError(f"values must be (N, T, F), got {self.values.shape}")
        n = self.values.shape[0]
        if self.adjacency.shape != (n, n):
            raise ValueError(
                f"adjacency {self.adjacency.shape} inconsistent with N={n}"
            )
        if self.mask is not None:
            if self.mask.shape != self.values.shape:
                raise ValueError(
                    f"mask shape {self.mask.shape} != values shape {self.values.shape}"
                )
            if self.mask.dtype != np.bool_:
                raise ValueError(f"mask must be boolean, got {self.mask.dtype}")
        report = non_finite_report(self.values)
        if report is not None:
            raise NonFiniteDataError(self.name, report)
        if not np.isfinite(self.adjacency).all():
            bad = ~np.isfinite(self.adjacency)
            rows = tuple(
                int(i)
                for i in np.flatnonzero(bad.any(axis=1))[: NonFiniteReport.MAX_LISTED]
            )
            report = NonFiniteReport(
                bad_count=int(bad.sum()),
                total=int(bad.size),
                sensors=rows,
                timesteps=(),
            )
            raise NonFiniteDataError(self.name, report, where="adjacency")

    @property
    def n_series(self) -> int:
        return self.values.shape[0]

    @property
    def n_steps(self) -> int:
        return self.values.shape[1]

    @property
    def n_features(self) -> int:
        return self.values.shape[2]

    def slice_time(self, start: int, end: int, name: str | None = None) -> "CTSData":
        """A temporally-continuous subset (task-enrichment, Figure 5)."""
        if not 0 <= start < end <= self.n_steps:
            raise ValueError(f"bad time slice [{start}, {end}) for T={self.n_steps}")
        return replace(
            self,
            name=name or f"{self.name}[{start}:{end}]",
            values=self.values[:, start:end],
            mask=None if self.mask is None else self.mask[:, start:end],
        )

    def select_nodes(self, nodes: np.ndarray, name: str | None = None) -> "CTSData":
        """Node subsample with adjacency reconstruction (task-enrichment)."""
        nodes = np.asarray(nodes)
        if nodes.size == 0 or nodes.max() >= self.n_series:
            raise ValueError(f"invalid node selection for N={self.n_series}")
        return replace(
            self,
            name=name or f"{self.name}|nodes={nodes.size}",
            values=self.values[nodes],
            adjacency=subsample_adjacency(self.adjacency, nodes),
            mask=None if self.mask is None else self.mask[nodes],
        )


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: which generator family, at which (scaled) size.

    ``corruption`` names a profile from
    :data:`~repro.data.corruption.CORRUPTION_PROFILES`; when set,
    :func:`get_dataset` generates the clean series, injects the profile at
    ``severity`` under a seed derived from the dataset name, repairs the
    dropped entries with the ``imputation`` policy, and attaches the
    observation mask.  ``corruption=None`` (all pre-existing specs) is the
    untouched clean path.
    """

    family: str
    n_series: int
    n_steps: int
    steps_per_day: int
    paper_n_series: int
    paper_n_steps: int
    split_ratio_multi: tuple[int, int, int] = (7, 1, 2)
    split_ratio_single: tuple[int, int, int] = (6, 2, 2)
    generator_kwargs: dict = field(default_factory=dict)
    corruption: str | None = None
    severity: float = 0.3
    imputation: str = "mean"


# Sizes below scale the paper's Table 3 down by roughly 16x in N and T while
# preserving the *relative* ordering of dataset scales, which is what the
# task-embedding experiments depend on (Section 4.2.1/4.2.6).
SOURCE_DATASETS: dict[str, DatasetSpec] = {
    "PEMS03": DatasetSpec("traffic_flow", 12, 1600, 288, 358, 26208),
    "PEMS04": DatasetSpec("traffic_flow", 12, 1050, 288, 307, 16992),
    "PEMS07": DatasetSpec("traffic_flow", 16, 1750, 288, 883, 28224),
    "PEMS08": DatasetSpec("traffic_flow", 10, 1100, 288, 170, 17856),
    "METR-LA": DatasetSpec("traffic_speed", 13, 2100, 288, 207, 34272),
    "ETTh1": DatasetSpec("ett", 7, 1100, 24, 7, 17420),
    "ETTh2": DatasetSpec("ett", 7, 1100, 24, 7, 17420),
    "ETTm1": DatasetSpec("ett", 7, 2100, 96, 7, 69680),
    "ETTm2": DatasetSpec("ett", 7, 2100, 96, 7, 69680),
    "Solar-Energy": DatasetSpec("solar", 12, 3200, 144, 137, 52560),
    "ExchangeRate": DatasetSpec("exchange_rate", 8, 480, 1, 8, 7588),
}

TARGET_DATASETS: dict[str, DatasetSpec] = {
    "PEMS-BAY": DatasetSpec(
        "traffic_speed", 20, 3250, 288, 325, 52116, (7, 1, 2), (6, 2, 2)
    ),
    "Electricity": DatasetSpec(
        "electricity", 20, 1650, 24, 321, 26304, (7, 1, 2), (6, 2, 2)
    ),
    "PEMSD7M": DatasetSpec(
        "traffic_speed", 14, 800, 288, 228, 12671, (6, 2, 2), (6, 2, 2)
    ),
    "NYC-TAXI": DatasetSpec("demand", 16, 560, 48, 266, 4368, (6, 2, 2), (6, 2, 2)),
    "NYC-BIKE": DatasetSpec("demand", 15, 560, 48, 250, 4368, (6, 2, 2), (6, 2, 2)),
    "Los-Loop": DatasetSpec(
        "traffic_speed", 13, 420, 288, 207, 2016, (7, 1, 2), (6, 2, 2)
    ),
    "SZ-TAXI": DatasetSpec(
        "traffic_speed", 10, 480, 96, 156, 2976, (7, 1, 2), (6, 2, 2)
    ),
}

def _dirty(base: DatasetSpec, corruption: str, severity: float, **overrides) -> DatasetSpec:
    """A corrupted variant of a registered spec (same generator and sizes)."""
    return replace(base, corruption=corruption, severity=severity, **overrides)


# Dirty-task bank: corrupted variants of the benchmark datasets, so the
# comparator pretrains on imperfect tasks and zero-shot ranking can be
# evaluated out of the clean distribution (ROADMAP item 5).  The "-XL-"
# variant doubles N on top of corruption as a larger-fleet stress case.
DIRTY_DATASETS: dict[str, DatasetSpec] = {
    "PEMS08-missing": _dirty(SOURCE_DATASETS["PEMS08"], "block_missing", 0.25),
    "PEMS08-outage": _dirty(SOURCE_DATASETS["PEMS08"], "sensor_outage", 0.3),
    "METR-LA-anomaly": _dirty(SOURCE_DATASETS["METR-LA"], "point_anomalies", 0.3),
    "ETTh1-shift": _dirty(SOURCE_DATASETS["ETTh1"], "level_shift", 0.4),
    "Solar-Energy-irregular": _dirty(
        SOURCE_DATASETS["Solar-Energy"], "irregular_sampling", 0.3, imputation="linear"
    ),
    "PEMS07-XL-missing": _dirty(
        SOURCE_DATASETS["PEMS07"], "block_missing", 0.3, n_series=32, imputation="ffill"
    ),
    "SZ-TAXI-missing": _dirty(TARGET_DATASETS["SZ-TAXI"], "block_missing", 0.25),
}

DATASET_SPECS: dict[str, DatasetSpec] = {
    **SOURCE_DATASETS,
    **TARGET_DATASETS,
    **DIRTY_DATASETS,
}


def list_datasets() -> list[str]:
    """Names of every registered benchmark dataset."""
    return sorted(DATASET_SPECS)


def sanitize_values(
    values: np.ndarray,
    name: str = "<unnamed>",
    on_non_finite: str = "raise",
    policy: str = "mean",
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, NonFiniteReport | None]:
    """Validate (or repair) a raw value array before it becomes a dataset.

    ``on_non_finite="raise"`` rejects corrupt data with a
    :class:`NonFiniteDataError`; ``"impute"`` repairs NaN/Inf entries under
    ``policy`` (one of :data:`~repro.data.transforms.IMPUTATION_POLICIES`:
    per-series mean, forward-fill, or linear interpolation) and returns the
    report of what was repaired.  ``mask`` optionally restricts which
    entries may anchor the fill statistics (see
    :func:`~repro.data.transforms.impute_missing`).  Clean arrays pass
    through untouched.
    """
    if on_non_finite not in ("raise", "impute"):
        raise ValueError(
            f"on_non_finite must be 'raise' or 'impute', got {on_non_finite!r}"
        )
    report = non_finite_report(values)
    if report is None:
        return values, None
    if on_non_finite == "raise":
        raise NonFiniteDataError(name, report)
    from .transforms import impute_missing, impute_non_finite

    if policy == "mean" and mask is None:
        # The historical repair path, kept verbatim so existing callers stay
        # bitwise-identical.
        return impute_non_finite(values), report
    return impute_missing(values, mask, policy=policy), report


def get_dataset(name: str, seed: int = 0) -> CTSData:
    """Materialize benchmark dataset ``name`` deterministically under ``seed``."""
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; known: {list_datasets()}")
    spec = DATASET_SPECS[name]
    rng = derive_rng(seed, "dataset", name)
    generator = GENERATORS[spec.family]
    kwargs = dict(spec.generator_kwargs)
    if spec.family not in ("exchange_rate",):
        kwargs.setdefault("steps_per_day", spec.steps_per_day)
    values, adjacency = generator(spec.n_series, spec.n_steps, rng, **kwargs)
    data = CTSData(
        name=name,
        values=values.astype(np.float32),
        adjacency=adjacency,
        domain=spec.family,
        steps_per_day=spec.steps_per_day,
    )
    if spec.corruption is not None:
        from .corruption import corrupt_dataset

        data = corrupt_dataset(
            data,
            spec.corruption,
            severity=spec.severity,
            seed=seed,
            imputation=spec.imputation,
            name=name,
        )
    return data


def get_spec(name: str) -> DatasetSpec:
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}")
    return DATASET_SPECS[name]
