"""Seeded corruption injection for dirty-data robustness.

Real correlated time series from large sensor fleets are never clean: sensors
go dark for hours (outages), transmit garbage (point anomalies), get
recalibrated or replaced (level/regime shifts), and report on irregular
clocks (sampling gaps).  This module turns those failure modes into
*composable, deterministic* corruption primitives so every stage of the
system — sample collection, curriculum pre-training, zero-shot ranking,
forecaster training, and the HTTP service — can be exercised against dirty
tasks that are exactly reproducible under :func:`~repro.utils.seeding.derive_rng`.

Mask semantics (the contract every consumer relies on):

* Each injector returns a :class:`CorruptionResult` carrying the corrupted
  ``values``, a boolean observation ``mask``, and the untouched ``clean``
  reference.
* ``mask[i, t, f] is True`` **iff** the entry is a trustworthy observation,
  i.e. ``values[i, t, f] == clean[i, t, f]``.  Dropped entries are NaN (and
  masked out); modified-in-place entries (anomalies, level shifts) stay
  finite but are masked out too, so masked losses and metrics never score a
  model against corrupted ground truth.
* Every non-finite entry is masked out: ``isnan(values) ⊆ ~mask``.

Profiles compose primitives at a single ``severity`` knob in ``(0, 1]`` and
are applied through :func:`apply_profile`, which derives its RNG from
``(seed, "corruption", profile, key)`` — the same corruption lands bitwise
identically no matter where in a pipeline it is requested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..utils.seeding import derive_rng


@dataclass(frozen=True)
class CorruptionResult:
    """One corrupted array: dirty values, observation mask, clean reference.

    ``values`` holds NaN at dropped entries; ``mask`` is boolean with the
    same shape (``True`` = trusted observation); ``clean`` is the input,
    untouched.
    """

    values: np.ndarray
    mask: np.ndarray
    clean: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != self.mask.shape or self.values.shape != self.clean.shape:
            raise ValueError(
                f"values {self.values.shape}, mask {self.mask.shape}, and "
                f"clean {self.clean.shape} must share one shape"
            )
        if self.mask.dtype != np.bool_:
            raise ValueError(f"mask must be boolean, got {self.mask.dtype}")

    @property
    def corrupted_fraction(self) -> float:
        """Fraction of entries that are no longer trusted observations."""
        return float((~self.mask).mean())


def _as_ntf(values: np.ndarray) -> np.ndarray:
    """Validate and return a float ``(N, T, F)`` array (copy-free)."""
    values = np.asarray(values)
    if values.ndim != 3:
        raise ValueError(f"corruption expects (N, T, F) values, got {values.shape}")
    return values


def _series_std(values: np.ndarray) -> np.ndarray:
    """Per-(series, feature) std ``(N, 1, F)`` with zero-variance fallback."""
    std = np.nanstd(values, axis=1, keepdims=True)
    return np.where(std > 0, std, 1.0)


# ---------------------------------------------------------------------------
# Injection primitives
# ---------------------------------------------------------------------------


def inject_sensor_outage(
    values: np.ndarray,
    rng: np.random.Generator,
    sensor_fraction: float = 0.25,
    length_fraction: float = 0.25,
) -> CorruptionResult:
    """Contiguous whole-sensor outages: chosen sensors go dark (NaN) for a
    contiguous time block across every feature."""
    clean = _as_ntf(values)
    n, t, _ = clean.shape
    corrupted = clean.astype(np.float64, copy=True)
    mask = np.ones(clean.shape, dtype=bool)
    n_sensors = max(1, int(round(sensor_fraction * n)))
    length = min(t, max(1, int(round(length_fraction * t))))
    sensors = rng.choice(n, size=n_sensors, replace=False)
    for sensor in np.sort(sensors):
        start = int(rng.integers(0, t - length + 1))
        corrupted[sensor, start : start + length, :] = np.nan
        mask[sensor, start : start + length, :] = False
    return CorruptionResult(corrupted, mask, clean)


def inject_block_missing(
    values: np.ndarray,
    rng: np.random.Generator,
    rate: float = 0.2,
    block_length: int = 8,
) -> CorruptionResult:
    """Block missingness: NaN blocks dropped per series until roughly
    ``rate`` of each series' timesteps are gone."""
    if not 0 <= rate < 1:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    clean = _as_ntf(values)
    n, t, _ = clean.shape
    corrupted = clean.astype(np.float64, copy=True)
    mask = np.ones(clean.shape, dtype=bool)
    block = min(max(1, block_length), t)
    blocks_per_series = int(round(rate * t / block))
    for series in range(n):
        for _ in range(blocks_per_series):
            start = int(rng.integers(0, t - block + 1))
            corrupted[series, start : start + block, :] = np.nan
            mask[series, start : start + block, :] = False
    return CorruptionResult(corrupted, mask, clean)


def inject_point_anomalies(
    values: np.ndarray,
    rng: np.random.Generator,
    rate: float = 0.02,
    magnitude: float = 8.0,
) -> CorruptionResult:
    """Point anomalies: isolated entries get a large additive spike (scaled
    by the series' std).  The entries stay finite but are masked out — they
    are observations of a broken sensor, not of the process."""
    if not 0 <= rate < 1:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    clean = _as_ntf(values)
    corrupted = clean.astype(np.float64, copy=True)
    hit = rng.random(clean.shape) < rate
    signs = np.where(rng.random(clean.shape) < 0.5, -1.0, 1.0)
    spikes = magnitude * _series_std(clean) * signs
    corrupted = np.where(hit, corrupted + spikes, corrupted)
    # A spike of exactly zero would leave the entry equal to its clean value;
    # magnitude * std is strictly positive, so every hit entry truly changes.
    return CorruptionResult(corrupted, ~hit, clean)


def inject_level_shift(
    values: np.ndarray,
    rng: np.random.Generator,
    magnitude: float = 3.0,
    shift_fraction: float = 0.5,
) -> CorruptionResult:
    """Level/regime shift: a per-series changepoint after which the series
    is offset by ``magnitude`` stds (sensor recalibration / regime change).
    Every shifted entry is masked out — it no longer matches the clean
    reference the rest of the pipeline is scored against."""
    clean = _as_ntf(values)
    n, t, _ = clean.shape
    corrupted = clean.astype(np.float64, copy=True)
    mask = np.ones(clean.shape, dtype=bool)
    n_shifted = max(1, int(round(shift_fraction * n)))
    shifted = np.sort(rng.choice(n, size=n_shifted, replace=False))
    std = _series_std(clean)
    for series in shifted:
        changepoint = int(rng.integers(t // 4, 3 * t // 4 + 1))
        sign = 1.0 if rng.random() < 0.5 else -1.0
        corrupted[series, changepoint:, :] += sign * magnitude * std[series]
        mask[series, changepoint:, :] = False
    return CorruptionResult(corrupted, mask, clean)


def inject_irregular_sampling(
    values: np.ndarray,
    rng: np.random.Generator,
    rate: float = 0.15,
) -> CorruptionResult:
    """Irregular sampling: individual timestamps dropped independently per
    series (NaN across all features), as if the sensor reported on its own
    jittery clock and the regular grid has holes."""
    if not 0 <= rate < 1:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    clean = _as_ntf(values)
    n, t, _ = clean.shape
    corrupted = clean.astype(np.float64, copy=True)
    dropped = rng.random((n, t)) < rate  # one clock per series, all features
    mask = np.broadcast_to(~dropped[..., None], clean.shape).copy()
    corrupted[~mask] = np.nan
    return CorruptionResult(corrupted, mask, clean)


# ---------------------------------------------------------------------------
# Severity-parameterized profiles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CorruptionProfile:
    """One named corruption profile: a chain of severity-scaled injectors.

    ``steps`` maps a ``severity`` in ``(0, 1]`` to the keyword arguments of
    each injector; chained injectors see the previous step's output and the
    masks AND together, so composition preserves the mask contract.
    """

    name: str
    steps: tuple[tuple[Callable[..., CorruptionResult], Callable[[float], dict]], ...]

    def apply(
        self, values: np.ndarray, rng: np.random.Generator, severity: float = 0.3
    ) -> CorruptionResult:
        if not 0 < severity <= 1:
            raise ValueError(f"severity must be in (0, 1], got {severity}")
        clean = _as_ntf(values)
        current = clean
        mask = np.ones(clean.shape, dtype=bool)
        for injector, scale in self.steps:
            result = injector(current, rng, **scale(severity))
            current = result.values
            mask &= result.mask
        return CorruptionResult(current, mask, clean)


CORRUPTION_PROFILES: dict[str, CorruptionProfile] = {
    "sensor_outage": CorruptionProfile(
        "sensor_outage",
        (
            (
                inject_sensor_outage,
                lambda s: {"sensor_fraction": s, "length_fraction": 0.2 + 0.3 * s},
            ),
        ),
    ),
    "block_missing": CorruptionProfile(
        "block_missing",
        ((inject_block_missing, lambda s: {"rate": min(s, 0.95), "block_length": 8}),),
    ),
    "point_anomalies": CorruptionProfile(
        "point_anomalies",
        ((inject_point_anomalies, lambda s: {"rate": 0.1 * s, "magnitude": 8.0}),),
    ),
    "level_shift": CorruptionProfile(
        "level_shift",
        (
            (
                inject_level_shift,
                lambda s: {"magnitude": 1.0 + 4.0 * s, "shift_fraction": 0.5},
            ),
        ),
    ),
    "irregular_sampling": CorruptionProfile(
        "irregular_sampling",
        ((inject_irregular_sampling, lambda s: {"rate": min(s, 0.95)}),),
    ),
    # Compound profile: the "everything at once" stress case.
    "mixed": CorruptionProfile(
        "mixed",
        (
            (inject_block_missing, lambda s: {"rate": min(0.5 * s, 0.95)}),
            (inject_point_anomalies, lambda s: {"rate": 0.05 * s, "magnitude": 8.0}),
            (inject_irregular_sampling, lambda s: {"rate": min(0.25 * s, 0.95)}),
        ),
    ),
}


def list_profiles() -> list[str]:
    """Names of every registered corruption profile."""
    return sorted(CORRUPTION_PROFILES)


def apply_profile(
    profile: str,
    values: np.ndarray,
    severity: float = 0.3,
    seed: int = 0,
    key: str = "",
) -> CorruptionResult:
    """Apply a named profile deterministically under ``derive_rng``.

    The RNG stream is derived from ``(seed, "corruption", profile, key)``:
    two call sites asking for the same corruption of the same logical object
    (``key`` — typically the dataset name) get bitwise-identical dirt, and
    the stream is independent of every other consumer of ``seed``.
    """
    if profile not in CORRUPTION_PROFILES:
        raise KeyError(f"unknown corruption profile {profile!r}; known: {list_profiles()}")
    rng = derive_rng(seed, "corruption", profile, key)
    return CORRUPTION_PROFILES[profile].apply(values, rng, severity=severity)


def corrupt_dataset(
    data,
    profile: str,
    severity: float = 0.3,
    seed: int = 0,
    imputation: str = "mean",
    name: str | None = None,
):
    """A dirty copy of a :class:`~repro.data.datasets.CTSData`.

    The corruption is seeded by ``(seed, "corruption", profile, data.name)``,
    dropped entries are repaired with the requested imputation policy (the
    values a model trains on must be finite), and the observation mask rides
    on the returned dataset so every mask-aware stage downstream excludes
    untrusted entries from statistics, losses, and metrics.
    """
    from .datasets import CTSData
    from .transforms import impute_missing

    result = apply_profile(
        profile, data.values, severity=severity, seed=seed, key=data.name
    )
    filled = impute_missing(result.values, result.mask, policy=imputation)
    mask = result.mask if data.mask is None else (result.mask & data.mask)
    return CTSData(
        name=name or f"{data.name}~{profile}@{severity:g}",
        values=filled.astype(data.values.dtype),
        adjacency=data.adjacency,
        domain=data.domain,
        steps_per_day=data.steps_per_day,
        mask=mask,
    )
