"""Correlated time series data substrate: datasets, windows, graphs, scalers."""

from .corruption import (
    CORRUPTION_PROFILES,
    CorruptionProfile,
    CorruptionResult,
    apply_profile,
    corrupt_dataset,
    list_profiles,
)
from .datasets import (
    CTSData,
    DATASET_SPECS,
    DIRTY_DATASETS,
    DatasetSpec,
    NonFiniteDataError,
    NonFiniteReport,
    SOURCE_DATASETS,
    TARGET_DATASETS,
    get_dataset,
    get_spec,
    list_datasets,
    non_finite_report,
    sanitize_values,
)
from .generators import GENERATORS
from .graph import (
    gaussian_kernel_adjacency,
    random_sensor_positions,
    subsample_adjacency,
    symmetric_normalized_laplacian_support,
    transition_matrix,
)
from .scalers import StandardScaler
from . import transforms
from .windows import (
    WindowSet,
    iterate_batches,
    iterate_masked_batches,
    make_windows,
    split_windows,
)

__all__ = [
    "CORRUPTION_PROFILES",
    "CorruptionProfile",
    "CorruptionResult",
    "apply_profile",
    "corrupt_dataset",
    "list_profiles",
    "CTSData",
    "DATASET_SPECS",
    "DIRTY_DATASETS",
    "DatasetSpec",
    "NonFiniteDataError",
    "NonFiniteReport",
    "SOURCE_DATASETS",
    "TARGET_DATASETS",
    "get_dataset",
    "get_spec",
    "list_datasets",
    "non_finite_report",
    "sanitize_values",
    "GENERATORS",
    "gaussian_kernel_adjacency",
    "random_sensor_positions",
    "subsample_adjacency",
    "symmetric_normalized_laplacian_support",
    "transition_matrix",
    "StandardScaler",
    "transforms",
    "WindowSet",
    "iterate_batches",
    "iterate_masked_batches",
    "make_windows",
    "split_windows",
]
