"""Sliding-window construction and batching for forecasting tasks.

Implements the problem setting of Section 2.1: given ``P`` historical steps,
predict either the next ``Q`` steps (multi-step, Eq. 1) or the ``Q``-th
future step (single-step, Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .datasets import CTSData


@dataclass(frozen=True)
class WindowSet:
    """Supervised forecasting samples: ``x (num, P, N, F)``, ``y (num, H, N, F)``.

    ``H`` is ``Q`` for multi-step forecasting and 1 for single-step.
    """

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must contain the same number of samples")

    def __len__(self) -> int:
        return len(self.x)

    @property
    def horizon(self) -> int:
        return self.y.shape[1]


def make_windows(
    data: CTSData, p: int, q: int, single_step: bool = False, stride: int = 1
) -> WindowSet:
    """Cut ``data`` into supervised (history, future) window pairs."""
    if p <= 0 or q <= 0:
        raise ValueError(f"P and Q must be positive, got P={p}, Q={q}")
    span = p + q
    total = data.n_steps
    if total < span:
        raise ValueError(
            f"dataset {data.name} has {total} steps, needs at least {span} for "
            f"P={p}, Q={q}"
        )
    values = np.transpose(data.values, (1, 0, 2))  # (T, N, F)
    starts = range(0, total - span + 1, stride)
    xs = np.stack([values[s : s + p] for s in starts])
    if single_step:
        ys = np.stack([values[s + span - 1 : s + span] for s in starts])
    else:
        ys = np.stack([values[s + p : s + span] for s in starts])
    return WindowSet(x=xs, y=ys)


def split_windows(
    windows: WindowSet, ratio: tuple[int, int, int]
) -> tuple[WindowSet, WindowSet, WindowSet]:
    """Chronological train/val/test split with the paper's ratios (Table 3)."""
    total = len(windows)
    weight = sum(ratio)
    train_end = total * ratio[0] // weight
    val_end = total * (ratio[0] + ratio[1]) // weight
    slices = (slice(0, train_end), slice(train_end, val_end), slice(val_end, total))
    parts = tuple(WindowSet(windows.x[s], windows.y[s]) for s in slices)
    if any(len(part) == 0 for part in parts):
        raise ValueError(
            f"split ratio {ratio} leaves an empty partition for {total} windows"
        )
    return parts


def iterate_batches(
    windows: WindowSet,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x, y)`` mini-batches; shuffled when ``rng`` is given."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(len(windows))
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        index = order[start : start + batch_size]
        yield windows.x[index], windows.y[index]
