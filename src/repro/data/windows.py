"""Sliding-window construction and batching for forecasting tasks.

Implements the problem setting of Section 2.1: given ``P`` historical steps,
predict either the next ``Q`` steps (multi-step, Eq. 1) or the ``Q``-th
future step (single-step, Eq. 2).

When the source :class:`~repro.data.datasets.CTSData` carries an observation
mask, the window cutter slices it alongside the values: ``x_mask``/``y_mask``
mirror ``x``/``y`` and mark which entries are trusted observations, so the
trainer can exclude corrupted targets from the loss and metrics.  Maskless
datasets produce maskless windows — the clean path is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .datasets import CTSData


@dataclass(frozen=True)
class WindowSet:
    """Supervised forecasting samples: ``x (num, P, N, F)``, ``y (num, H, N, F)``.

    ``H`` is ``Q`` for multi-step forecasting and 1 for single-step.
    ``x_mask``/``y_mask`` (optional, boolean, same shapes) mark trusted
    observations; ``None`` means fully observed.
    """

    x: np.ndarray
    y: np.ndarray
    x_mask: np.ndarray | None = None
    y_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must contain the same number of samples")
        if (self.x_mask is None) != (self.y_mask is None):
            raise ValueError("x_mask and y_mask must be supplied together")
        if self.x_mask is not None:
            if self.x_mask.shape != self.x.shape or self.y_mask.shape != self.y.shape:
                raise ValueError(
                    f"mask shapes {self.x_mask.shape}/{self.y_mask.shape} do not "
                    f"match window shapes {self.x.shape}/{self.y.shape}"
                )

    def __len__(self) -> int:
        return len(self.x)

    @property
    def horizon(self) -> int:
        return self.y.shape[1]

    def take(self, index) -> "WindowSet":
        """The sub-set of samples selected by ``index`` (masks ride along)."""
        return WindowSet(
            self.x[index],
            self.y[index],
            None if self.x_mask is None else self.x_mask[index],
            None if self.y_mask is None else self.y_mask[index],
        )


def make_windows(
    data: CTSData, p: int, q: int, single_step: bool = False, stride: int = 1
) -> WindowSet:
    """Cut ``data`` into supervised (history, future) window pairs."""
    if p <= 0 or q <= 0:
        raise ValueError(f"P and Q must be positive, got P={p}, Q={q}")
    span = p + q
    total = data.n_steps
    if total < span:
        raise ValueError(
            f"dataset {data.name} has {total} steps, needs at least {span} for "
            f"P={p}, Q={q}"
        )
    starts = range(0, total - span + 1, stride)

    def cut(array: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        series = np.transpose(array, (1, 0, 2))  # (T, N, F)
        xs = np.stack([series[s : s + p] for s in starts])
        if single_step:
            ys = np.stack([series[s + span - 1 : s + span] for s in starts])
        else:
            ys = np.stack([series[s + p : s + span] for s in starts])
        return xs, ys

    xs, ys = cut(data.values)
    if data.mask is None:
        return WindowSet(x=xs, y=ys)
    x_mask, y_mask = cut(data.mask)
    return WindowSet(x=xs, y=ys, x_mask=x_mask, y_mask=y_mask)


def split_windows(
    windows: WindowSet, ratio: tuple[int, int, int]
) -> tuple[WindowSet, WindowSet, WindowSet]:
    """Chronological train/val/test split with the paper's ratios (Table 3)."""
    total = len(windows)
    weight = sum(ratio)
    train_end = total * ratio[0] // weight
    val_end = total * (ratio[0] + ratio[1]) // weight
    slices = (slice(0, train_end), slice(train_end, val_end), slice(val_end, total))
    parts = tuple(windows.take(s) for s in slices)
    if any(len(part) == 0 for part in parts):
        raise ValueError(
            f"split ratio {ratio} leaves an empty partition for {total} windows"
        )
    return parts


def iterate_batches(
    windows: WindowSet,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x, y)`` mini-batches; shuffled when ``rng`` is given."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(len(windows))
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        index = order[start : start + batch_size]
        yield windows.x[index], windows.y[index]


def iterate_masked_batches(
    windows: WindowSet,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray | None]]:
    """Yield ``(x, y, y_mask)`` mini-batches; ``y_mask`` is ``None`` maskless.

    Identical order and RNG consumption to :func:`iterate_batches`, so a
    trainer switching between the two sees the same batch sequence — that is
    what keeps the clean path bitwise-identical.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(len(windows))
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        index = order[start : start + batch_size]
        y_mask = None if windows.y_mask is None else windows.y_mask[index]
        yield windows.x[index], windows.y[index], y_mask
