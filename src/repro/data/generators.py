"""Synthetic correlated-time-series generators.

The paper evaluates on public sensor datasets (traffic speed/flow, electricity
consumption, taxi/bike demand, solar production, exchange rates).  This
environment has no network access, so each benchmark family is replaced by a
seeded generator that reproduces the statistical structure the method
exploits:

* **temporal structure** — diurnal and weekly seasonality, domain-specific
  shapes (rush-hour dips for speed, double-hump volumes, night-zero solar,
  random-walk exchange rates),
* **spatial structure** — a ground-truth sensor graph; congestion/demand
  shocks diffuse over graph neighbourhoods so nearby series correlate,
* **scale structure** — per-dataset numbers of series and lengths mirroring
  the relative sizes in the paper's Table 3.

Every generator returns ``(values, adjacency)`` with ``values`` of shape
``(N, T, F)``.
"""

from __future__ import annotations

import numpy as np

from .graph import gaussian_kernel_adjacency, random_sensor_positions


def _diurnal(t: np.ndarray, steps_per_day: int, phase: float = 0.0) -> np.ndarray:
    """A smooth 24h periodic curve in [-1, 1]."""
    return np.sin(2.0 * np.pi * (t / steps_per_day + phase))


def _weekly(t: np.ndarray, steps_per_day: int) -> np.ndarray:
    return np.sin(2.0 * np.pi * t / (7.0 * steps_per_day))


def _diffuse_events(
    n_nodes: int,
    n_steps: int,
    adj: np.ndarray,
    rng: np.random.Generator,
    rate: float = 0.01,
    magnitude: float = 1.0,
    duration: int = 12,
) -> np.ndarray:
    """Localized shocks that decay over time and spread to graph neighbours.

    This is what makes the series *correlated*: an event at node ``i``
    bleeds into the rows of nodes adjacent to ``i``, with strength given by
    the adjacency weights — exactly the structure S-operators are supposed
    to pick up.
    """
    events = np.zeros((n_nodes, n_steps), dtype=np.float64)
    n_events = rng.poisson(rate * n_nodes * n_steps)
    neighbor = adj / np.maximum(adj.sum(axis=1, keepdims=True), 1e-8)
    for _ in range(n_events):
        node = int(rng.integers(n_nodes))
        start = int(rng.integers(n_steps))
        length = int(rng.integers(duration // 2, duration * 2))
        end = min(start + length, n_steps)
        profile = magnitude * np.exp(-np.linspace(0, 3, end - start))
        events[node, start:end] += profile
    # One diffusion step spreads each event to graph neighbours.
    return events + 0.5 * neighbor @ events


def generate_traffic_speed(
    n_nodes: int,
    n_steps: int,
    rng: np.random.Generator,
    steps_per_day: int = 288,
    free_flow: float = 62.0,
) -> tuple[np.ndarray, np.ndarray]:
    """METR-LA / PEMS-BAY / Los-Loop style traffic speeds (mph)."""
    adj = gaussian_kernel_adjacency(random_sensor_positions(n_nodes, rng))
    t = np.arange(n_steps, dtype=np.float64)
    base = free_flow + rng.normal(0, 3, size=(n_nodes, 1))
    # Morning and evening rush hours reduce speed.
    rush = 8.0 * np.clip(_diurnal(t, steps_per_day, phase=0.30), 0, None) + 6.0 * np.clip(
        _diurnal(t, steps_per_day, phase=0.75), 0, None
    )
    congestion = _diffuse_events(n_nodes, n_steps, adj, rng, rate=0.003, magnitude=15.0)
    noise = rng.normal(0, 1.5, size=(n_nodes, n_steps))
    speed = base - rush[None, :] - congestion + noise
    return np.clip(speed, 3.0, None)[..., None], adj


def generate_traffic_flow(
    n_nodes: int,
    n_steps: int,
    rng: np.random.Generator,
    steps_per_day: int = 288,
    mean_flow: float = 230.0,
) -> tuple[np.ndarray, np.ndarray]:
    """PEMS03/04/07/08 style traffic volumes (vehicles / 5 min)."""
    adj = gaussian_kernel_adjacency(random_sensor_positions(n_nodes, rng))
    t = np.arange(n_steps, dtype=np.float64)
    base = mean_flow * (1.0 + 0.3 * rng.random((n_nodes, 1)))
    hump = 0.45 * np.clip(_diurnal(t, steps_per_day, 0.3), 0, None) + 0.35 * np.clip(
        _diurnal(t, steps_per_day, 0.8), 0, None
    )
    weekly = 0.08 * _weekly(t, steps_per_day)
    surges = _diffuse_events(n_nodes, n_steps, adj, rng, rate=0.002, magnitude=0.4)
    noise = rng.normal(0, 0.05, size=(n_nodes, n_steps))
    flow = base * (0.6 + hump[None, :] + weekly[None, :] + surges + noise)
    return np.clip(flow, 0.0, None)[..., None], adj


def generate_electricity(
    n_nodes: int,
    n_steps: int,
    rng: np.random.Generator,
    steps_per_day: int = 24,
) -> tuple[np.ndarray, np.ndarray]:
    """Electricity-consumption style loads with heterogeneous client scales."""
    adj = gaussian_kernel_adjacency(random_sensor_positions(n_nodes, rng), threshold=0.3)
    t = np.arange(n_steps, dtype=np.float64)
    # Log-normal client scales reproduce the heavy-tailed magnitudes that make
    # MAPE on Electricity so large in the paper's tables.
    scale = np.exp(rng.normal(5.5, 1.0, size=(n_nodes, 1)))
    daily = 0.35 * _diurnal(t, steps_per_day, phase=0.6)
    weekly = 0.15 * _weekly(t, steps_per_day)
    idiosyncratic = rng.normal(0, 0.08, size=(n_nodes, n_steps)).cumsum(axis=1) * 0.02
    noise = rng.normal(0, 0.06, size=(n_nodes, n_steps))
    load = scale * (1.0 + daily[None, :] + weekly[None, :] + idiosyncratic + noise)
    return np.clip(load, 0.0, None)[..., None], adj


def generate_demand(
    n_nodes: int,
    n_steps: int,
    rng: np.random.Generator,
    steps_per_day: int = 48,
    mean_demand: float = 12.0,
) -> tuple[np.ndarray, np.ndarray]:
    """NYC-TAXI / NYC-BIKE style demand counts at virtual stations."""
    adj = gaussian_kernel_adjacency(random_sensor_positions(n_nodes, rng), threshold=0.15)
    t = np.arange(n_steps, dtype=np.float64)
    station_popularity = np.exp(rng.normal(0, 0.7, size=(n_nodes, 1)))
    daily = 0.8 * np.clip(_diurnal(t, steps_per_day, 0.55), 0, None)
    weekend = 0.25 * np.clip(_weekly(t, steps_per_day), 0, None)
    bursts = _diffuse_events(n_nodes, n_steps, adj, rng, rate=0.004, magnitude=0.9)
    intensity = mean_demand * station_popularity * (0.3 + daily + weekend + bursts)
    counts = rng.poisson(np.clip(intensity, 0.05, None)).astype(np.float64)
    return counts[..., None], adj


def generate_solar(
    n_nodes: int,
    n_steps: int,
    rng: np.random.Generator,
    steps_per_day: int = 144,
) -> tuple[np.ndarray, np.ndarray]:
    """Solar-Energy style PV production: zero at night, bell-shaped by day."""
    adj = gaussian_kernel_adjacency(random_sensor_positions(n_nodes, rng), threshold=0.2)
    t = np.arange(n_steps, dtype=np.float64)
    elevation = np.clip(_diurnal(t, steps_per_day, phase=-0.25), 0, None) ** 1.5
    capacity = 20.0 * (1.0 + 0.4 * rng.random((n_nodes, 1)))
    # Cloud cover is spatially correlated: shared regional field + local noise.
    regional = np.clip(1.0 - 0.5 * np.abs(rng.normal(0, 0.5, size=(1, n_steps))), 0.2, 1.0)
    local = np.clip(1.0 - 0.3 * np.abs(rng.normal(0, 0.5, size=(n_nodes, n_steps))), 0.3, 1.0)
    production = capacity * elevation[None, :] * regional * local
    return production[..., None], adj


def generate_exchange_rate(
    n_nodes: int,
    n_steps: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """ExchangeRate style daily FX rates: correlated geometric random walks."""
    adj = np.ones((n_nodes, n_nodes), dtype=np.float32)
    common = rng.normal(0, 0.004, size=(1, n_steps))
    idiosyncratic = rng.normal(0, 0.006, size=(n_nodes, n_steps))
    log_returns = 0.5 * common + idiosyncratic
    start = rng.uniform(0.5, 2.0, size=(n_nodes, 1))
    rates = start * np.exp(np.cumsum(log_returns, axis=1))
    return rates[..., None], adj


def generate_ett(
    n_nodes: int,
    n_steps: int,
    rng: np.random.Generator,
    steps_per_day: int = 24,
    n_features: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """ETT style electricity-transformer indicators: trend + daily cycles."""
    adj = np.ones((n_nodes, n_nodes), dtype=np.float32)
    t = np.arange(n_steps, dtype=np.float64)
    features = []
    for f in range(n_features):
        trend = rng.normal(0, 0.002) * t
        daily = rng.uniform(0.5, 2.0) * _diurnal(t, steps_per_day, rng.random())
        level = rng.uniform(5, 30, size=(n_nodes, 1))
        noise = rng.normal(0, 0.3, size=(n_nodes, n_steps))
        features.append(level + trend[None, :] + daily[None, :] + noise)
    values = np.stack(features, axis=-1)
    return values, adj


GENERATORS = {
    "traffic_speed": generate_traffic_speed,
    "traffic_flow": generate_traffic_flow,
    "electricity": generate_electricity,
    "demand": generate_demand,
    "solar": generate_solar,
    "exchange_rate": generate_exchange_rate,
    "ett": generate_ett,
}
