"""Feature scaling.

Forecasting models train on standardized values and report metrics in the
original units; :class:`StandardScaler` handles both directions.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Per-feature standardization fitted on training data only."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, values: np.ndarray, mask: np.ndarray | None = None) -> "StandardScaler":
        """Fit over all axes except the trailing feature axis.

        ``mask`` (boolean, same shape, ``True`` = trusted observation)
        restricts the statistics to observed entries, so imputed outage
        fills do not drag the mean toward the fill value.  ``mask=None`` is
        the historical path, kept verbatim for bitwise identity on clean
        data.  An all-masked feature falls back to mean 0 / std 1.
        """
        axes = tuple(range(values.ndim - 1))
        if mask is None:
            self.mean_ = values.mean(axis=axes)
            std = values.std(axis=axes)
        else:
            if mask.shape != values.shape:
                raise ValueError(
                    f"mask shape {mask.shape} != values shape {values.shape}"
                )
            weight = mask.astype(values.dtype)
            count = np.maximum(weight.sum(axis=axes), 1.0)
            self.mean_ = (values * weight).sum(axis=axes) / count
            centered = (values - self.mean_) * weight
            std = np.sqrt((centered * centered).sum(axis=axes) / count)
        std[std == 0] = 1.0
        self.std_ = std
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return ((values - self.mean_) / self.std_).astype(np.float32)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return values * self.std_ + self.mean_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def _check_fitted(self) -> None:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler used before fit()")
