"""Spatial-graph construction for correlated time series.

The paper's datasets come with sensor-distance-based adjacency matrices
(PEMS/METR-style) built with a thresholded Gaussian kernel (Li et al., DCRNN).
We reproduce that construction over synthetic sensor coordinates, and provide
the normalized transition matrices used by diffusion graph convolution.
"""

from __future__ import annotations

import numpy as np


def random_sensor_positions(n_nodes: int, rng: np.random.Generator) -> np.ndarray:
    """Scatter ``n_nodes`` synthetic sensors in the unit square."""
    return rng.random((n_nodes, 2))


def gaussian_kernel_adjacency(
    positions: np.ndarray, threshold: float = 0.1, sigma: float | None = None
) -> np.ndarray:
    """Thresholded Gaussian-kernel adjacency from sensor coordinates.

    ``A[i, j] = exp(-d_ij^2 / sigma^2)`` if above ``threshold`` else 0, the
    standard road-network construction.  ``sigma`` defaults to the standard
    deviation of pairwise distances.
    """
    diff = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((diff**2).sum(-1))
    if sigma is None:
        sigma = float(dist.std()) or 1.0
    adj = np.exp(-((dist / sigma) ** 2))
    adj[adj < threshold] = 0.0
    np.fill_diagonal(adj, 1.0)
    return adj.astype(np.float32)


def transition_matrix(adj: np.ndarray) -> np.ndarray:
    """Row-normalize ``adj`` into the diffusion transition matrix P = D^-1 A."""
    rowsum = adj.sum(axis=1, keepdims=True)
    rowsum[rowsum == 0] = 1.0
    return (adj / rowsum).astype(np.float32)


def symmetric_normalized_laplacian_support(adj: np.ndarray) -> np.ndarray:
    """D^-1/2 A D^-1/2, the GCN propagation support."""
    degree = adj.sum(axis=1)
    degree[degree == 0] = 1.0
    d_inv_sqrt = 1.0 / np.sqrt(degree)
    return (adj * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]).astype(np.float32)


def subsample_adjacency(adj: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Restrict ``adj`` to ``nodes``, the paper's task-enrichment reconstruction.

    Used when sampling variables to build pre-training tasks (Figure 5): the
    sampled nodes keep their mutual edge weights so spatial correlations are
    preserved.
    """
    return adj[np.ix_(nodes, nodes)].copy()
