"""Experiment harness: scales, variant pre-training, runners, reporting."""

from .config import DIRTY, PAPER, SCALES, SMOKE, TINY, ExperimentScale, Setting
from .harness import (
    DEFAULT_CACHE_DIR,
    PretrainedArtifacts,
    VARIANTS,
    make_searcher,
    pretrain_variant,
    run_baseline,
    run_zero_shot,
    source_tasks,
    target_task,
)
from .reporting import (
    Aggregate,
    MULTI_STEP_METRICS,
    RESULTS_DIR,
    ResultTable,
    SINGLE_STEP_METRICS,
    aggregate_runs,
    metric_value,
    print_and_save,
)

__all__ = [
    "PAPER",
    "DIRTY",
    "SCALES",
    "SMOKE",
    "TINY",
    "ExperimentScale",
    "Setting",
    "DEFAULT_CACHE_DIR",
    "PretrainedArtifacts",
    "VARIANTS",
    "make_searcher",
    "pretrain_variant",
    "run_baseline",
    "run_zero_shot",
    "source_tasks",
    "target_task",
    "Aggregate",
    "MULTI_STEP_METRICS",
    "RESULTS_DIR",
    "ResultTable",
    "SINGLE_STEP_METRICS",
    "aggregate_runs",
    "metric_value",
    "print_and_save",
]
