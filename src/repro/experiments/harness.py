"""Shared experiment harness used by every benchmark.

Responsibilities:

* build source (pre-training) and target (unseen) tasks at a chosen scale,
* pre-train T-AHC variants — the full framework and the three ablations of
  Section 4.2.3 — with a pickle-based disk cache so the expensive pre-training
  runs once per benchmark session,
* run AutoCTS++ zero-shot searches and baseline trainings under identical
  budgets.
"""

from __future__ import annotations

import logging
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..comparator import (
    PretrainConfig,
    PretrainHistory,
    TAHC,
    TaskSampleSet,
    collect_task_samples,
    pretrain_tahc,
)
from ..core.trainer import TrainConfig, evaluate_forecaster, train_forecaster
from ..data.datasets import get_dataset, get_spec
from ..baselines.registry import build_baseline
from ..embedding.task_encoder import (
    MeanPoolTaskEncoder,
    PreliminaryEmbedder,
    TaskEncoder,
    build_preliminary_embedder,
)
from ..embedding.ts2vec import TS2Vec, TS2VecConfig
from ..metrics import ForecastScores
from ..search.evolutionary import EvolutionConfig
from ..search.zero_shot import ZeroShotConfig, ZeroShotResult, ZeroShotSearch
from ..space.sampling import JointSearchSpace
from ..tasks.enrichment import EnrichmentConfig, enrich_tasks
from ..tasks.proxy import ProxyConfig
from ..tasks.task import Task
from .config import ExperimentScale, Setting

if TYPE_CHECKING:
    from ..runtime import Checkpoint, ProxyEvaluator

logger = logging.getLogger(__name__)

VARIANTS = ("full", "wo_ts2vec", "wo_set_transformer", "wo_shared")

# Overridable so CI (and parallel local runs) can isolate their caches.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

DEFAULT_CACHE_DIR = Path(
    os.environ.get(
        CACHE_DIR_ENV, Path(__file__).resolve().parents[3] / "benchmarks" / ".cache"
    )
)

# Embedded in every artifact pickle; bumping it invalidates old files cleanly
# (they are discarded and recomputed) instead of crashing the loader.
ARTIFACT_FORMAT_VERSION = 2


# ---------------------------------------------------------------------------
# Task construction
# ---------------------------------------------------------------------------


def target_task(
    scale: ExperimentScale, dataset_name: str, setting: Setting, seed: int = 0
) -> Task:
    """The unseen task for one (target dataset, forecasting setting) cell."""
    data = get_dataset(dataset_name, seed=seed)
    spec = get_spec(dataset_name)
    ratio = (
        spec.split_ratio_single if setting.single_step else spec.split_ratio_multi
    )
    return Task(
        data=data,
        p=setting.p,
        q=setting.q,
        single_step=setting.single_step,
        split_ratio=ratio,
        max_train_windows=scale.max_train_windows,
    )


def source_tasks(scale: ExperimentScale, seed: int = 0) -> list[Task]:
    """Enriched pre-training tasks from the source datasets (Fig. 5)."""
    datasets = [get_dataset(name, seed=seed) for name in scale.source_datasets]
    tasks = enrich_tasks(
        datasets,
        list(scale.pretrain_settings),
        n_subsets=scale.n_pretrain_subsets,
        seed=seed,
        config=EnrichmentConfig(min_windows=12),
        corruptions=list(scale.enrichment_corruptions) or None,
    )
    return [
        Task(
            data=t.data,
            p=t.p,
            q=t.q,
            single_step=t.single_step,
            max_train_windows=scale.max_train_windows,
        )
        for t in tasks
    ]


# ---------------------------------------------------------------------------
# Pre-training variants (full + ablations)
# ---------------------------------------------------------------------------


@dataclass
class PretrainedArtifacts:
    """Everything a zero-shot searcher needs, pickleable for caching."""

    variant: str
    model: TAHC
    embedder: PreliminaryEmbedder
    space: JointSearchSpace
    sample_sets: list[TaskSampleSet]
    history: PretrainHistory


def _fit_embedder(embedder: PreliminaryEmbedder, tasks: list[Task]) -> None:
    """Self-supervised TS2Vec stage over source-task series (no-op for MLP)."""
    if not isinstance(embedder, TS2Vec):
        return
    span = min(task.window_span for task in tasks)
    segments = []
    for task in tasks:
        windows = task.embedding_windows(max_windows=2)  # (num, N, S, F)
        clipped = windows[:, :, :span, :]
        segments.append(clipped.reshape(-1, span, windows.shape[-1]))
    series = np.concatenate(segments, axis=0)
    embedder.fit(series.astype(np.float32))


def _build_variant_model(scale: ExperimentScale, variant: str, seed: int) -> TAHC:
    task_encoder = None
    if variant == "wo_set_transformer":
        task_encoder = MeanPoolTaskEncoder(
            input_dim=scale.preliminary_dim, output_dim=16, seed=seed
        )
    else:
        task_encoder = TaskEncoder(
            input_dim=scale.preliminary_dim, intra_dim=16, output_dim=16, seed=seed
        )
    return TAHC(
        num_operator_types=5,
        embed_dim=32,
        gin_layers=3,
        hidden_dim=32,
        task_encoder=task_encoder,
        preliminary_dim=scale.preliminary_dim,
        task_embed_dim=16,
        seed=seed,
    )


def _pretrain_config(scale: ExperimentScale, variant: str, seed: int) -> PretrainConfig:
    shared = scale.shared_samples
    random = scale.random_samples
    if variant == "wo_shared":
        shared, random = 0, scale.shared_samples + scale.random_samples
    return PretrainConfig(
        shared_samples=shared,
        random_samples=random,
        epochs=scale.pretrain_epochs,
        pairs_per_task=scale.pretrain_pairs_per_task,
        seed=seed,
        proxy=ProxyConfig(epochs=scale.proxy_epochs, batch_size=scale.batch_size, seed=seed),
    )


def _load_artifact_cache(cache_path: Path) -> PretrainedArtifacts | None:
    """Load one cached artifact file; ``None`` on any corruption or mismatch.

    A corrupt, truncated, stale, or wrong-version file is logged, deleted,
    and treated as a miss — pre-training then simply recomputes it.
    """
    try:
        with open(cache_path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        return None
    except (
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        IndexError,
        KeyError,
        TypeError,
        ValueError,
        MemoryError,
        OSError,
    ) as exc:
        logger.warning(
            "discarding corrupt artifact cache %s (%s: %s)",
            cache_path, type(exc).__name__, exc,
        )
        cache_path.unlink(missing_ok=True)
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("format_version") != ARTIFACT_FORMAT_VERSION
        or not isinstance(payload.get("artifacts"), PretrainedArtifacts)
    ):
        logger.warning("discarding stale-format artifact cache %s", cache_path)
        cache_path.unlink(missing_ok=True)
        return None
    return payload["artifacts"]


def _save_artifact_cache(cache_path: Path, artifacts: PretrainedArtifacts) -> None:
    """Atomically persist one artifact file (temp + ``os.replace``)."""
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    temp = cache_path.with_name(f"{cache_path.name}.tmp{os.getpid()}")
    try:
        with open(temp, "wb") as handle:
            pickle.dump(
                {"format_version": ARTIFACT_FORMAT_VERSION, "artifacts": artifacts},
                handle,
            )
        os.replace(temp, cache_path)
    except OSError as exc:
        logger.warning("failed to write artifact cache %s: %s", cache_path, exc)
        temp.unlink(missing_ok=True)


def _pretrain_checkpoints(
    checkpoint_dir: Path, scale: ExperimentScale, variant: str, seed: int
) -> "tuple[Checkpoint, Checkpoint]":
    """The (collect, pretrain) progress checkpoints of one pre-training run."""
    from ..runtime import Checkpoint

    stem = f"{scale.name}-{variant}-seed{seed}"
    return (
        Checkpoint(Path(checkpoint_dir) / f"collect-{stem}.ckpt", kind="eval-progress"),
        Checkpoint(Path(checkpoint_dir) / f"pretrain-{stem}.ckpt", kind="pretrain"),
    )


def pretrain_variant(
    scale: ExperimentScale,
    variant: str = "full",
    seed: int = 0,
    cache_dir: Path | None = DEFAULT_CACHE_DIR,
    evaluator: "ProxyEvaluator | None" = None,
    checkpoint_dir: Path | None = None,
    resume: bool = False,
    fidelity_schedule=None,
    label_policy: str | None = None,
    warm_dir: Path | str | None = None,
) -> PretrainedArtifacts:
    """Pre-train (or load from cache) a T-AHC variant at the given scale.

    ``evaluator`` fans out the proxy-label measurements of the sample
    collection stage; defaults to the process-wide
    :func:`~repro.runtime.get_default_evaluator`.

    With a ``checkpoint_dir``, sample-collection and curriculum-training
    progress is checkpointed as the run advances.  ``resume=True`` picks up
    from any existing checkpoints (bitwise-identical to an uninterrupted
    run); ``resume=False`` clears them and starts fresh.  Checkpoints are
    removed once the run completes and its artifact is cached.

    ``fidelity_schedule``/``label_policy``/``warm_dir`` run the sample
    collection as a successive-halving ladder (``docs/fidelity.md``); with
    no schedule (and ``$REPRO_FIDELITY_SCHEDULE`` unset) the run — and its
    artifact cache key — is identical to the historical pipeline.
    """
    from ..runtime import resolve_fidelity_schedule, resolve_label_policy

    if variant not in VARIANTS:
        raise KeyError(f"unknown variant {variant!r}; known: {VARIANTS}")
    schedule = resolve_fidelity_schedule(fidelity_schedule)
    cache_path = None
    if cache_dir is not None:
        # The key carries every knob that shapes the pre-trained artifact so
        # editing the scale invalidates stale caches.
        fingerprint = (
            f"{scale.n_pretrain_subsets}-{scale.shared_samples}-"
            f"{scale.random_samples}-{scale.proxy_epochs}-{scale.pretrain_epochs}-"
            f"{scale.pretrain_pairs_per_task}-{scale.preliminary_dim}"
        )
        if schedule is not None:
            # A fidelity ladder produces different labels, so it must not
            # share cache files with flat runs (and vice versa); the key
            # suffix appears only when a schedule is active, keeping flat
            # cache paths byte-identical to before.
            policy = resolve_label_policy(label_policy)
            fingerprint += f"-fid{schedule.spec().replace(':', '_')}-{policy}"
        cache_path = (
            Path(cache_dir)
            / f"tahc-{scale.name}-{fingerprint}-{variant}-seed{seed}.pkl"
        )
        cached = _load_artifact_cache(cache_path)
        if cached is not None:
            return cached

    collect_ckpt = pretrain_ckpt = None
    if checkpoint_dir is not None:
        collect_ckpt, pretrain_ckpt = _pretrain_checkpoints(
            checkpoint_dir, scale, variant, seed
        )
        if not resume:
            collect_ckpt.clear()
            pretrain_ckpt.clear()

    embedder_kind = "mlp" if variant == "wo_ts2vec" else "ts2vec"
    embedder = build_preliminary_embedder(
        embedder_kind,
        input_dim=1,
        output_dim=scale.preliminary_dim,
        seed=seed,
        ts2vec_config=TS2VecConfig(
            hidden_dim=scale.preliminary_dim,
            output_dim=scale.preliminary_dim,
            depth=2,
            epochs=2,
        ),
    )
    tasks = source_tasks(scale, seed=seed)
    _fit_embedder(embedder, tasks)

    space = JointSearchSpace(hyper_space=scale.hyper_space)
    config = _pretrain_config(scale, variant, seed)
    sample_sets = collect_task_samples(
        tasks,
        space,
        embedder,
        config,
        evaluator=evaluator,
        checkpoint=collect_ckpt,
        fidelity_schedule=schedule,
        label_policy=label_policy,
        warm_dir=str(warm_dir) if warm_dir is not None else None,
    )
    model = _build_variant_model(scale, variant, seed)
    history = pretrain_tahc(model, sample_sets, config, checkpoint=pretrain_ckpt)

    artifacts = PretrainedArtifacts(
        variant=variant,
        model=model,
        embedder=embedder,
        space=space,
        sample_sets=sample_sets,
        history=history,
    )
    if cache_path is not None:
        _save_artifact_cache(cache_path, artifacts)
    # The run is complete (and durably cached above); its progress
    # checkpoints have served their purpose.
    if collect_ckpt is not None:
        collect_ckpt.clear()
    if pretrain_ckpt is not None:
        pretrain_ckpt.clear()
    return artifacts


# ---------------------------------------------------------------------------
# Running searches and baselines
# ---------------------------------------------------------------------------


def make_searcher(
    artifacts: PretrainedArtifacts,
    scale: ExperimentScale,
    seed: int = 0,
    initial_samples: int | None = None,
    top_k: int | None = None,
) -> ZeroShotSearch:
    """Wrap pre-trained artifacts into the Algorithm-2 searcher.

    ``initial_samples`` and ``top_k`` override the scale's defaults — used by
    the sample-limited sweep (Table 13) and by cheap runtime-focused benches.
    """
    evolution = EvolutionConfig(
        initial_samples=initial_samples or scale.initial_samples,
        population_size=scale.population_size,
        generations=scale.generations,
        offspring_per_generation=scale.population_size,
        top_k=top_k or scale.top_k,
    )
    config = ZeroShotConfig(
        evolution=evolution,
        final_train_epochs=scale.final_train_epochs,
        batch_size=scale.batch_size,
        seed=seed,
        embedding_windows=scale.embedding_windows,
    )
    return ZeroShotSearch(artifacts.model, artifacts.embedder, artifacts.space, config)


def run_zero_shot(
    artifacts: PretrainedArtifacts,
    task: Task,
    scale: ExperimentScale,
    seed: int = 0,
    initial_samples: int | None = None,
    top_k: int | None = None,
    checkpoint_dir: Path | None = None,
    resume: bool = False,
) -> ZeroShotResult:
    """Run the zero-shot search, optionally checkpointing the ranking phase."""
    searcher = make_searcher(artifacts, scale, seed, initial_samples, top_k)
    ranking_ckpt = None
    if checkpoint_dir is not None:
        from ..runtime import Checkpoint

        task_slug = task.name.replace("/", "_")
        ranking_ckpt = Checkpoint(
            Path(checkpoint_dir) / f"rank-{scale.name}-{task_slug}-seed{seed}.ckpt",
            kind="evolution",
        )
        if not resume:
            ranking_ckpt.clear()
    result = searcher.search(task, ranking_checkpoint=ranking_ckpt)
    if ranking_ckpt is not None:
        ranking_ckpt.clear()
    return result


def run_baseline(
    name: str, task: Task, scale: ExperimentScale, seed: int = 0
) -> ForecastScores:
    """Train baseline ``name`` on ``task`` and score it on the test split."""
    prepared = task.prepared
    model = build_baseline(
        name, task, hidden_dim=16, hyper_space=scale.hyper_space, seed=seed
    )
    train_forecaster(
        model,
        prepared.train,
        prepared.val,
        TrainConfig(
            epochs=scale.baseline_train_epochs,
            batch_size=scale.batch_size,
            patience=max(2, scale.baseline_train_epochs),
            seed=seed,
        ),
    )
    return evaluate_forecaster(
        model, prepared.test, scale.batch_size, inverse=prepared.inverse
    )
