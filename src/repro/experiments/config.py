"""Experiment scales.

``PAPER`` documents the true sizes of the paper's evaluation (8xA800 GPUs,
hundreds of GPU hours); ``TINY`` is the CPU-sized instantiation used by the
benchmark harness — identical code paths, scaled-down sizes, with forecasting
settings mapped 2:1 (paper P-12/Q-12 -> P-6/Q-6 on our ~16x-shorter synthetic
datasets, and so on).  Every benchmark reports rows under the *paper's*
setting labels so the output aligns with the original tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..space.hyperparams import HyperSpace


@dataclass(frozen=True)
class Setting:
    """One forecasting setting with its paper-facing label."""

    label: str
    p: int
    q: int
    single_step: bool = False


@dataclass(frozen=True)
class ExperimentScale:
    """All knobs that trade fidelity for runtime."""

    name: str
    hyper_space: HyperSpace
    settings: tuple[Setting, ...]
    pretrain_settings: tuple[tuple[int, int], ...]
    source_datasets: tuple[str, ...]
    target_datasets: tuple[str, ...]
    n_pretrain_subsets: int
    shared_samples: int  # L
    random_samples: int  # L
    proxy_epochs: int  # k of Eq. 22
    pretrain_epochs: int  # k_t
    pretrain_pairs_per_task: int
    initial_samples: int  # K_s
    population_size: int  # k_p
    generations: int
    top_k: int
    final_train_epochs: int
    baseline_train_epochs: int
    batch_size: int
    n_seeds: int
    max_train_windows: int  # cap on training windows per task (CPU budget)
    preliminary_dim: int
    embedding_windows: int
    # (profile, severity) pairs cycled into the enrichment bank so the
    # comparator pretrains on dirty tasks; empty = the historical clean bank.
    enrichment_corruptions: tuple[tuple[str, float], ...] = ()

    def setting(self, label: str) -> Setting:
        for setting in self.settings:
            if setting.label == label:
                return setting
        raise KeyError(f"unknown setting {label!r}")


_SOURCES = (
    "PEMS03", "PEMS04", "PEMS07", "PEMS08", "METR-LA",
    "ETTh1", "ETTh2", "ETTm1", "ETTm2", "Solar-Energy", "ExchangeRate",
)
_TARGETS = (
    "PEMS-BAY", "Electricity", "PEMSD7M", "NYC-TAXI", "NYC-BIKE",
    "Los-Loop", "SZ-TAXI",
)

# The paper's experimental scale (documentation; do not run on CPU).
PAPER = ExperimentScale(
    name="paper",
    hyper_space=HyperSpace(),  # Table 2
    settings=(
        Setting("P-12/Q-12", 12, 12),
        Setting("P-24/Q-24", 24, 24),
        Setting("P-48/Q-48", 48, 48),
        Setting("P-168/Q-1 (3rd)", 168, 3, single_step=True),
    ),
    pretrain_settings=((12, 12), (48, 48)),
    source_datasets=_SOURCES,
    target_datasets=_TARGETS,
    n_pretrain_subsets=100,  # -> 200 source tasks
    shared_samples=25,
    random_samples=25,  # ~10,000 arch-hypers total
    proxy_epochs=5,
    pretrain_epochs=100,
    pretrain_pairs_per_task=64,
    initial_samples=300_000,  # K_s
    population_size=10,
    generations=20,
    top_k=3,
    final_train_epochs=100,
    baseline_train_epochs=100,
    batch_size=64,
    n_seeds=5,
    max_train_windows=10**9,
    preliminary_dim=256,  # TS2Vec F
    embedding_windows=64,
)

# The CPU-sized instantiation used by benchmarks (paper settings halved;
# datasets are ~16x shorter, see repro.data.datasets).
TINY = ExperimentScale(
    name="tiny",
    hyper_space=HyperSpace(
        num_blocks=(1, 2),
        num_nodes=(3, 4),
        hidden_dims=(8, 12, 16),
        output_dims=(8, 16),
        output_modes=(0, 1),
        dropout=(0, 1),
    ),
    settings=(
        Setting("P-12/Q-12", 6, 6),
        Setting("P-24/Q-24", 12, 12),
        Setting("P-48/Q-48", 24, 24),
        Setting("P-168/Q-1 (3rd)", 24, 3, single_step=True),
    ),
    pretrain_settings=((6, 6), (24, 24)),
    source_datasets=_SOURCES,
    target_datasets=_TARGETS,
    n_pretrain_subsets=8,
    shared_samples=6,
    random_samples=6,
    proxy_epochs=1,
    pretrain_epochs=24,
    pretrain_pairs_per_task=24,
    initial_samples=48,
    population_size=6,
    generations=2,
    top_k=2,
    final_train_epochs=2,
    baseline_train_epochs=2,
    batch_size=64,
    n_seeds=1,
    max_train_windows=128,
    preliminary_dim=8,
    embedding_windows=6,
)

# An even smaller profile for unit/integration tests.
SMOKE = ExperimentScale(
    name="smoke",
    hyper_space=HyperSpace(
        num_blocks=(1,),
        num_nodes=(3,),
        hidden_dims=(8,),
        output_dims=(8,),
        output_modes=(0, 1),
        dropout=(0,),
    ),
    settings=(Setting("P-12/Q-12", 6, 6),),
    pretrain_settings=((6, 6),),
    source_datasets=("PEMS08", "ETTh1"),
    target_datasets=("SZ-TAXI",),
    n_pretrain_subsets=2,
    shared_samples=3,
    random_samples=2,
    proxy_epochs=1,
    pretrain_epochs=4,
    pretrain_pairs_per_task=8,
    initial_samples=8,
    population_size=4,
    generations=1,
    top_k=1,
    final_train_epochs=1,
    baseline_train_epochs=1,
    batch_size=64,
    n_seeds=1,
    max_train_windows=120,
    preliminary_dim=8,
    embedding_windows=4,
)

# SMOKE-sized, but the task universe is dirty: corrupted registry variants as
# sources and target, plus corruption cycling inside the enrichment bank —
# the robustness counterpart of the clean smoke profile (ROADMAP item 5).
DIRTY = ExperimentScale(
    name="dirty",
    hyper_space=SMOKE.hyper_space,
    settings=SMOKE.settings,
    pretrain_settings=SMOKE.pretrain_settings,
    source_datasets=("PEMS08-missing", "ETTh1-shift"),
    target_datasets=("SZ-TAXI-missing",),
    n_pretrain_subsets=2,
    shared_samples=3,
    random_samples=2,
    proxy_epochs=1,
    pretrain_epochs=4,
    pretrain_pairs_per_task=8,
    initial_samples=8,
    population_size=4,
    generations=1,
    top_k=1,
    final_train_epochs=1,
    baseline_train_epochs=1,
    batch_size=64,
    n_seeds=1,
    max_train_windows=120,
    preliminary_dim=8,
    embedding_windows=4,
    enrichment_corruptions=(("block_missing", 0.25),),
)

SCALES = {scale.name: scale for scale in (PAPER, TINY, SMOKE, DIRTY)}
