"""Result aggregation and paper-style table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..metrics import ForecastScores

MULTI_STEP_METRICS = ("MAE", "RMSE", "MAPE")
SINGLE_STEP_METRICS = ("RRSE", "CORR")


def metric_value(scores: ForecastScores, metric: str) -> float:
    return {
        "MAE": scores.mae,
        "RMSE": scores.rmse,
        "MAPE": scores.mape,
        "RRSE": scores.rrse,
        "CORR": scores.corr,
    }[metric]


def metric_is_higher_better(metric: str) -> bool:
    return metric == "CORR"


@dataclass
class Aggregate:
    """Mean and standard deviation over repeated runs (paper: 5 seeds)."""

    mean: float
    std: float

    def __str__(self) -> str:
        return f"{self.mean:.3f}±{self.std:.3f}"


def aggregate_runs(runs: list[ForecastScores], metric: str) -> Aggregate:
    values = np.array([metric_value(r, metric) for r in runs], dtype=np.float64)
    return Aggregate(mean=float(values.mean()), std=float(values.std()))


@dataclass
class ResultTable:
    """A paper-style table: rows are (dataset, metric), columns are models."""

    title: str
    columns: list[str] = field(default_factory=list)
    _cells: dict[tuple[str, str], dict[str, str]] = field(default_factory=dict)
    _row_order: list[tuple[str, str]] = field(default_factory=list)

    def add(self, dataset: str, metric: str, column: str, value) -> None:
        key = (dataset, metric)
        if key not in self._cells:
            self._cells[key] = {}
            self._row_order.append(key)
        if column not in self.columns:
            self.columns.append(column)
        self._cells[key][column] = str(value)

    def mark_best(self, higher_better_metrics: tuple[str, ...] = ("CORR",)) -> None:
        """Wrap the best cell of each row in ``*...*`` (the paper's bold)."""
        for (dataset, metric), row in self._cells.items():
            numeric = {}
            for column, text in row.items():
                try:
                    numeric[column] = float(text.split("±")[0].rstrip("%"))
                except ValueError:
                    continue
            if not numeric:
                continue
            pick = max if metric in higher_better_metrics else min
            best = pick(numeric, key=numeric.get)
            row[best] = f"*{row[best]}*"

    def win_counts(
        self, higher_better_metrics: tuple[str, ...] = ("CORR",)
    ) -> dict[str, int]:
        """Number of rows each column wins (the paper's best-cell counting)."""
        counts = {column: 0 for column in self.columns}
        for (dataset, metric), row in self._cells.items():
            numeric = {}
            for column, text in row.items():
                try:
                    numeric[column] = float(
                        text.strip("*").split("±")[0].rstrip("%")
                    )
                except ValueError:
                    continue
            if len(numeric) < 2:
                continue
            pick = max if metric in higher_better_metrics else min
            counts[pick(numeric, key=numeric.get)] += 1
        return counts

    def render(self) -> str:
        headers = ["Dataset", "Metric"] + self.columns
        rows = [
            [dataset, metric] + [self._cells[(dataset, metric)].get(c, "-") for c in self.columns]
            for dataset, metric in self._row_order
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def save(self, directory: Path, name: str) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.txt"
        path.write_text(self.render() + "\n")
        return path


RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def print_and_save(table: ResultTable, name: str) -> None:
    """Shared epilogue of every benchmark: echo + persist the table."""
    rendered = table.render()
    print("\n" + rendered)
    table.save(RESULTS_DIR, name)
