"""Analysis utilities for searched arch-hypers and task relationships.

These back the paper's case study (Figures 8–9): which operators dominate
the searched ST-blocks per task, how similar the searched models of two
tasks are, and how hyperparameter choices distribute across tasks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .space.arch import CANDIDATE_OPERATORS, S_OPERATORS, T_OPERATORS
from .space.archhyper import ArchHyper


def operator_frequencies(arch_hypers: list[ArchHyper]) -> dict[str, float]:
    """Fraction of edges using each operator across the given arch-hypers."""
    counts: Counter[str] = Counter()
    total = 0
    for ah in arch_hypers:
        for edge in ah.arch.edges:
            counts[edge.op] += 1
            total += 1
    if total == 0:
        return {op: 0.0 for op in CANDIDATE_OPERATORS}
    return {op: counts.get(op, 0) / total for op in sorted(set(counts) | set(CANDIDATE_OPERATORS))}


def spatial_temporal_ratio(arch_hyper: ArchHyper) -> float:
    """(#S-operators) / (#S + #T operators); 0.5 means balanced.

    The paper observes that small-N datasets (ExchangeRate, ETT) favour
    temporal operators — i.e. a low ratio.
    """
    counts = arch_hyper.arch.operator_counts()
    spatial = sum(counts[op] for op in S_OPERATORS)
    temporal = sum(counts[op] for op in T_OPERATORS)
    total = spatial + temporal
    return spatial / total if total else 0.0


def edge_jaccard(a: ArchHyper, b: ArchHyper) -> float:
    """Jaccard overlap of labelled (source, target, op) edges."""
    ea = {(e.source, e.target, e.op) for e in a.arch.edges}
    eb = {(e.source, e.target, e.op) for e in b.arch.edges}
    union = ea | eb
    return len(ea & eb) / len(union) if union else 1.0


def hyper_distance(a: ArchHyper, b: ArchHyper, space=None) -> float:
    """L1 distance between min-max-normalized hyperparameter vectors."""
    from .space.hyperparams import HyperSpace

    space = space or HyperSpace()
    va = a.hyper.normalized_vector(space)
    vb = b.hyper.normalized_vector(space)
    return float(np.abs(va - vb).mean())


def arch_hyper_similarity(a: ArchHyper, b: ArchHyper, space=None) -> float:
    """Blended similarity in [0, 1]: edge overlap and hyperparameter closeness."""
    return 0.5 * edge_jaccard(a, b) + 0.5 * (1.0 - hyper_distance(a, b, space))


@dataclass(frozen=True)
class SearchSummary:
    """Aggregate statistics of a set of searched arch-hypers."""

    count: int
    operator_frequencies: dict[str, float]
    mean_spatial_ratio: float
    mean_edges: float
    hyper_modes: dict[str, int]

    @classmethod
    def from_arch_hypers(cls, arch_hypers: list[ArchHyper]) -> "SearchSummary":
        """Aggregate statistics over a list of searched arch-hypers."""
        if not arch_hypers:
            raise ValueError("need at least one arch-hyper to summarize")
        hyper_values: dict[str, Counter] = {
            key: Counter() for key in ("B", "C", "H", "I", "U", "delta")
        }
        for ah in arch_hypers:
            for key, value in ah.hyper.to_dict().items():
                hyper_values[key][value] += 1
        return cls(
            count=len(arch_hypers),
            operator_frequencies=operator_frequencies(arch_hypers),
            mean_spatial_ratio=float(
                np.mean([spatial_temporal_ratio(ah) for ah in arch_hypers])
            ),
            mean_edges=float(np.mean([ah.arch.num_edges for ah in arch_hypers])),
            hyper_modes={
                key: counter.most_common(1)[0][0] for key, counter in hyper_values.items()
            },
        )

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"searched arch-hypers: {self.count}"]
        lines.append(
            "operator usage: "
            + ", ".join(f"{op}={freq:.0%}" for op, freq in self.operator_frequencies.items())
        )
        lines.append(f"mean spatial/(S+T) ratio: {self.mean_spatial_ratio:.2f}")
        lines.append(f"mean edges per block: {self.mean_edges:.1f}")
        lines.append(
            "modal hyperparameters: "
            + ", ".join(f"{k}={v}" for k, v in self.hyper_modes.items())
        )
        return "\n".join(lines)
