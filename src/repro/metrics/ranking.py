"""Rank-quality metrics for comparator evaluation (Section 4.2.1).

The paper measures task similarity with Spearman's rank correlation of
arch-hyper accuracies between tasks (Table 4) and implicitly evaluates the
comparator by how well its induced ranking matches true validation accuracy.
"""

from __future__ import annotations

import numpy as np


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), as in scipy.stats.rankdata."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1)
    # Average ranks within tie groups.
    unique, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
    sums = np.zeros(len(unique))
    np.add.at(sums, inverse, ranks)
    return sums[inverse] / counts[inverse]


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman's rank correlation coefficient ρ."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("spearman expects two equal-length 1-D arrays")
    if len(a) < 2:
        raise ValueError("spearman requires at least two observations")
    ra, rb = _ranks(a), _ranks(b)
    ra_c, rb_c = ra - ra.mean(), rb - rb.mean()
    denominator = np.sqrt((ra_c**2).sum() * (rb_c**2).sum())
    if denominator == 0:
        return 0.0
    return float((ra_c * rb_c).sum() / denominator)


def kendall_tau(a: np.ndarray, b: np.ndarray) -> float:
    """Kendall's τ-a: pairwise concordance of two score vectors."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("kendall_tau expects two equal-length 1-D arrays")
    n = len(a)
    if n < 2:
        raise ValueError("kendall_tau requires at least two observations")
    da = np.sign(a[:, None] - a[None, :])
    db = np.sign(b[:, None] - b[None, :])
    upper = np.triu_indices(n, k=1)
    return float((da[upper] * db[upper]).sum() / len(upper[0]))


def pairwise_accuracy(
    predicted_wins: np.ndarray, true_scores: np.ndarray
) -> float:
    """Fraction of pairs the comparator orders like the ground truth.

    ``predicted_wins[i, j] = 1`` means the comparator judged item ``i`` at
    least as accurate as item ``j``.  Lower ``true_scores`` (errors) are
    better.
    """
    n = len(true_scores)
    correct = 0
    total = 0
    for i in range(n):
        for j in range(n):
            if i == j or true_scores[i] == true_scores[j]:
                continue
            total += 1
            truth = true_scores[i] < true_scores[j]
            if bool(predicted_wins[i, j]) == truth:
                correct += 1
    return correct / total if total else 1.0


def top_k_regret(
    chosen: np.ndarray, true_scores: np.ndarray
) -> float:
    """How much worse the best *chosen* item is than the global best.

    ``chosen`` holds indices; ``true_scores`` are errors (lower better).
    Zero regret means the search recovered an optimal item.
    """
    true_scores = np.asarray(true_scores, dtype=np.float64)
    best_chosen = float(true_scores[np.asarray(chosen)].min())
    return best_chosen - float(true_scores.min())
