"""Forecasting accuracy metrics (Section 4.1.2).

Multi-step forecasting is scored with MAE, RMSE, and MAPE; single-step
forecasting with RRSE and CORR.  MAPE follows common CTS practice by masking
near-zero targets, which would otherwise blow the metric up on demand data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def mae(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(prediction - target)))


def rmse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(np.mean((prediction - target) ** 2)))


def mape(prediction: np.ndarray, target: np.ndarray, threshold: float = 1e-1) -> float:
    """Mean absolute percentage error, masking targets below ``threshold``."""
    mask = np.abs(target) > threshold
    if not mask.any():
        return 0.0
    return float(np.mean(np.abs((prediction[mask] - target[mask]) / target[mask])))


def rrse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root relative squared error: RMSE normalized by target deviation."""
    denominator = np.sqrt(np.sum((target - target.mean()) ** 2))
    if denominator == 0:
        return 0.0
    return float(np.sqrt(np.sum((prediction - target) ** 2)) / denominator)


def corr(prediction: np.ndarray, target: np.ndarray) -> float:
    """Empirical correlation coefficient averaged over series.

    Inputs are ``(num_samples, ..., N, F)``; the correlation is computed per
    series (over samples) and averaged, matching LSTNet's protocol.
    """
    pred = prediction.reshape(len(prediction), -1)
    targ = target.reshape(len(target), -1)
    pred_c = pred - pred.mean(axis=0)
    targ_c = targ - targ.mean(axis=0)
    numerator = (pred_c * targ_c).sum(axis=0)
    denominator = np.sqrt((pred_c**2).sum(axis=0) * (targ_c**2).sum(axis=0))
    valid = denominator > 1e-8
    if not valid.any():
        return 0.0
    return float((numerator[valid] / denominator[valid]).mean())


def masked_mae(
    prediction: np.ndarray,
    target: np.ndarray,
    null_value: float = 0.0,
    mask: np.ndarray | None = None,
) -> float:
    """MAE over observed target positions.

    An explicit boolean ``mask`` (``True`` = score this position) wins over
    the ``null_value`` sentinel; the sentinel form mirrors the CTS
    literature (DCRNN onward), where traffic datasets mark missing sensor
    readings with zeros.
    """
    if mask is None:
        mask = target != null_value
    if not mask.any():
        return 0.0
    return float(np.mean(np.abs(prediction[mask] - target[mask])))


def masked_rmse(
    prediction: np.ndarray,
    target: np.ndarray,
    null_value: float = 0.0,
    mask: np.ndarray | None = None,
) -> float:
    """RMSE over observed target positions (see :func:`masked_mae`)."""
    if mask is None:
        mask = target != null_value
    if not mask.any():
        return 0.0
    return float(np.sqrt(np.mean((prediction[mask] - target[mask]) ** 2)))


@dataclass(frozen=True)
class ForecastScores:
    """Bundle of every metric for one evaluation run."""

    mae: float
    rmse: float
    mape: float
    rrse: float
    corr: float

    def primary(self, single_step: bool = False) -> float:
        """The headline metric: MAE (multi-step) or RRSE (single-step)."""
        return self.rrse if single_step else self.mae


def _masked_corr(prediction: np.ndarray, target: np.ndarray, mask: np.ndarray) -> float:
    """Per-series correlation over *observed* samples only, then averaged."""
    pred = prediction.reshape(len(prediction), -1)
    targ = target.reshape(len(target), -1)
    weight = mask.reshape(len(mask), -1).astype(np.float64)
    count = weight.sum(axis=0)
    safe = np.maximum(count, 1.0)
    pred_c = (pred - (pred * weight).sum(axis=0) / safe) * weight
    targ_c = (targ - (targ * weight).sum(axis=0) / safe) * weight
    numerator = (pred_c * targ_c).sum(axis=0)
    denominator = np.sqrt((pred_c**2).sum(axis=0) * (targ_c**2).sum(axis=0))
    valid = (denominator > 1e-8) & (count >= 2)
    if not valid.any():
        return 0.0
    return float((numerator[valid] / denominator[valid]).mean())


def evaluate_forecast(
    prediction: np.ndarray, target: np.ndarray, mask: np.ndarray | None = None
) -> ForecastScores:
    """Compute every forecasting metric at once.

    ``mask`` (boolean, same shape, ``True`` = observed) excludes corrupted
    or missing target entries from every metric, so a model is never scored
    against values that were imputed or injected.  ``mask=None`` is the
    historical clean path, bitwise-identical to the pre-mask behavior.  A
    fully-masked target scores zero across the board.
    """
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction {prediction.shape} and target {target.shape} differ"
        )
    if mask is None:
        return ForecastScores(
            mae=mae(prediction, target),
            rmse=rmse(prediction, target),
            mape=mape(prediction, target),
            rrse=rrse(prediction, target),
            corr=corr(prediction, target),
        )
    mask = np.asarray(mask)
    if mask.shape != target.shape:
        raise ValueError(f"mask {mask.shape} and target {target.shape} differ")
    if not mask.any():
        return ForecastScores(mae=0.0, rmse=0.0, mape=0.0, rrse=0.0, corr=0.0)
    pred_obs, targ_obs = prediction[mask], target[mask]
    return ForecastScores(
        mae=mae(pred_obs, targ_obs),
        rmse=rmse(pred_obs, targ_obs),
        mape=mape(pred_obs, targ_obs),
        rrse=rrse(pred_obs, targ_obs),
        corr=_masked_corr(prediction, target, mask),
    )
