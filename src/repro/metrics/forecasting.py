"""Forecasting accuracy metrics (Section 4.1.2).

Multi-step forecasting is scored with MAE, RMSE, and MAPE; single-step
forecasting with RRSE and CORR.  MAPE follows common CTS practice by masking
near-zero targets, which would otherwise blow the metric up on demand data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def mae(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(prediction - target)))


def rmse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(np.mean((prediction - target) ** 2)))


def mape(prediction: np.ndarray, target: np.ndarray, threshold: float = 1e-1) -> float:
    """Mean absolute percentage error, masking targets below ``threshold``."""
    mask = np.abs(target) > threshold
    if not mask.any():
        return 0.0
    return float(np.mean(np.abs((prediction[mask] - target[mask]) / target[mask])))


def rrse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root relative squared error: RMSE normalized by target deviation."""
    denominator = np.sqrt(np.sum((target - target.mean()) ** 2))
    if denominator == 0:
        return 0.0
    return float(np.sqrt(np.sum((prediction - target) ** 2)) / denominator)


def corr(prediction: np.ndarray, target: np.ndarray) -> float:
    """Empirical correlation coefficient averaged over series.

    Inputs are ``(num_samples, ..., N, F)``; the correlation is computed per
    series (over samples) and averaged, matching LSTNet's protocol.
    """
    pred = prediction.reshape(len(prediction), -1)
    targ = target.reshape(len(target), -1)
    pred_c = pred - pred.mean(axis=0)
    targ_c = targ - targ.mean(axis=0)
    numerator = (pred_c * targ_c).sum(axis=0)
    denominator = np.sqrt((pred_c**2).sum(axis=0) * (targ_c**2).sum(axis=0))
    valid = denominator > 1e-8
    if not valid.any():
        return 0.0
    return float((numerator[valid] / denominator[valid]).mean())


def masked_mae(
    prediction: np.ndarray, target: np.ndarray, null_value: float = 0.0
) -> float:
    """MAE over positions where the target is not ``null_value``.

    Traffic datasets mark missing sensor readings with zeros; the CTS
    literature (DCRNN onward) excludes them from evaluation.
    """
    mask = target != null_value
    if not mask.any():
        return 0.0
    return float(np.mean(np.abs(prediction[mask] - target[mask])))


def masked_rmse(
    prediction: np.ndarray, target: np.ndarray, null_value: float = 0.0
) -> float:
    """RMSE over positions where the target is not ``null_value``."""
    mask = target != null_value
    if not mask.any():
        return 0.0
    return float(np.sqrt(np.mean((prediction[mask] - target[mask]) ** 2)))


@dataclass(frozen=True)
class ForecastScores:
    """Bundle of every metric for one evaluation run."""

    mae: float
    rmse: float
    mape: float
    rrse: float
    corr: float

    def primary(self, single_step: bool = False) -> float:
        """The headline metric: MAE (multi-step) or RRSE (single-step)."""
        return self.rrse if single_step else self.mae


def evaluate_forecast(prediction: np.ndarray, target: np.ndarray) -> ForecastScores:
    """Compute every forecasting metric at once."""
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction {prediction.shape} and target {target.shape} differ"
        )
    return ForecastScores(
        mae=mae(prediction, target),
        rmse=rmse(prediction, target),
        mape=mape(prediction, target),
        rrse=rrse(prediction, target),
        corr=corr(prediction, target),
    )
