"""Forecasting and ranking metrics."""

from .forecasting import (
    ForecastScores,
    corr,
    evaluate_forecast,
    mae,
    mape,
    masked_mae,
    masked_rmse,
    rmse,
    rrse,
)
from .ranking import kendall_tau, pairwise_accuracy, spearman, top_k_regret

__all__ = [
    "ForecastScores",
    "corr",
    "evaluate_forecast",
    "mae",
    "mape",
    "masked_mae",
    "masked_rmse",
    "rmse",
    "rrse",
    "kendall_tau",
    "pairwise_accuracy",
    "spearman",
    "top_k_regret",
]
