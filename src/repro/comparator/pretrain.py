"""Pre-training the T-AHC across enriched tasks (paper Algorithm 1).

Stages:

1. **Sample collection** — draw L *shared* arch-hypers once plus L *random*
   arch-hypers per task, measure each with the early-validation proxy R'
   (Eq. 22), and compute the preliminary task embedding with TS2Vec.
2. **Curriculum pre-training** — each epoch trains on the shared samples
   plus a growing slice Δ of the random samples, with pairs regenerated
   dynamically, optimizing BCE on the pairwise labels.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..autodiff import Tensor, sigmoid, no_grad
from ..nn.loss import bce_with_logits
from ..obs.heartbeat import heartbeat
from ..obs.trace import span
from ..optim import Adam, clip_grad_norm
from ..space.archhyper import ArchHyper
from ..space.encoding import encode_batch
from ..space.sampling import JointSearchSpace
from ..tasks.proxy import ProxyConfig
from ..tasks.task import Task

if TYPE_CHECKING:
    from ..runtime import Checkpoint, ProxyEvaluator
from ..utils.seeding import derive_rng
from .ahc import Encodings
from .curriculum import curriculum_schedule
from .pairing import (
    comparable_pair_indices,
    dynamic_pairs,
    has_comparable_pair,
    pair_index_arrays,
    pair_labels,
)
from .tahc import TAHC


@dataclass
class TaskSampleSet:
    """Everything the pre-trainer needs about one task.

    The first ``shared_count`` entries of ``arch_hypers``/``scores`` are the
    shared sample set S0 (identical across tasks); the rest are the task's
    own random samples.
    """

    task_name: str
    preliminary: np.ndarray  # (num_windows, S, F')
    arch_hypers: list[ArchHyper]
    scores: np.ndarray
    shared_count: int
    encodings: Encodings | None = None
    # Fidelity tags from a successive-halving collect (docs/fidelity.md):
    # the epoch budget each score was measured at, and which candidates are
    # eligible to appear in comparator labels under the chosen label policy.
    # Both stay None on the flat single-fidelity path (and in pre-fidelity
    # pickles), which downstream code treats as "everything full fidelity".
    fidelities: np.ndarray | None = None
    label_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.arch_hypers) != len(self.scores):
            raise ValueError("arch_hypers and scores must align")
        if not 0 <= self.shared_count <= len(self.arch_hypers):
            raise ValueError("shared_count out of range")
        if self.fidelities is not None and len(self.fidelities) != len(self.scores):
            raise ValueError("fidelities and scores must align")
        if self.label_mask is not None and len(self.label_mask) != len(self.scores):
            raise ValueError("label_mask and scores must align")

    def ensure_encodings(self) -> Encodings:
        if self.encodings is None:
            self.encodings = encode_batch(self.arch_hypers)
        return self.encodings


@dataclass(frozen=True)
class PretrainConfig:
    """Knobs of Algorithm 1 (paper defaults noted; tiny CPU values differ)."""

    shared_samples: int = 6  # L
    random_samples: int = 6  # L (second half of the 2L per-task samples)
    epochs: int = 30  # k_t
    pairs_per_task: int = 16
    lr: float = 1e-3  # paper: Adam, lr 0.001
    weight_decay: float = 5e-4  # paper: 0.0005
    grad_clip: float = 5.0
    patience: int = 5
    seed: int = 0
    proxy: ProxyConfig = field(default_factory=ProxyConfig)


@dataclass
class PretrainHistory:
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    deltas: list[int] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Stage 1: sample collection
# ---------------------------------------------------------------------------


def collect_task_samples(
    tasks: list[Task],
    space: JointSearchSpace,
    embedder,
    config: PretrainConfig | None = None,
    evaluator: "ProxyEvaluator | None" = None,
    checkpoint: "Checkpoint | None" = None,
    fidelity_schedule=None,
    label_policy: str | None = None,
    warm_dir: str | None = None,
) -> list[TaskSampleSet]:
    """Measure shared + random arch-hypers on every task (Algorithm 1, l.1–7).

    ``embedder`` is a :class:`~repro.embedding.task_encoder.PreliminaryEmbedder`
    (TS2Vec in the full framework).

    All ``(candidate, task)`` evaluations are fanned out through one
    ``evaluator`` batch (default: the process-wide
    :func:`~repro.runtime.get_default_evaluator`) so the parallel backend
    sees the whole cross-task workload at once.  Candidate pools are sampled
    up front, in task order, so the RNG stream — and therefore every sampled
    arch-hyper — is identical to the historical per-task loop.

    ``checkpoint`` persists scores as they land; an interrupted collection
    resumes from it with bitwise-identical samples and scores (entries are
    content-addressed by evaluation fingerprint, so resuming is always
    sound).

    ``fidelity_schedule`` (a :class:`~repro.runtime.FidelitySchedule`, an
    ``eta:rungs:min-epochs`` spec, or ``None`` → ``$REPRO_FIDELITY_SCHEDULE``)
    runs the collection as a successive-halving ladder instead of a flat
    full-fidelity sweep; ``label_policy`` decides how sub-full-fidelity
    scores may label (``docs/fidelity.md``).  With no schedule anywhere this
    function is bitwise-identical to the historical pipeline.
    """
    from ..embedding.task_encoder import preliminary_task_embedding
    from ..runtime import (
        EvalProgress,
        get_default_evaluator,
        resolve_fidelity_schedule,
        resolve_label_policy,
    )

    config = config if config is not None else PretrainConfig()
    if not tasks:
        raise ValueError("no tasks given")
    rng = derive_rng(config.seed, "collect")
    shared = space.sample_batch(config.shared_samples, rng)
    pools = [
        shared + space.sample_batch(config.random_samples, rng) for _ in tasks
    ]
    evaluator = evaluator or get_default_evaluator()
    progress = EvalProgress(checkpoint) if checkpoint is not None else None
    jobs = [(ah, task) for task, pool in zip(tasks, pools) for ah in pool]
    schedule = resolve_fidelity_schedule(fidelity_schedule)
    with span("collect", tasks=len(tasks), candidates=len(jobs)):
        flat_fidelities: list[int] | None = None
        flat_mask: list[bool] | None = None
        if schedule is None:
            flat_scores = evaluator.evaluate_pairs(
                jobs, config.proxy, progress=progress
            )
        else:
            policy = resolve_label_policy(label_policy)
            result = evaluator.evaluate_rungs(
                jobs,
                config.proxy,
                schedule=schedule,
                progress=progress,
                warm_dir=warm_dir,
            )
            flat_scores = result.scores
            flat_fidelities = result.fidelities
            flat_mask = (
                result.full_fidelity_mask()
                if policy == "survivors"
                else [True] * len(flat_scores)
            )

        sample_sets: list[TaskSampleSet] = []
        cursor = 0
        for task, candidates in zip(tasks, pools):
            window = slice(cursor, cursor + len(candidates))
            scores = np.array(flat_scores[window], dtype=np.float64)
            fidelities = (
                np.array(flat_fidelities[window], dtype=np.int64)
                if flat_fidelities is not None
                else None
            )
            label_mask = (
                np.array(flat_mask[window], dtype=bool)
                if flat_mask is not None
                else None
            )
            cursor += len(candidates)
            with span("task-embedding", task=task.name):
                preliminary = preliminary_task_embedding(
                    embedder, task.embedding_windows()
                )
            sample_sets.append(
                TaskSampleSet(
                    task_name=task.name,
                    preliminary=preliminary,
                    arch_hypers=candidates,
                    scores=scores,
                    shared_count=len(shared),
                    fidelities=fidelities,
                    label_mask=label_mask,
                )
            )
    return sample_sets


# ---------------------------------------------------------------------------
# Stage 2: curriculum pre-training
# ---------------------------------------------------------------------------


def _task_pair_loss(
    model: TAHC,
    sample_set: TaskSampleSet,
    index_a: np.ndarray,
    index_b: np.ndarray,
    labels: np.ndarray,
) -> tuple[Tensor, float]:
    """BCE loss and accuracy over one task's pair batch (as index arrays).

    Encode-once: the candidate pool is embedded in a single GIN forward and
    both pair sides gather rows from that shared embedding batch (the
    gather is differentiable, so gradients still reach the encoder from
    every pair a candidate appears in).  A pool of n candidates costs n
    encoder forwards per step instead of 2·pairs.
    """
    encodings = sample_set.ensure_encodings()
    pool_size = int(max(index_a.max(), index_b.max())) + 1
    pool = tuple(array[:pool_size] for array in encodings)
    embeddings = model.embed(pool)
    task_embedding = model.encode_task(sample_set.preliminary)
    logits = model.score_pairs(
        task_embedding, embeddings[index_a], embeddings[index_b]
    )
    loss = bce_with_logits(logits, labels)
    predictions = (sigmoid(logits).numpy() >= 0.5).astype(np.float32)
    accuracy = float((predictions == labels).mean())
    return loss, accuracy


def _pretrain_checkpoint_meta(
    config: PretrainConfig, sample_sets: list[TaskSampleSet]
) -> dict:
    """The run identity a pretraining checkpoint must match to be resumed."""
    meta = {
        "config": asdict(config),
        "tasks": [s.task_name for s in sample_sets],
        "pool_sizes": [len(s.arch_hypers) for s in sample_sets],
    }
    # Fidelity label masks change which pairs may form, so they are part of
    # the run identity — but the key is added only when a mask exists, so
    # every flat-collect checkpoint meta stays byte-identical to before.
    masks = [
        None if s.label_mask is None else [bool(b) for b in s.label_mask]
        for s in sample_sets
    ]
    if any(mask is not None for mask in masks):
        meta["label_masks"] = masks
    return meta


def pretrain_tahc(
    model: TAHC,
    sample_sets: list[TaskSampleSet],
    config: PretrainConfig | None = None,
    checkpoint: "Checkpoint | None" = None,
) -> PretrainHistory:
    """Algorithm 1, lines 8–18: curriculum + dynamic pairing + BCE training.

    With a ``checkpoint``, the full epoch state — model weights, Adam
    moments, the RNG stream, curriculum history, and early-stop counters —
    is persisted after every epoch, so an interrupted run resumes at the
    next epoch and finishes bitwise-identically to an uninterrupted one.
    """
    config = config if config is not None else PretrainConfig()
    if not sample_sets:
        raise ValueError("no sample sets given")
    optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    rng = derive_rng(config.seed, "pretrain")
    max_random = max(len(s.arch_hypers) - s.shared_count for s in sample_sets)
    schedule = curriculum_schedule(max_random, config.epochs)
    history = PretrainHistory()
    best_loss = float("inf")
    stale = 0
    start_epoch = 0
    if checkpoint is not None:
        checkpoint.meta = _pretrain_checkpoint_meta(config, sample_sets)
        state = checkpoint.load()
        if state is not None:
            model.load_state_dict(state["model"])
            optimizer.load_state_dict(state["optimizer"])
            rng.bit_generator.state = state["rng"]
            history = PretrainHistory(
                losses=list(state["losses"]),
                accuracies=list(state["accuracies"]),
                deltas=list(state["deltas"]),
            )
            best_loss = float(state["best_loss"])
            stale = int(state["stale"])
            start_epoch = int(state["epoch"])
            if state.get("done"):
                return history

    def save_progress(epochs_done: int, done: bool) -> None:
        if checkpoint is None:
            return
        checkpoint.save(
            {
                "epoch": epochs_done,
                "done": done,
                "model": model.state_dict(),
                "optimizer": optimizer.state_dict(),
                "rng": rng.bit_generator.state,
                "losses": list(history.losses),
                "accuracies": list(history.accuracies),
                "deltas": list(history.deltas),
                "best_loss": best_loss,
                "stale": stale,
            }
        )

    stopped = False
    with span(
        "pretrain", epochs=len(schedule), tasks=len(sample_sets)
    ) as pretrain_span:
        for epoch, delta in enumerate(schedule):
            if epoch < start_epoch:
                continue  # already trained before the interruption
            with span("pretrain-epoch", index=epoch, delta=delta) as epoch_span:
                epoch_losses, epoch_accs = [], []
                order = rng.permutation(len(sample_sets))
                for task_index in order:
                    sample_set = sample_sets[task_index]
                    pool_size = min(
                        sample_set.shared_count + delta, len(sample_set.arch_hypers)
                    )
                    if pool_size < 2:
                        continue
                    pool_scores = sample_set.scores[:pool_size]
                    pool_eligible = (
                        sample_set.label_mask[:pool_size]
                        if sample_set.label_mask is not None
                        else None
                    )
                    if not has_comparable_pair(pool_scores, pool_eligible):
                        # Every candidate in this curriculum slice diverged (or
                        # is label-ineligible under the fidelity policy): no
                        # pair carries ordering information, so skip the task
                        # this epoch (the check draws no RNG, keeping healthy
                        # runs bitwise-same).
                        continue
                    pairs = dynamic_pairs(
                        pool_scores, rng, config.pairs_per_task, pool_eligible
                    )
                    index_a, index_b, labels = pair_index_arrays(pairs)
                    loss, accuracy = _task_pair_loss(
                        model, sample_set, index_a, index_b, labels
                    )
                    optimizer.zero_grad()
                    loss.backward()
                    if config.grad_clip:
                        clip_grad_norm(optimizer.parameters, config.grad_clip)
                    optimizer.step()
                    epoch_losses.append(loss.item())
                    epoch_accs.append(accuracy)
                # With a shared-free curriculum (the w/o-shared ablation) early
                # epochs can have no trainable pool yet; record NaN-free
                # placeholders.
                history.losses.append(
                    float(np.mean(epoch_losses)) if epoch_losses else float("inf")
                )
                history.accuracies.append(
                    float(np.mean(epoch_accs)) if epoch_accs else 0.0
                )
                history.deltas.append(delta)
                epoch_span.set(
                    loss=history.losses[-1], accuracy=history.accuracies[-1]
                )
            # Early stop (paper: patience 5) once the full curriculum is in.
            if delta >= max_random:
                if history.losses[-1] < best_loss - 1e-4:
                    best_loss = history.losses[-1]
                    stale = 0
                else:
                    stale += 1
                    if stale >= config.patience:
                        stopped = True
            save_progress(epoch + 1, done=stopped or epoch + 1 == len(schedule))
            heartbeat(
                "pretrain",
                lambda: (
                    f"pretrain epoch {epoch + 1}/{len(schedule)}; "
                    f"loss {history.losses[-1]:.4f}; "
                    f"accuracy {history.accuracies[-1]:.2%}"
                ),
            )
            if stopped:
                break
        pretrain_span.set(
            epochs_run=len(history.losses), stopped_early=stopped
        )
    return history


def evaluate_comparator(
    model: TAHC, sample_set: TaskSampleSet
) -> float:
    """Pairwise accuracy of the comparator on one task's measured samples.

    Uses the memoized O(n²) ordered-pair index template and the sample set's
    cached encodings — no per-call pair-object construction.  Both-diverged
    (sentinel) pairs are excluded, matching the training-side pairing rules,
    as are pairs touching a label-ineligible (sub-full-fidelity) candidate.
    """
    index_a, index_b = comparable_pair_indices(
        sample_set.scores, sample_set.label_mask
    )
    if len(index_a) == 0:
        raise ValueError(
            f"task {sample_set.task_name!r} has no comparable pairs "
            "(all measured candidates diverged or are label-ineligible)"
        )
    labels = pair_labels(sample_set.scores, index_a, index_b)
    with no_grad():
        _, accuracy = _task_pair_loss(model, sample_set, index_a, index_b, labels)
    return accuracy
