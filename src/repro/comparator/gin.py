"""Graph Isomorphism Network encoder for arch-hyper graphs (Eqs. 13–14).

The GIN consumes the dual-graph encoding of Section 3.1.3 — padded adjacency
``A_a``, per-node operator ids, and the normalized hyperparameter vector —
and produces one embedding per arch-hyper.  Following the paper, the latent
of the "Hyper" node (which connects to every operator node) is used as the
representation ``l_a`` of the whole arch-hyper.

The learnable input embeddings ``W_e`` (operator one-hots, Eq. 8) and ``W_c``
(hyperparameter projection, Eq. 7) live here and are trained jointly with the
comparator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor, concat, embedding, matmul
from ..nn import init
from ..nn.linear import MLP, Linear
from ..nn.module import Module, ModuleList, Parameter
from ..space.encoding import HYPER_NODE
from ..utils.seeding import derive_rng


class GINLayer(Module):
    """One GIN step: ``H <- MLP((1 + eps) H + A H)``."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.eps = Parameter(np.zeros(1, dtype=np.float32))
        self.mlp = MLP([dim, dim, dim], rng=rng)

    def forward(self, h: Tensor, adjacency: Tensor) -> Tensor:
        aggregated = matmul(adjacency, h)
        return self.mlp(h * (self.eps + 1.0) + aggregated)


@dataclass
class EncoderStats:
    """Forward-pass accounting of a :class:`GINEncoder`.

    ``rows`` counts individual graphs encoded (the unit the encode-once
    ranking path minimizes); ``calls`` counts batched forward invocations.
    """

    calls: int = 0
    rows: int = 0

    def reset(self) -> None:
        self.calls = 0
        self.rows = 0


class GINEncoder(Module):
    """Encode batched arch-hyper graphs into ``l_a`` vectors."""

    def __init__(
        self,
        num_operator_types: int,
        hyper_dim: int = 6,
        embed_dim: int = 32,
        num_layers: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("GIN needs at least one layer")
        rng = derive_rng(seed, "gin")
        self.embed_dim = embed_dim
        # W_e of Eq. 8: one-hot operator embedding.
        self.operator_embedding = Parameter(
            init.normal(rng, (num_operator_types, embed_dim), std=0.1)
        )
        # W_c of Eq. 7: hyperparameter-vector projection.
        self.hyper_proj = Linear(hyper_dim, embed_dim, rng=rng)
        self.layers = ModuleList(GINLayer(embed_dim, rng) for _ in range(num_layers))

    @property
    def stats(self) -> EncoderStats:
        """Forward accounting; lazy so encoders unpickled from artifact
        caches that predate the counter keep working."""
        stats = self.__dict__.get("_stats")
        if stats is None:
            stats = EncoderStats()
            self.__dict__["_stats"] = stats
        return stats

    def node_features(
        self, op_indices: np.ndarray, hyper: np.ndarray
    ) -> Tensor:
        """Assemble the feature matrix F_a = concat(F_h, F_e) (Section 3.1.3)."""
        batch, max_nodes = op_indices.shape
        op_mask = (op_indices >= 0).astype(np.float32)[..., None]
        safe_indices = np.where(op_indices >= 0, op_indices, 0)
        operator_features = embedding(self.operator_embedding, safe_indices) * Tensor(
            op_mask
        )
        hyper_features = self.hyper_proj(Tensor(hyper))  # (B, D)
        hyper_row = hyper_features.reshape(batch, 1, self.embed_dim)
        padding = Tensor(np.zeros((batch, max_nodes - 1, self.embed_dim), np.float32))
        hyper_block = concat([hyper_row, padding], axis=1)
        return operator_features + hyper_block

    def forward(
        self,
        adjacency: np.ndarray,
        op_indices: np.ndarray,
        hyper: np.ndarray,
        mask: np.ndarray,
    ) -> Tensor:
        """Encode a batch; inputs are the arrays from ``encode_batch``.

        Returns the Hyper-node latents, shape ``(B, embed_dim)``.
        """
        self.stats.calls += 1
        self.stats.rows += int(op_indices.shape[0])
        h = self.node_features(op_indices, hyper)
        adjacency_t = Tensor(adjacency)
        node_mask = Tensor(mask[..., None].astype(np.float32))
        for layer in self.layers:
            h = layer(h, adjacency_t) * node_mask  # keep padding rows at zero
        return h[:, HYPER_NODE, :]
