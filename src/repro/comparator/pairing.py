"""Dynamic pairing of measured arch-hypers into comparator training pairs.

From ``a`` measured ``(ah, R'(ah))`` records one can form ``a(a-1)`` ordered
training pairs — the sample-efficiency trick of the comparator approach.  To
avoid overfitting, pairs are regenerated and shuffled *every epoch* (the
dynamic pairing of BRP-NAS/CTNAS adopted by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..space.archhyper import ArchHyper


@dataclass(frozen=True)
class ScoredArchHyper:
    """An arch-hyper with its measured early-validation error (lower better)."""

    arch_hyper: ArchHyper
    score: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.score):
            raise ValueError(f"non-finite score for {self.arch_hyper}")


@dataclass(frozen=True)
class ComparisonPair:
    """One training pair: indices into a candidate pool plus the label.

    ``label == 1`` means the first candidate is more accurate, i.e.
    ``score_a < score_b`` (scores are errors).
    """

    index_a: int
    index_b: int
    label: float


def make_label(score_a: float, score_b: float) -> float:
    """y = 1(R(ah_a) >= R(ah_b)) with accuracies == 1(err_a <= err_b)."""
    return 1.0 if score_a <= score_b else 0.0


def dynamic_pairs(
    scores: np.ndarray,
    rng: np.random.Generator,
    n_pairs: int,
) -> list[ComparisonPair]:
    """Draw ``n_pairs`` random ordered pairs with ground-truth labels.

    Pairs with identical scores are kept (label 1 by the >= convention);
    ``i == j`` self-pairs are excluded.
    """
    count = len(scores)
    if count < 2:
        raise ValueError("need at least two scored candidates to build pairs")
    pairs: list[ComparisonPair] = []
    for _ in range(n_pairs):
        i = int(rng.integers(count))
        j = int(rng.integers(count - 1))
        if j >= i:
            j += 1
        pairs.append(ComparisonPair(i, j, make_label(scores[i], scores[j])))
    return pairs


def all_ordered_pairs(scores: np.ndarray) -> list[ComparisonPair]:
    """Every ordered pair (used by evaluation, not training)."""
    count = len(scores)
    return [
        ComparisonPair(i, j, make_label(scores[i], scores[j]))
        for i in range(count)
        for j in range(count)
        if i != j
    ]
