"""Dynamic pairing of measured arch-hypers into comparator training pairs.

From ``a`` measured ``(ah, R'(ah))`` records one can form ``a(a-1)`` ordered
training pairs — the sample-efficiency trick of the comparator approach.  To
avoid overfitting, pairs are regenerated and shuffled *every epoch* (the
dynamic pairing of BRP-NAS/CTNAS adopted by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..space.archhyper import ArchHyper
from ..tasks.proxy import is_sentinel_score


@dataclass(frozen=True)
class ScoredArchHyper:
    """An arch-hyper with its measured early-validation error (lower better).

    Sentinel (diverged) scores are allowed — they are finite by construction
    — but NaN/Inf scores are rejected at the door so no non-finite value can
    ever reach a comparator label.
    """

    arch_hyper: ArchHyper
    score: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.score):
            raise ValueError(f"non-finite score for {self.arch_hyper}")


@dataclass(frozen=True)
class ComparisonPair:
    """One training pair: indices into a candidate pool plus the label.

    ``label == 1`` means the first candidate is more accurate, i.e.
    ``score_a < score_b`` (scores are errors).
    """

    index_a: int
    index_b: int
    label: float


def make_label(score_a: float, score_b: float) -> float:
    """y = 1(R(ah_a) >= R(ah_b)) with accuracies == 1(err_a <= err_b)."""
    return 1.0 if score_a <= score_b else 0.0


def diverged_mask(scores: np.ndarray) -> np.ndarray:
    """Boolean mask of sentinel (diverged) entries in a score pool."""
    scores = np.asarray(scores, dtype=np.float64)
    return np.array([is_sentinel_score(float(s)) for s in scores], dtype=bool)


def _eligibility(
    count: int, eligible: np.ndarray | None
) -> np.ndarray | None:
    """Normalize an optional per-candidate label-eligibility mask.

    ``None`` (the default everywhere) means every candidate is eligible and
    — critically — keeps the healthy code path byte-identical: no mask is
    materialized and no extra RNG is ever drawn.  A mask arises from the
    fidelity label policy (``docs/fidelity.md``): candidates culled at a
    sub-full rung carry low-fidelity scores that the ``survivors`` policy
    excludes from comparator labels.
    """
    if eligible is None:
        return None
    mask = np.asarray(eligible, dtype=bool)
    if len(mask) < count:
        raise ValueError(
            f"eligibility mask ({len(mask)}) shorter than score pool ({count})"
        )
    mask = mask[:count]
    return None if mask.all() else mask


def has_comparable_pair(
    scores: np.ndarray, eligible: np.ndarray | None = None
) -> bool:
    """Whether any valid training pair exists in the pool.

    A pair is comparable unless *both* members diverged — two sentinel
    scores carry no ordering information, so a pool needs at least two
    candidates and at least one non-diverged one.  With an ``eligible``
    mask, only eligible candidates may pair at all (fidelity label policy),
    so the pool additionally needs two eligible members, one of them
    non-diverged.
    """
    scores = np.asarray(scores)
    if len(scores) < 2:
        return False
    mask = _eligibility(len(scores), eligible)
    bad = diverged_mask(scores)
    if mask is None:
        return int(bad.sum()) < len(scores)
    if int(mask.sum()) < 2:
        return False
    return bool((mask & ~bad).any())


def dynamic_pairs(
    scores: np.ndarray,
    rng: np.random.Generator,
    n_pairs: int,
    eligible: np.ndarray | None = None,
) -> list[ComparisonPair]:
    """Draw ``n_pairs`` random ordered pairs with ground-truth labels.

    Pairs with identical scores are kept (label 1 by the >= convention);
    ``i == j`` self-pairs are excluded.  Pairs of *two diverged* (sentinel)
    candidates are rejection-resampled away — their tied worst-case scores
    would yield a meaningless label that poisons comparator training.  Pairs
    touching an in*eligible* candidate (fidelity label policy; ``eligible``
    defaults to everyone) are resampled the same way.  When the pool has no
    diverged scores and no mask, the RNG stream is consumed exactly as it
    always was, so healthy runs stay bitwise-identical.
    """
    count = len(scores)
    if count < 2:
        raise ValueError("need at least two scored candidates to build pairs")
    mask = _eligibility(count, eligible)
    bad = diverged_mask(scores)
    if not has_comparable_pair(scores, eligible):
        raise ValueError(
            "no comparable pair exists in the pool (diverged or "
            "label-ineligible candidates only)"
        )
    pairs: list[ComparisonPair] = []
    while len(pairs) < n_pairs:
        i = int(rng.integers(count))
        j = int(rng.integers(count - 1))
        if j >= i:
            j += 1
        if bad[i] and bad[j]:
            continue  # resample: no ordering information in a diverged pair
        if mask is not None and not (mask[i] and mask[j]):
            continue  # resample: low-fidelity scores excluded from labels
        pairs.append(ComparisonPair(i, j, make_label(scores[i], scores[j])))
    return pairs


@lru_cache(maxsize=64)
def ordered_pair_indices(count: int) -> tuple[np.ndarray, np.ndarray]:
    """Index arrays of every ordered pair ``(i, j), i != j`` — vectorized.

    The ``count -> indices`` template depends only on the pool size, so it is
    memoized; callers must treat the returned (read-only) arrays as
    immutable.
    """
    index_a = np.repeat(np.arange(count), count)
    index_b = np.tile(np.arange(count), count)
    keep = index_a != index_b
    index_a, index_b = index_a[keep], index_b[keep]
    index_a.setflags(write=False)
    index_b.setflags(write=False)
    return index_a, index_b


def pair_labels(
    scores: np.ndarray, index_a: np.ndarray, index_b: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`make_label` over index arrays."""
    scores = np.asarray(scores)
    return (scores[index_a] <= scores[index_b]).astype(np.float32)


def pair_index_arrays(
    pairs: list[ComparisonPair],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(index_a, index_b, labels)`` arrays from a pair list — built once so
    training loops don't re-derive them per use."""
    index_a = np.fromiter((p.index_a for p in pairs), dtype=np.int64, count=len(pairs))
    index_b = np.fromiter((p.index_b for p in pairs), dtype=np.int64, count=len(pairs))
    labels = np.fromiter((p.label for p in pairs), dtype=np.float32, count=len(pairs))
    return index_a, index_b, labels


def comparable_pair_indices(
    scores: np.ndarray, eligible: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Ordered-pair index arrays with both-diverged pairs filtered out.

    Identical to :func:`ordered_pair_indices` on a sentinel-free pool (the
    common case, and a cheap vectorized check), so evaluation stays on the
    memoized template unless divergence actually occurred.  With an
    ``eligible`` mask (fidelity label policy), pairs touching an ineligible
    candidate are filtered out as well.
    """
    index_a, index_b = ordered_pair_indices(len(scores))
    mask = _eligibility(len(scores), eligible)
    bad = diverged_mask(scores)
    if not bad.any() and mask is None:
        return index_a, index_b
    keep = ~(bad[index_a] & bad[index_b])
    if mask is not None:
        keep &= mask[index_a] & mask[index_b]
    return index_a[keep], index_b[keep]


def all_ordered_pairs(scores: np.ndarray) -> list[ComparisonPair]:
    """Every comparable ordered pair (used by evaluation, not training).

    Both-diverged pairs are excluded — identically to the training side —
    so a sentinel score can never manufacture a label out of a tie between
    two failures.
    """
    index_a, index_b = comparable_pair_indices(scores)
    labels = pair_labels(scores, index_a, index_b)
    return [
        ComparisonPair(int(i), int(j), float(label))
        for i, j, label in zip(index_a, index_b, labels)
    ]
