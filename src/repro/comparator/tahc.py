"""The Task-aware Architecture-Hyperparameter Comparator (T-AHC, Fig. 4).

T-AHC extends the AHC with a task-conditioning pathway: the task's
preliminary embedding (TS2Vec windows, Eqs. 9–10) is refined by the trainable
task encoder (Set-Transformer, Eqs. 11–12) into ``E'``, passed through a
fully-connected layer, and concatenated with the arch-hyper-pair features
before classification (Eqs. 17–21).  Pre-trained across many tasks, it ranks
candidates for *unseen* tasks zero-shot.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, broadcast_to, concat, no_grad
from ..nn.linear import MLP, Linear
from ..nn.module import Module
from ..space.archhyper import ArchHyper
from ..space.hyperparams import HyperSpace
from ..utils.seeding import derive_rng
from .ahc import Encodings
from .gin import GINEncoder


class TAHC(Module):
    """Task-aware pairwise comparator over the joint search space."""

    def __init__(
        self,
        num_operator_types: int = 5,
        hyper_dim: int = 6,
        embed_dim: int = 32,
        gin_layers: int = 4,
        hidden_dim: int = 32,
        task_encoder: Module | None = None,
        preliminary_dim: int = 16,
        task_embed_dim: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = derive_rng(seed, "tahc")
        self.gin = GINEncoder(
            num_operator_types,
            hyper_dim=hyper_dim,
            embed_dim=embed_dim,
            num_layers=gin_layers,
            seed=seed,
        )
        if task_encoder is None:
            from ..embedding.task_encoder import TaskEncoder

            task_encoder = TaskEncoder(
                input_dim=preliminary_dim, output_dim=task_embed_dim, seed=seed
            )
        self.task_encoder = task_encoder
        task_dim = task_encoder.output_dim
        self.pair_fc = Linear(2 * embed_dim, hidden_dim, rng=rng)  # FC_L (Eq. 17)
        self.task_fc = Linear(task_dim, hidden_dim, rng=rng)  # FC_E (Eq. 18)
        self.classifier = MLP([2 * hidden_dim, hidden_dim, 1], rng=rng)  # Eqs. 20–21

    # ------------------------------------------------------------------
    # Forward paths
    # ------------------------------------------------------------------
    def encode_task(self, preliminary: np.ndarray) -> Tensor:
        """Refine a preliminary task embedding (num_windows, S, F') to E'."""
        return self.task_encoder(preliminary)

    # ------------------------------------------------------------------
    # Embed / score stages
    # ------------------------------------------------------------------
    def embed(self, encodings: Encodings) -> Tensor:
        """Stage 1: GIN embeddings ``l_a`` of a candidate batch, (B, D)."""
        return self.gin(*encodings)

    def score_pairs(
        self, task_embedding: Tensor, emb_a: Tensor, emb_b: Tensor
    ) -> Tensor:
        """Stage 2: head-only pairwise logits from precomputed embeddings.

        ``task_embedding`` is E' from :meth:`encode_task` — a single vector,
        broadcast over the pair batch.  Runs no encoder or Set-Transformer
        forward, so the encode-once
        :class:`~repro.comparator.scoring.RankingEngine` can batch it freely.
        """
        pair = self.pair_fc(concat([emb_a, emb_b], axis=-1)).relu()  # L'_a
        task = self.task_fc(task_embedding.reshape(1, -1)).relu()  # Ẽ'
        task_rows = broadcast_to(task, (pair.shape[0], task.shape[1]))
        features = concat([pair, task_rows], axis=-1)  # O (Eq. 19)
        return self.classifier(features).reshape(-1)

    def forward(
        self,
        task_embedding: Tensor,
        enc_a: Encodings,
        enc_b: Encodings,
    ) -> Tensor:
        """Logits (B,): positive means candidate ``a`` is judged better for the task.

        Thin composition of :meth:`embed` and :meth:`score_pairs` — the op
        sequence (and therefore checkpointed weights and the pretrain
        gradient path) is unchanged from the monolithic formulation.
        """
        return self.score_pairs(task_embedding, self.embed(enc_a), self.embed(enc_b))

    # ------------------------------------------------------------------
    # Inference helpers
    # ------------------------------------------------------------------
    def task_embedding_vector(self, preliminary: np.ndarray) -> np.ndarray:
        """E' as a numpy vector (used for visualization, Figure 6)."""
        was_training = self.training
        self.eval()
        with no_grad():
            vector = self.encode_task(preliminary).numpy().copy()
        self.train(was_training)
        return vector

    def predict_wins(
        self,
        preliminary: np.ndarray,
        arch_hypers: list[ArchHyper],
        space: HyperSpace | None = None,
        batch_size: int = 256,
    ) -> np.ndarray:
        """Pairwise win matrix of ``arch_hypers`` under the given task.

        Delegates to the encode-once :class:`RankingEngine`: the task
        embedding E' is computed once and each candidate is embedded once
        (instead of once per ordered pair), with bitwise-identical wins.
        """
        from .scoring import RankingEngine

        engine = RankingEngine(
            self, preliminary=preliminary, space=space, batch_size=batch_size
        )
        return engine.win_matrix(arch_hypers, sanitize=False)
