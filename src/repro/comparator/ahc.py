"""The Architecture-Hyperparameter Comparator (AHC) of AutoCTS+.

The AHC takes the dual-graph encodings of two arch-hypers, embeds each with a
shared GIN, concatenates the embeddings, and classifies which candidate has
higher accuracy.  It is the task-agnostic ancestor of the T-AHC; AutoCTS+
trains one per target task.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, no_grad, sigmoid
from ..nn.linear import MLP, Linear
from ..nn.module import Module
from ..space.archhyper import ArchHyper
from ..space.encoding import encode_batch
from ..space.hyperparams import HyperSpace
from ..utils.seeding import derive_rng
from .gin import GINEncoder

Encodings = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class AHC(Module):
    """Pairwise arch-hyper comparator (no task conditioning)."""

    def __init__(
        self,
        num_operator_types: int = 5,
        hyper_dim: int = 6,
        embed_dim: int = 32,
        gin_layers: int = 4,
        hidden_dim: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = derive_rng(seed, "ahc")
        self.gin = GINEncoder(
            num_operator_types,
            hyper_dim=hyper_dim,
            embed_dim=embed_dim,
            num_layers=gin_layers,
            seed=seed,
        )
        self.pair_fc = Linear(2 * embed_dim, hidden_dim, rng=rng)
        self.classifier = MLP([hidden_dim, hidden_dim, 1], rng=rng)

    # ------------------------------------------------------------------
    # Embed / score stages
    # ------------------------------------------------------------------
    def embed(self, encodings: Encodings) -> Tensor:
        """Stage 1: GIN embeddings ``l_a`` of a candidate batch, (B, D)."""
        return self.gin(*encodings)

    def score_pairs(self, emb_a: Tensor, emb_b: Tensor) -> Tensor:
        """Stage 2: head-only pairwise logits from precomputed embeddings.

        Runs no encoder forward — this is the hot path of the encode-once
        :class:`~repro.comparator.scoring.RankingEngine`.
        """
        features = self.pair_fc(concat([emb_a, emb_b], axis=-1)).relu()
        return self.classifier(features).reshape(-1)

    def pair_features(self, enc_a: Encodings, enc_b: Encodings) -> Tensor:
        """Concatenated GIN embeddings of the two candidates (Eq. 16)."""
        return concat([self.embed(enc_a), self.embed(enc_b)], axis=-1)

    def forward(self, enc_a: Encodings, enc_b: Encodings) -> Tensor:
        """Logits (B,): positive means the first candidate is judged better.

        Thin composition of :meth:`embed` and :meth:`score_pairs` — the op
        sequence (and therefore checkpointed weights and the pretrain
        gradient path) is unchanged from the monolithic formulation.
        """
        return self.score_pairs(self.embed(enc_a), self.embed(enc_b))

    # ------------------------------------------------------------------
    # Convenience inference API
    # ------------------------------------------------------------------
    def predict_wins(
        self,
        arch_hypers: list[ArchHyper],
        space: HyperSpace | None = None,
        batch_size: int = 256,
    ) -> np.ndarray:
        """Full pairwise win matrix W with ``W[i, j] = 1`` iff i beats j.

        Delegates to the encode-once :class:`RankingEngine`: N encoder
        forwards instead of 2·N·(N−1), bitwise-identical win matrices.
        """
        from .scoring import RankingEngine

        engine = RankingEngine(self, space=space, batch_size=batch_size)
        return engine.win_matrix(arch_hypers, sanitize=False)


def _index_encodings(encodings: Encodings, index: np.ndarray) -> Encodings:
    return tuple(array[index] for array in encodings)  # type: ignore[return-value]


def pairwise_win_matrix(
    logit_fn,
    encodings: Encodings,
    count: int,
    batch_size: int = 256,
) -> np.ndarray:
    """Evaluate all ordered pairs with ``logit_fn`` into a win matrix.

    This is the reference O(N²)-encoder path: every ordered pair re-embeds
    both sides.  Production ranking goes through the encode-once
    :class:`~repro.comparator.scoring.RankingEngine`; this function is kept
    as the ground truth the engine's bitwise-equivalence suite compares
    against (and for comparators that do not expose split stages).
    """
    rows, cols = np.meshgrid(np.arange(count), np.arange(count), indexing="ij")
    pairs_a, pairs_b = rows.reshape(-1), cols.reshape(-1)
    keep = pairs_a != pairs_b
    pairs_a, pairs_b = pairs_a[keep], pairs_b[keep]
    wins = np.zeros((count, count), dtype=np.float32)
    with no_grad():
        for start in range(0, len(pairs_a), batch_size):
            ia = pairs_a[start : start + batch_size]
            ib = pairs_b[start : start + batch_size]
            logits = logit_fn(
                _index_encodings(encodings, ia), _index_encodings(encodings, ib)
            )
            probability = sigmoid(logits).numpy()
            wins[ia, ib] = (probability >= 0.5).astype(np.float32)
    return wins
