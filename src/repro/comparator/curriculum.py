"""Data-level curriculum schedule for T-AHC pre-training (Algorithm 1).

Training starts from the L *shared* samples (easy knowledge: the same
arch-hypers ranked on every task, directly exposing task similarity) and
gradually mixes in the per-task *random* samples (hard knowledge: disjoint
arch-hypers across tasks).  ``Δ`` — the number of random samples included —
grows over epochs.
"""

from __future__ import annotations


def curriculum_schedule(total_random: int, epochs: int) -> list[int]:
    """Per-epoch Δ values, growing linearly from 0 to ``total_random``.

    The first epoch always trains on shared samples only (Δ = 0); the last
    third of training sees the complete sample set.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if total_random < 0:
        raise ValueError("total_random must be >= 0")
    if epochs == 1:
        return [total_random]
    ramp_epochs = max(1, (2 * epochs) // 3)
    schedule = []
    for epoch in range(epochs):
        fraction = min(1.0, epoch / ramp_epochs)
        schedule.append(int(round(fraction * total_random)))
    return schedule
