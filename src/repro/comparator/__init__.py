"""Comparators: GIN encoder, AHC (AutoCTS+), T-AHC (AutoCTS++), pre-training."""

from .ahc import AHC, Encodings, pairwise_win_matrix
from .curriculum import curriculum_schedule
from .gin import EncoderStats, GINEncoder, GINLayer
from .pairing import (
    ComparisonPair,
    ScoredArchHyper,
    all_ordered_pairs,
    comparable_pair_indices,
    diverged_mask,
    dynamic_pairs,
    has_comparable_pair,
    make_label,
    ordered_pair_indices,
    pair_index_arrays,
    pair_labels,
)
from .scoring import RankingEngine, RankingStats, sanitize_win_matrix
from .pretrain import (
    PretrainConfig,
    PretrainHistory,
    TaskSampleSet,
    collect_task_samples,
    evaluate_comparator,
    pretrain_tahc,
)
from .tahc import TAHC

__all__ = [
    "AHC",
    "Encodings",
    "pairwise_win_matrix",
    "curriculum_schedule",
    "EncoderStats",
    "GINEncoder",
    "GINLayer",
    "RankingEngine",
    "RankingStats",
    "sanitize_win_matrix",
    "ComparisonPair",
    "ScoredArchHyper",
    "all_ordered_pairs",
    "comparable_pair_indices",
    "diverged_mask",
    "dynamic_pairs",
    "has_comparable_pair",
    "make_label",
    "ordered_pair_indices",
    "pair_index_arrays",
    "pair_labels",
    "PretrainConfig",
    "PretrainHistory",
    "TaskSampleSet",
    "collect_task_samples",
    "evaluate_comparator",
    "pretrain_tahc",
    "TAHC",
]
