"""Encode-once comparator inference: the :class:`RankingEngine`.

The comparator is the inner loop of both searches — AutoCTS+ runs an AHC
inside every evolutionary generation, AutoCTS++ a T-AHC — yet the naive
inference path re-runs the GIN encoder on *both sides of every ordered
pair*: ranking N candidates costs 2·N·(N−1) encoder forwards where N
suffice.  The engine splits inference into the two stages the models expose
(:meth:`~repro.comparator.ahc.AHC.embed` /
:meth:`~repro.comparator.ahc.AHC.score_pairs`) and owns the hot path:

* each unique candidate is embedded **exactly once**, memoized by
  ``ArchHyper.key()`` so population survivors are never re-encoded across
  evolutionary generations,
* the refined task embedding E' (T-AHC only) is computed **once per engine**
  instead of once per ``compare`` call inside the evolution loop,
* ordered-pair logits are assembled in batched head-only forwards with the
  exact chunking of the reference path, keeping win matrices
  bitwise-identical to :func:`~repro.comparator.ahc.pairwise_win_matrix`,
* the non-finite win-matrix guard that protects Round-Robin selection is
  centralized in :func:`sanitize_win_matrix`.

The engine is callable with a candidate list, so it drops into every
``CompareFn`` slot of :mod:`repro.search` unchanged.

Cache invalidation rules: the embedding cache is keyed by candidate identity
only, so it is sound for as long as the comparator's *weights* are frozen —
the inference-time regime of both searches.  Create a fresh engine (or call
:meth:`RankingEngine.clear_cache`) after any weight update; mutated or
crossed-over offspring need no special handling because they hash to new
``ArchHyper.key()`` values.  See ``docs/comparator.md``.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, no_grad, sigmoid
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import span
from ..space.archhyper import ArchHyper
from ..space.encoding import encode_batch
from ..space.hyperparams import HyperSpace
from .ahc import Encodings, _index_encodings
from .pairing import ordered_pair_indices


def sanitize_win_matrix(wins: np.ndarray) -> np.ndarray:
    """Replace non-finite win entries with losses for the row candidate.

    A non-finite win probability (poisoned comparator weights, an overflowed
    logit, a custom ``CompareFn`` that divides by zero) must not leak into
    Round-Robin ranking, where NaN comparisons would make selection
    nondeterministic; treating the entry as a loss for the row candidate is
    the deterministic worst case.  Finite matrices pass through untouched
    (bitwise, no copy).
    """
    if np.isfinite(wins).all():
        return wins
    return np.where(np.isfinite(wins), wins, 0.0)


class RankingStats:
    """Cache and batching accounting of one :class:`RankingEngine`.

    Counts live in a :class:`~repro.obs.metrics.MetricsRegistry` under
    ``rank.*`` names, parented to the ambient registry, so every engine's
    accounting also lands in the consolidated process snapshot.  The
    attribute API (``stats.embed_hits``, ``+= 1`` updates) and the
    ``report()`` string are unchanged views over the registry.
    """

    _COUNTERS = ("embed_hits", "embed_misses", "pair_scores", "win_matrices")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry or MetricsRegistry(parent=get_registry())
        for name in self._COUNTERS:
            self.registry.counter(f"rank.{name}")

    def report(self) -> str:
        total = self.embed_hits + self.embed_misses
        rate = self.embed_hits / total if total else 0.0
        return (
            f"ranking: {self.win_matrices} win matrices, "
            f"{self.pair_scores} pair scores, "
            f"{self.embed_misses} encoder forwards "
            f"({self.embed_hits} cache hits, {rate:.0%} hit rate)"
        )


def _rank_counter_property(name: str) -> property:
    metric = f"rank.{name}"

    def getter(self: RankingStats) -> int:
        return int(self.registry.counter(metric).value)

    def setter(self: RankingStats, value: int) -> None:
        self.registry.counter(metric).inc(value - getter(self))

    return property(getter, setter)


for _name in RankingStats._COUNTERS:
    setattr(RankingStats, _name, _rank_counter_property(_name))
del _name


class RankingEngine:
    """Cached embed-once/score-many inference over a pairwise comparator.

    Args:
        model: an :class:`~repro.comparator.ahc.AHC` or
            :class:`~repro.comparator.tahc.TAHC` (anything exposing
            ``embed`` and ``score_pairs``).
        preliminary: the task's preliminary embedding, required iff ``model``
            is task-conditioned (exposes ``encode_task``).  The refined E'
            is computed once, on first use, and cached.
        space: hyperparameter space for candidate encoding.
        batch_size: pair-chunk size; matches the reference path's chunking so
            win matrices stay bitwise-identical.
    """

    def __init__(
        self,
        model,
        preliminary: np.ndarray | None = None,
        space: HyperSpace | None = None,
        batch_size: int = 256,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        task_conditioned = hasattr(model, "encode_task")
        if task_conditioned and preliminary is None:
            raise ValueError(
                "task-conditioned comparator needs a preliminary task embedding"
            )
        if not task_conditioned and preliminary is not None:
            raise ValueError(
                "comparator is not task-conditioned but a preliminary "
                "embedding was given"
            )
        self.model = model
        self.space = space
        self.batch_size = batch_size
        self.stats = RankingStats()
        self._preliminary = preliminary
        self._task_embedding: np.ndarray | None = None
        self._embedding_cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Cached stages
    # ------------------------------------------------------------------
    def task_embedding(self) -> Tensor | None:
        """The refined task embedding E', computed once and cached."""
        if self._preliminary is None:
            return None
        if self._task_embedding is None:
            was_training = self.model.training
            self.model.eval()
            with no_grad():
                self._task_embedding = (
                    self.model.encode_task(self._preliminary).numpy().copy()
                )
            self.model.train(was_training)
        return Tensor(self._task_embedding)

    def embeddings(self, arch_hypers: list[ArchHyper]) -> np.ndarray:
        """Per-candidate GIN embeddings (N, D); each unique candidate is
        encoded at most once in the engine's lifetime."""
        keys = [ah.key() for ah in arch_hypers]
        missing: dict[str, ArchHyper] = {}
        for key, ah in zip(keys, arch_hypers):
            if key not in self._embedding_cache and key not in missing:
                missing[key] = ah
        self.stats.embed_misses += len(missing)
        self.stats.embed_hits += len(arch_hypers) - len(missing)
        if missing:
            encodings = encode_batch(list(missing.values()), self.space)
            fresh = self._embed_batched(encodings)
            for i, key in enumerate(missing):
                self._embedding_cache[key] = fresh[i]
        return np.stack([self._embedding_cache[key] for key in keys])

    def _embed_batched(self, encodings: Encodings) -> np.ndarray:
        count = encodings[0].shape[0]
        was_training = self.model.training
        self.model.eval()
        chunks = []
        with no_grad():
            for start in range(0, count, self.batch_size):
                index = np.arange(start, min(start + self.batch_size, count))
                chunks.append(
                    self.model.embed(_index_encodings(encodings, index)).numpy()
                )
        self.model.train(was_training)
        return np.concatenate(chunks, axis=0)

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def win_matrix(
        self, arch_hypers: list[ArchHyper], sanitize: bool = True
    ) -> np.ndarray:
        """Full ordered-pair win matrix W with ``W[i, j] = 1`` iff i beats j.

        N encoder forwards (fewer on cache hits) plus 2·N·(N−1) head-only
        pair scores, chunked exactly like the reference
        :func:`~repro.comparator.ahc.pairwise_win_matrix` so the result is
        bitwise-identical to re-encoding every pair.
        """
        count = len(arch_hypers)
        with span("win-matrix", candidates=count) as handle:
            before = self.stats.embed_misses
            embeddings = (
                self.embeddings(arch_hypers) if count else np.zeros((0, 0))
            )
            task = self.task_embedding()
            pairs_a, pairs_b = ordered_pair_indices(count)
            wins = np.zeros((count, count), dtype=np.float32)
            was_training = self.model.training
            self.model.eval()
            with no_grad():
                for start in range(0, len(pairs_a), self.batch_size):
                    ia = pairs_a[start : start + self.batch_size]
                    ib = pairs_b[start : start + self.batch_size]
                    emb_a, emb_b = Tensor(embeddings[ia]), Tensor(embeddings[ib])
                    if task is None:
                        logits = self.model.score_pairs(emb_a, emb_b)
                    else:
                        logits = self.model.score_pairs(task, emb_a, emb_b)
                    probability = sigmoid(logits).numpy()
                    wins[ia, ib] = (probability >= 0.5).astype(np.float32)
            self.model.train(was_training)
            self.stats.pair_scores += len(pairs_a)
            self.stats.win_matrices += 1
            handle.set(
                pairs=len(pairs_a), encoder_forwards=self.stats.embed_misses - before
            )
        return sanitize_win_matrix(wins) if sanitize else wins

    def __call__(self, arch_hypers: list[ArchHyper]) -> np.ndarray:
        """Engines are ``CompareFn``s: candidate list in, win matrix out."""
        return self.win_matrix(arch_hypers)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop all memoized embeddings (required after any weight update)."""
        self._embedding_cache.clear()
        self._task_embedding = None

    @property
    def cached_candidates(self) -> int:
        return len(self._embedding_cache)
