"""MTGNN (Wu et al., KDD 2020), compact reproduction.

Signature mechanisms kept: a *self-adaptive* graph learned from node
embeddings, **mix-hop graph propagation** (information of several propagation
depths combined with a learned retention of the input), and **dilated
inception** temporal convolution (parallel causal convolutions with different
kernel sizes, concatenated).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat
from ..nn import init
from ..nn.conv import CausalConv2d, PointwiseConv2d
from ..nn.module import Module, ModuleList, Parameter
from ..nn.norm import ChannelNorm2d
from ..operators.dgcn import graph_propagate
from ..utils.seeding import derive_rng
from .base import BaselineForecaster, adaptive_adjacency_from_embeddings, head_reshape


class MixHopPropagation(Module):
    """MTGNN's mix-hop layer: h_k = beta * x + (1 - beta) * A h_{k-1}."""

    def __init__(self, channels: int, depth: int, beta: float, rng) -> None:
        super().__init__()
        self.depth = depth
        self.beta = beta
        self.mix = PointwiseConv2d(channels * (depth + 1), channels, rng=rng)

    def forward(self, x: Tensor, adjacency: Tensor) -> Tensor:
        hops = [x]
        hidden = x
        for _ in range(self.depth):
            hidden = x * self.beta + graph_propagate(hidden, adjacency) * (1.0 - self.beta)
            hops.append(hidden)
        return self.mix(concat(hops, axis=1))


class DilatedInception(Module):
    """Parallel dilated causal convolutions with kernel sizes 2 and 3."""

    def __init__(self, channels: int, dilation: int, rng) -> None:
        super().__init__()
        half = channels // 2
        self.conv_k2 = CausalConv2d(channels, half, kernel_size=2, dilation=dilation, rng=rng)
        self.conv_k3 = CausalConv2d(channels, channels - half, kernel_size=3, dilation=dilation, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return concat([self.conv_k2(x), self.conv_k3(x)], axis=1)


class MTGNN(BaselineForecaster):
    """Compact MTGNN: [dilated inception -> gate -> mix-hop GCN] x L."""

    name = "MTGNN"

    def __init__(
        self,
        n_nodes: int,
        n_features: int,
        horizon: int,
        hidden_dim: int = 16,
        layers: int = 2,
        gcn_depth: int = 2,
        beta: float = 0.05,
        node_embed_dim: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(n_nodes, n_features, horizon)
        rng = derive_rng(seed, "mtgnn")
        self.input_proj = PointwiseConv2d(n_features, hidden_dim, rng=rng)
        self.e1 = Parameter(init.normal(rng, (n_nodes, node_embed_dim), std=0.5))
        self.e2 = Parameter(init.normal(rng, (node_embed_dim, n_nodes), std=0.5))
        self.temporal = ModuleList(
            DilatedInception(hidden_dim, dilation=2**i, rng=rng) for i in range(layers)
        )
        self.gates = ModuleList(
            DilatedInception(hidden_dim, dilation=2**i, rng=rng) for i in range(layers)
        )
        self.spatial = ModuleList(
            MixHopPropagation(hidden_dim, gcn_depth, beta, rng) for _ in range(layers)
        )
        self.norms = ModuleList(ChannelNorm2d(hidden_dim) for _ in range(layers))
        self.out_head = PointwiseConv2d(hidden_dim, horizon * n_features, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._check_input(x)
        latent = self.input_proj(x.transpose(0, 3, 2, 1))  # (B, H, N, P)
        adjacency = adaptive_adjacency_from_embeddings(self.e1, self.e2)
        for temporal, gate, spatial, norm in zip(
            self.temporal, self.gates, self.spatial, self.norms
        ):
            filtered = temporal(latent).tanh() * gate(latent).sigmoid()
            latent = norm(latent + spatial(filtered, adjacency))
        summary = latent[:, :, :, -1:].relu()
        return head_reshape(self.out_head(summary), self.horizon, self.n_features)
