"""Autoformer (Wu et al., NeurIPS 2021), compact reproduction.

Signature mechanisms kept: **series decomposition** into trend and seasonal
parts via moving average, and **auto-correlation** replacing dot-product
attention — period-based dependencies are discovered by scoring time lags
with series autocorrelation and aggregating the top-k *rolled* series with
softmax weights.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, no_grad, softmax, stack
from ..nn.linear import Linear
from ..nn.module import Module, ModuleList
from ..nn.norm import LayerNorm
from ..utils.seeding import derive_rng
from .base import BaselineForecaster


def moving_average_trend(x: Tensor, kernel: int) -> Tensor:
    """Moving average along axis 1 of (B, T, D), edge-padded — the trend."""
    from ..autodiff import pad as pad_op

    if kernel <= 1:
        return x
    left = (kernel - 1) // 2
    right = kernel - 1 - left
    padded = pad_op(x, ((0, 0), (left, right), (0, 0)))
    terms = [padded[:, k : k + x.shape[1], :] for k in range(kernel)]
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return total / float(kernel)


def series_decomposition(x: Tensor, kernel: int = 5) -> tuple[Tensor, Tensor]:
    """Split into (seasonal, trend)."""
    trend = moving_average_trend(x, kernel)
    return x - trend, trend


class AutoCorrelationBlock(Module):
    """Aggregate top-k lag-rolled values weighted by autocorrelation scores."""

    def __init__(self, dim: int, top_k: int, rng) -> None:
        super().__init__()
        self.top_k = top_k
        self.value_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, steps, dim = x.shape
        k = min(self.top_k, max(steps - 1, 1))
        # Score lags on detached data (lag selection is discrete anyway).
        with no_grad():
            data = x.numpy()
            centered = data - data.mean(axis=1, keepdims=True)
            scores = np.empty(steps - 1, dtype=np.float64)
            for lag in range(1, steps):
                rolled = np.roll(centered, lag, axis=1)
                scores[lag - 1] = float((centered * rolled).mean())
        top_lags = np.argsort(-scores)[:k] + 1
        weights = softmax(Tensor(scores[top_lags - 1].astype(np.float32)), axis=0)
        values = self.value_proj(x)
        rolled_values = []
        index = np.arange(steps)
        for lag in top_lags:
            rolled_values.append(values[:, (index - lag) % steps, :])
        stacked = stack(rolled_values, axis=0)  # (k, B, T, D)
        weighted = stacked * weights.reshape(-1, 1, 1, 1)
        return self.out_proj(weighted.sum(axis=0))


class DecompositionLayer(Module):
    """Autoformer encoder layer: auto-correlation + progressive decomposition."""

    def __init__(self, dim: int, top_k: int, kernel: int, rng) -> None:
        super().__init__()
        self.kernel = kernel
        self.correlation = AutoCorrelationBlock(dim, top_k, rng)
        self.norm = LayerNorm(dim)
        self.ff1 = Linear(dim, 2 * dim, rng=rng)
        self.ff2 = Linear(2 * dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        seasonal, _ = series_decomposition(x + self.correlation(x), self.kernel)
        ff = self.ff2(self.ff1(self.norm(seasonal)).relu())
        seasonal2, _ = series_decomposition(seasonal + ff, self.kernel)
        return seasonal2


class Autoformer(BaselineForecaster):
    """Compact Autoformer: decomposition + auto-correlation encoder."""

    name = "Autoformer"

    def __init__(
        self,
        n_nodes: int,
        n_features: int,
        horizon: int,
        hidden_dim: int = 16,
        layers: int = 2,
        top_k_lags: int = 3,
        decomposition_kernel: int = 5,
        seed: int = 0,
    ) -> None:
        super().__init__(n_nodes, n_features, horizon)
        rng = derive_rng(seed, "autoformer")
        self.kernel = decomposition_kernel
        self.input_proj = Linear(n_features, hidden_dim, rng=rng)
        self.layers = ModuleList(
            DecompositionLayer(hidden_dim, top_k_lags, decomposition_kernel, rng)
            for _ in range(layers)
        )
        self.seasonal_head = Linear(hidden_dim, horizon * n_features, rng=rng)
        self.trend_head = Linear(n_features, horizon * n_features, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._check_input(x)
        batch, steps, n_nodes, features = x.shape
        # Treat each series independently: (B * N, P, F).
        series = x.transpose(0, 2, 1, 3).reshape(batch * n_nodes, steps, features)
        seasonal_init, trend_init = series_decomposition(series, self.kernel)
        latent = self.input_proj(seasonal_init)
        for layer in self.layers:
            latent = layer(latent)
        seasonal_out = self.seasonal_head(latent[:, -1, :])
        trend_out = self.trend_head(trend_init[:, -1, :])
        projected = seasonal_out + trend_out  # (B * N, horizon * F)
        return (
            projected.reshape(batch, n_nodes, self.horizon, self.n_features)
            .transpose(0, 2, 1, 3)
        )
