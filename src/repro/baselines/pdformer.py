"""PDFormer (Jiang et al., AAAI 2023), compact reproduction.

Signature mechanisms kept: a transformer backbone with **separate spatial
and temporal self-attention heads**, where spatial attention is **masked by
the road-network graph** (geographic neighbourhood masking — the structural
part of PDFormer's propagation-delay-aware attention).  When no predefined
adjacency exists the mask degenerates to the identity-matrix behaviour the
paper uses for Electricity.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..nn.attention import MultiHeadAttention
from ..nn.linear import Linear
from ..nn.module import Module, ModuleList
from ..nn.norm import LayerNorm
from ..utils.seeding import derive_rng
from .base import BaselineForecaster


class STAttentionBlock(Module):
    """One PDFormer block: temporal attention, masked spatial attention, FFN."""

    def __init__(self, dim: int, num_heads: int, rng) -> None:
        super().__init__()
        self.temporal = MultiHeadAttention(dim, num_heads=num_heads, rng=rng)
        self.spatial = MultiHeadAttention(dim, num_heads=num_heads, rng=rng)
        self.norm_t = LayerNorm(dim)
        self.norm_s = LayerNorm(dim)
        self.norm_f = LayerNorm(dim)
        self.ff1 = Linear(dim, 2 * dim, rng=rng)
        self.ff2 = Linear(2 * dim, dim, rng=rng)

    def forward(self, latent: Tensor, spatial_mask: np.ndarray | None) -> Tensor:
        batch, steps, n_nodes, dim = latent.shape
        # Temporal attention per node.
        seq_t = latent.transpose(0, 2, 1, 3).reshape(batch * n_nodes, steps, dim)
        seq_t = seq_t + self.temporal(self.norm_t(seq_t))
        latent = seq_t.reshape(batch, n_nodes, steps, dim).transpose(0, 2, 1, 3)
        # Spatial attention per time step, masked by the graph.
        seq_s = latent.reshape(batch * steps, n_nodes, dim)
        seq_s = seq_s + self.spatial(self.norm_s(seq_s), mask=spatial_mask)
        latent = seq_s.reshape(batch, steps, n_nodes, dim)
        return latent + self.ff2(self.ff1(self.norm_f(latent)).relu())


class PDFormer(BaselineForecaster):
    """Compact PDFormer with graph-masked spatial attention."""

    name = "PDFormer"

    def __init__(
        self,
        n_nodes: int,
        n_features: int,
        horizon: int,
        adjacency: np.ndarray | None = None,
        hidden_dim: int = 16,
        layers: int = 2,
        num_heads: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(n_nodes, n_features, horizon)
        rng = derive_rng(seed, "pdformer")
        if adjacency is None:
            # The Electricity fallback: identity matrix as the "graph".
            adjacency = np.eye(n_nodes, dtype=np.float32)
        self.spatial_mask = (adjacency > 0).astype(bool)
        self.input_proj = Linear(n_features, hidden_dim, rng=rng)
        self.blocks = ModuleList(
            STAttentionBlock(hidden_dim, num_heads, rng) for _ in range(layers)
        )
        self.head = Linear(hidden_dim, horizon * n_features, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._check_input(x)
        batch, steps, n_nodes, _ = x.shape
        latent = self.input_proj(x)  # (B, P, N, D)
        for block in self.blocks:
            latent = block(latent, self.spatial_mask)
        summary = latent[:, -1]  # (B, N, D): last-step causal summary
        projected = self.head(summary)
        return (
            projected.reshape(batch, n_nodes, self.horizon, self.n_features)
            .transpose(0, 2, 1, 3)
        )
