"""Baseline forecasting models: five manual designs + three frozen
automated-transfer models (paper Section 4.1.3)."""

from .agcrn import AGCRN
from .autoformer import Autoformer, series_decomposition
from .base import BaselineForecaster
from .fedformer import FEDformer
from .fixed_archs import TRANSFER_BASELINES, fixed_arch_hyper
from .mtgnn import MTGNN
from .pdformer import PDFormer
from .registry import ALL_BASELINES, MANUAL_BASELINES, build_baseline

__all__ = [
    "AGCRN",
    "Autoformer",
    "series_decomposition",
    "BaselineForecaster",
    "FEDformer",
    "TRANSFER_BASELINES",
    "fixed_arch_hyper",
    "MTGNN",
    "PDFormer",
    "ALL_BASELINES",
    "MANUAL_BASELINES",
    "build_baseline",
]
