"""AGCRN (Bai et al., NeurIPS 2020), compact reproduction.

Signature mechanisms kept: an **adaptive graph** learned from node
embeddings, **node-adaptive parameter learning** (per-node weights generated
from the node embeddings), and a **GRU** whose gates are graph convolutions
over ``[x_t, h_{t-1}]``.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, matmul, relu, softmax
from ..nn import init
from ..nn.linear import Linear
from ..nn.module import Module, Parameter
from ..utils.seeding import derive_rng
from .base import BaselineForecaster


class AdaptiveGraphConv(Module):
    """1-hop GCN over the learned adjacency with node-adaptive parameters.

    Weights are generated from the node embeddings ``E``:
    ``W = E @ W_pool`` gives each node its own transform (NAPL), applied
    after propagating features over ``softmax(relu(E E^T))``.
    """

    def __init__(self, in_dim: int, out_dim: int, embed_dim: int, n_nodes: int, rng) -> None:
        super().__init__()
        self.weights_pool = Parameter(
            init.normal(rng, (embed_dim, in_dim, out_dim), std=0.1)
        )
        self.bias_pool = Parameter(init.normal(rng, (embed_dim, out_dim), std=0.1))

    def forward(self, x: Tensor, node_embeddings: Tensor) -> Tensor:
        """x: (B, N, D_in) -> (B, N, D_out)."""
        adjacency = softmax(relu(matmul(node_embeddings, node_embeddings.transpose())), axis=-1)
        propagated = matmul(adjacency, x)  # (B, N, D_in) via broadcast
        # Node-adaptive weights: (N, D_in, D_out).
        embed_dim = node_embeddings.shape[1]
        weights = matmul(
            node_embeddings, self.weights_pool.reshape(embed_dim, -1)
        ).reshape(node_embeddings.shape[0], x.shape[-1], -1)
        bias = matmul(node_embeddings, self.bias_pool)  # (N, D_out)
        out = matmul(propagated.transpose(1, 0, 2), weights).transpose(1, 0, 2)
        return out + bias


class AGCRNCell(Module):
    """GRU cell whose gates are adaptive graph convolutions."""

    def __init__(self, in_dim: int, hidden_dim: int, embed_dim: int, n_nodes: int, rng) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.gate_conv = AdaptiveGraphConv(
            in_dim + hidden_dim, 2 * hidden_dim, embed_dim, n_nodes, rng
        )
        self.update_conv = AdaptiveGraphConv(
            in_dim + hidden_dim, hidden_dim, embed_dim, n_nodes, rng
        )

    def forward(self, x: Tensor, hidden: Tensor, node_embeddings: Tensor) -> Tensor:
        combined = concat([x, hidden], axis=-1)
        gates = self.gate_conv(combined, node_embeddings).sigmoid()
        reset = gates[:, :, : self.hidden_dim]
        update = gates[:, :, self.hidden_dim :]
        candidate_in = concat([x, reset * hidden], axis=-1)
        candidate = self.update_conv(candidate_in, node_embeddings).tanh()
        return update * hidden + (1.0 - update) * candidate


class AGCRN(BaselineForecaster):
    """Compact AGCRN: adaptive-graph GRU encoder + linear forecasting head."""

    name = "AGCRN"

    def __init__(
        self,
        n_nodes: int,
        n_features: int,
        horizon: int,
        hidden_dim: int = 16,
        embed_dim: int = 6,
        seed: int = 0,
    ) -> None:
        super().__init__(n_nodes, n_features, horizon)
        rng = derive_rng(seed, "agcrn")
        self.hidden_dim = hidden_dim
        self.node_embeddings = Parameter(init.normal(rng, (n_nodes, embed_dim), std=0.5))
        self.cell = AGCRNCell(n_features, hidden_dim, embed_dim, n_nodes, rng)
        self.head = Linear(hidden_dim, horizon * n_features, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._check_input(x)
        batch, steps, n_nodes, _ = x.shape
        hidden = Tensor(np.zeros((batch, n_nodes, self.hidden_dim), np.float32))
        for t in range(steps):
            hidden = self.cell(x[:, t], hidden, self.node_embeddings)
        projected = self.head(hidden)  # (B, N, horizon * F)
        return (
            projected.reshape(batch, n_nodes, self.horizon, self.n_features)
            .transpose(0, 2, 1, 3)
        )
