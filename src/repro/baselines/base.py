"""Shared interface for manually designed baseline forecasters.

Every baseline consumes history ``(B, P, N, F)`` and emits forecasts
``(B, horizon, N, F)`` — the same contract as
:class:`~repro.core.model.CTSForecaster` — so the experiment harness treats
searched and manual models identically.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, as_tensor
from ..nn.module import Module


class BaselineForecaster(Module):
    """Base class fixing the I/O contract of all baselines."""

    name: str = "baseline"

    def __init__(self, n_nodes: int, n_features: int, horizon: int) -> None:
        super().__init__()
        self.n_nodes = n_nodes
        self.n_features = n_features
        self.horizon = horizon

    def _check_input(self, x) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 4 or x.shape[2] != self.n_nodes or x.shape[3] != self.n_features:
            raise ValueError(
                f"{self.name} expected (B, P, {self.n_nodes}, {self.n_features}), "
                f"got {x.shape}"
            )
        return x


def head_reshape(projected: Tensor, horizon: int, n_features: int) -> Tensor:
    """Reshape a (B, horizon * F, N, 1) head output to (B, horizon, N, F)."""
    batch, _, n_nodes, _ = projected.shape
    return (
        projected.reshape(batch, horizon, n_features, n_nodes)
        .transpose(0, 1, 3, 2)
    )


def adaptive_adjacency_from_embeddings(e1: Tensor, e2: Tensor) -> Tensor:
    """softmax(relu(E1 @ E2)) — the self-adaptive graph shared by baselines."""
    from ..autodiff import matmul, relu, softmax

    return softmax(relu(matmul(e1, e2)), axis=-1)
