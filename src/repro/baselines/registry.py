"""Builder registry for every baseline the evaluation compares against."""

from __future__ import annotations

from ..core.model import build_forecaster
from ..nn.module import Module
from ..space.hyperparams import HyperSpace
from ..tasks.task import Task
from .agcrn import AGCRN
from .autoformer import Autoformer
from .fedformer import FEDformer
from .fixed_archs import TRANSFER_BASELINES, fixed_arch_hyper
from .mtgnn import MTGNN
from .pdformer import PDFormer

MANUAL_BASELINES = ("MTGNN", "AGCRN", "PDFormer", "Autoformer", "FEDformer")
ALL_BASELINES = TRANSFER_BASELINES + MANUAL_BASELINES


def build_baseline(
    name: str,
    task: Task,
    hidden_dim: int = 16,
    hyper_space: HyperSpace | None = None,
    seed: int = 0,
) -> Module:
    """Construct baseline ``name`` configured for ``task``.

    Manual baselines get their own compact implementations; automated
    transfer baselines reuse :class:`~repro.core.model.CTSForecaster` with
    the frozen arch-hyper each framework found on its source task.
    """
    data = task.data
    common = dict(
        n_nodes=data.n_series,
        n_features=data.n_features,
        horizon=task.horizon,
        seed=seed,
    )
    if name == "MTGNN":
        return MTGNN(hidden_dim=hidden_dim, **common)
    if name == "AGCRN":
        return AGCRN(hidden_dim=hidden_dim, **common)
    if name == "PDFormer":
        return PDFormer(adjacency=data.adjacency, hidden_dim=hidden_dim, **common)
    if name == "Autoformer":
        return Autoformer(hidden_dim=hidden_dim, **common)
    if name == "FEDformer":
        return FEDformer(input_steps=task.p, hidden_dim=hidden_dim, **common)
    if name in TRANSFER_BASELINES:
        arch_hyper = fixed_arch_hyper(name, hyper_space)
        return build_forecaster(arch_hyper, data, task.horizon, seed=seed)
    raise KeyError(f"unknown baseline {name!r}; known: {ALL_BASELINES}")
