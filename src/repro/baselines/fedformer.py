"""FEDformer (Zhou et al., ICML 2022), compact reproduction.

Signature mechanisms kept: the Autoformer decomposition backbone with a
**frequency-enhanced block** — the series is mapped to the frequency domain
(DFT expressed as fixed cosine/sine matmuls, so it stays differentiable), a
random subset of modes is kept, each retained mode is reweighted by learned
complex factors, and the result is mapped back.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, matmul
from ..nn import init
from ..nn.linear import Linear
from ..nn.module import Module, ModuleList, Parameter
from ..nn.norm import LayerNorm
from ..utils.seeding import derive_rng
from .autoformer import series_decomposition
from .base import BaselineForecaster


def dft_matrices(steps: int) -> tuple[np.ndarray, np.ndarray]:
    """Real/imaginary DFT basis matrices of shape (steps, steps)."""
    t = np.arange(steps)
    angles = 2.0 * np.pi * np.outer(t, t) / steps
    return np.cos(angles).astype(np.float32), -np.sin(angles).astype(np.float32)


class FrequencyEnhancedBlock(Module):
    """Keep a random subset of Fourier modes and reweight them."""

    def __init__(self, dim: int, steps: int, n_modes: int, rng) -> None:
        super().__init__()
        self.steps = steps
        cos, sin = dft_matrices(steps)
        usable = steps // 2 + 1
        n_modes = min(n_modes, usable)
        self.modes = np.sort(rng.choice(usable, size=n_modes, replace=False))
        keep = np.zeros(steps, dtype=np.float32)
        keep[self.modes] = 1.0
        # Mirror the kept modes for conjugate symmetry.
        keep[(steps - self.modes) % steps] = 1.0
        self._cos = cos * keep[None, :]
        self._sin = sin * keep[None, :]
        self.weight_real = Parameter(init.ones((1, steps, 1)))
        self.weight_imag = Parameter(init.zeros((1, steps, 1)))

    def forward(self, x: Tensor) -> Tensor:
        """x: (B, T, D) -> filtered (B, T, D)."""
        # Forward DFT with kept modes only (already masked in the bases).
        real = matmul(Tensor(self._cos), x)  # (B, T, D) via broadcast
        imag = matmul(Tensor(self._sin), x)
        # Complex reweighting: (a + bi)(w_r + w_i i).
        real_w = real * self.weight_real - imag * self.weight_imag
        imag_w = real * self.weight_imag + imag * self.weight_real
        # Inverse DFT (real part), normalized.
        inv_cos = Tensor(self._cos.T / self.steps)
        inv_sin = Tensor(-self._sin.T / self.steps)
        return matmul(inv_cos, real_w) - matmul(inv_sin, imag_w)


class FEDLayer(Module):
    """FEDformer encoder layer: frequency block + progressive decomposition."""

    def __init__(self, dim: int, steps: int, n_modes: int, kernel: int, rng) -> None:
        super().__init__()
        self.kernel = kernel
        self.frequency = FrequencyEnhancedBlock(dim, steps, n_modes, rng)
        self.norm = LayerNorm(dim)
        self.ff1 = Linear(dim, 2 * dim, rng=rng)
        self.ff2 = Linear(2 * dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        seasonal, _ = series_decomposition(x + self.frequency(x), self.kernel)
        ff = self.ff2(self.ff1(self.norm(seasonal)).relu())
        seasonal2, _ = series_decomposition(seasonal + ff, self.kernel)
        return seasonal2


class FEDformer(BaselineForecaster):
    """Compact FEDformer: Autoformer backbone, frequency-enhanced attention."""

    name = "FEDformer"

    def __init__(
        self,
        n_nodes: int,
        n_features: int,
        horizon: int,
        input_steps: int,
        hidden_dim: int = 16,
        layers: int = 2,
        n_modes: int = 4,
        decomposition_kernel: int = 5,
        seed: int = 0,
    ) -> None:
        super().__init__(n_nodes, n_features, horizon)
        rng = derive_rng(seed, "fedformer")
        self.kernel = decomposition_kernel
        self.input_steps = input_steps
        self.input_proj = Linear(n_features, hidden_dim, rng=rng)
        self.layers = ModuleList(
            FEDLayer(hidden_dim, input_steps, n_modes, decomposition_kernel, rng)
            for _ in range(layers)
        )
        self.seasonal_head = Linear(hidden_dim, horizon * n_features, rng=rng)
        self.trend_head = Linear(n_features, horizon * n_features, rng=rng)

    def forward(self, x) -> Tensor:
        x = self._check_input(x)
        batch, steps, n_nodes, features = x.shape
        if steps != self.input_steps:
            raise ValueError(
                f"FEDformer was built for P={self.input_steps}, got {steps}"
            )
        series = x.transpose(0, 2, 1, 3).reshape(batch * n_nodes, steps, features)
        seasonal_init, trend_init = series_decomposition(series, self.kernel)
        latent = self.input_proj(seasonal_init)
        for layer in self.layers:
            latent = layer(latent)
        projected = self.seasonal_head(latent[:, -1, :]) + self.trend_head(
            trend_init[:, -1, :]
        )
        return (
            projected.reshape(batch, n_nodes, self.horizon, self.n_features)
            .transpose(0, 2, 1, 3)
        )
