"""Fixed arch-hypers for the automated-transfer baselines.

The paper compares against the optimal models that AutoSTG+, AutoCTS, and
AutoCTS+ discovered *once* on a source task (METR-LA P-12/Q-12, PEMS03
P-12/Q-12, and PEMS08 P-48/Q-48 respectively) and then transfers unchanged to
every unseen task — which is exactly what makes them weaker than a zero-shot
search.  The architectures below follow the published case studies:

* **AutoSTG+** searches over DGCN and 1-D convolutions only,
* **AutoCTS** mixes GDCC/DGCN/INF-T with skip connections,
* **AutoCTS+** additionally tunes hyperparameters (larger H, dropout on).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from ..space.arch import Architecture, Edge
from ..space.archhyper import ArchHyper
from ..space.hyperparams import HyperParameters, HyperSpace

TRANSFER_BASELINES = ("AutoSTG+", "AutoCTS", "AutoCTS+")

# Operator sequences reflecting each framework's published search space.
_EDGE_PATTERNS: dict[str, tuple[str, ...]] = {
    "AutoSTG+": ("gdcc", "dgcn", "gdcc", "dgcn"),
    "AutoCTS": ("gdcc", "dgcn", "inf_t", "dgcn"),
    "AutoCTS+": ("inf_t", "dgcn", "gdcc", "inf_s"),
}
_SKIP_SECOND_EDGE = {"AutoCTS": True, "AutoCTS+": True, "AutoSTG+": False}


def _chain_architecture(num_nodes: int, ops: tuple[str, ...], with_skip: bool) -> Architecture:
    """A sequential chain 0 -> 1 -> ... -> C-1 with optional skip edges."""
    edges = [
        Edge(i, i + 1, ops[i % len(ops)]) for i in range(num_nodes - 1)
    ]
    if with_skip and num_nodes >= 3:
        edges.append(Edge(0, 2, "skip"))
    return Architecture(num_nodes=num_nodes, edges=tuple(edges))


def _mid(values: tuple[int, ...]) -> int:
    return sorted(values)[len(values) // 2]


def fixed_arch_hyper(name: str, space: HyperSpace | None = None) -> ArchHyper:
    """The frozen arch-hyper a transfer baseline carries to every task.

    Hyperparameters are drawn from ``space`` so scaled-down experiment spaces
    stay internally consistent.
    """
    if name not in TRANSFER_BASELINES:
        raise KeyError(f"unknown transfer baseline {name!r}: {TRANSFER_BASELINES}")
    space = space or HyperSpace()
    num_nodes = min(space.num_nodes)
    arch = _chain_architecture(num_nodes, _EDGE_PATTERNS[name], _SKIP_SECOND_EDGE[name])
    hyper = HyperParameters(
        num_blocks=_mid(space.num_blocks),
        num_nodes=num_nodes,
        hidden_dim=_mid(space.hidden_dims),
        output_dim=_mid(space.output_dims),
        output_mode=0,
        dropout=0,
    )
    if name == "AutoCTS+":
        # The joint-search predecessor tuned hyperparameters too.
        hyper = dc_replace(
            hyper, hidden_dim=max(space.hidden_dims), dropout=max(space.dropout)
        )
    return ArchHyper(arch=arch, hyper=hyper)
