"""Operator registry mapping search-space names to implementations.

New operators are added exactly as the paper describes (Section 3.1.1):
register the class here and include its name in the candidate set used when
sampling arch-hypers; the comparator is then retrained with samples that
contain the new operator.
"""

from __future__ import annotations

from .base import OperatorContext, STOperator
from .dgcn import DGCN
from .gdcc import GDCC
from .identity import Identity
from .informer import InformerSpatial, InformerTemporal

OPERATOR_REGISTRY: dict[str, type[STOperator]] = {
    GDCC.name: GDCC,
    InformerTemporal.name: InformerTemporal,
    DGCN.name: DGCN,
    InformerSpatial.name: InformerSpatial,
    Identity.name: Identity,
}


def build_operator(name: str, context: OperatorContext) -> STOperator:
    """Instantiate the operator registered under ``name``."""
    if name not in OPERATOR_REGISTRY:
        raise KeyError(
            f"unknown operator {name!r}; registered: {sorted(OPERATOR_REGISTRY)}"
        )
    return OPERATOR_REGISTRY[name](context)


def register_operator(cls: type[STOperator]) -> type[STOperator]:
    """Register a new operator class (usable as a decorator).

    Registration also teaches the architecture search space to accept the
    operator's name on DAG edges.
    """
    if not cls.name or cls.name == "base":
        raise ValueError("operator classes must define a unique 'name'")
    from ..space.arch import register_operator_name

    OPERATOR_REGISTRY[cls.name] = cls
    register_operator_name(cls.name)
    return cls
