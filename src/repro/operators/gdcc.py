"""Gated Dilated Causal Convolution (GDCC), the short-term T-operator.

The gating mechanism of WaveNet / Graph WaveNet:
``out = tanh(conv_f(x)) ⊙ sigmoid(conv_g(x))``
with dilated causal convolutions along the time axis, so the operator
captures short-term temporal dependencies without leaking the future.
"""

from __future__ import annotations

from ..autodiff import Tensor
from ..autodiff.fused import fused_kernels_enabled, gated_tanh_sigmoid
from ..nn.conv import CausalConv2d
from ..nn.dropout import Dropout
from .base import OperatorContext, STOperator


class GDCC(STOperator):
    """Gated dilated causal convolution over (B, H, N, T) latents."""

    name = "gdcc"

    def __init__(
        self, context: OperatorContext, kernel_size: int = 2, dilation: int = 1
    ) -> None:
        super().__init__(context)
        h = context.hidden_dim
        self.filter_conv = CausalConv2d(
            h, h, kernel_size=kernel_size, dilation=dilation, rng=context.rng
        )
        self.gate_conv = CausalConv2d(
            h, h, kernel_size=kernel_size, dilation=dilation, rng=context.rng
        )
        self.dropout = Dropout(
            context.dropout_rate, seed=int(context.rng.integers(2**31))
        )

    def forward(self, x: Tensor) -> Tensor:
        if fused_kernels_enabled():
            gated = gated_tanh_sigmoid(self.filter_conv(x), self.gate_conv(x))
            return self.dropout(gated)
        # Unfused chain: bitwise-identical; kept for anomaly-mode per-op
        # provenance and the $REPRO_REFERENCE_KERNELS benchmark baseline.
        filtered = self.filter_conv(x).tanh()
        gate = self.gate_conv(x).sigmoid()
        return self.dropout(filtered * gate)
