"""Diffusion Graph Convolution Network (DGCN), the static S-operator.

Follows DCRNN / Graph WaveNet: latent features diffuse ``K`` steps over the
predefined transition matrices plus a *self-adaptive* adjacency matrix
``softmax(relu(E1 E2^T))`` learned from node embeddings, and the concatenated
diffusion orders are mixed back to the hidden width by a 1x1 convolution.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, matmul, relu, softmax
from ..autodiff.fused import reference_kernels
from ..nn import init
from ..nn.conv import PointwiseConv2d
from ..nn.dropout import Dropout
from ..nn.module import Parameter
from .base import OperatorContext, STOperator


def graph_propagate(x: Tensor, support: Tensor) -> Tensor:
    """One diffusion step: ``out[:, :, n, :] = sum_m support[n, m] x[:, :, m, :]``."""
    if reference_kernels():
        # Pre-optimization formulation: rotate the node axis last, multiply
        # by the transposed support, rotate back.
        moved = x.transpose(0, 1, 3, 2)  # (B, H, T, N)
        propagated = matmul(moved, support.transpose())
        return propagated.transpose(0, 1, 3, 2)
    # (N, N) @ (B, H, N, T) broadcasts over the batch dims and contracts the
    # node axis in place — same contraction, no transpose round trip.
    return matmul(support, x)


class DGCN(STOperator):
    """Diffusion graph convolution with a self-adaptive adjacency matrix."""

    name = "dgcn"

    def __init__(
        self,
        context: OperatorContext,
        diffusion_steps: int = 2,
        embedding_dim: int = 8,
    ) -> None:
        super().__init__(context)
        self.diffusion_steps = diffusion_steps
        self.supports = [Tensor(s) for s in context.supports]
        rng = context.rng
        self.source_embedding = Parameter(
            init.normal(rng, (context.n_nodes, embedding_dim), std=0.5)
        )
        self.target_embedding = Parameter(
            init.normal(rng, (embedding_dim, context.n_nodes), std=0.5)
        )
        n_matrices = (len(self.supports) + 1) * diffusion_steps + 1
        self.mix = PointwiseConv2d(
            context.hidden_dim * n_matrices, context.hidden_dim, rng=rng
        )
        self.dropout = Dropout(context.dropout_rate, seed=int(rng.integers(2**31)))

    def adaptive_adjacency(self) -> Tensor:
        """The learned transition matrix ``softmax(relu(E1 E2^T))``."""
        return softmax(relu(matmul(self.source_embedding, self.target_embedding)), axis=-1)

    def forward(self, x: Tensor) -> Tensor:
        outputs = [x]
        matrices = list(self.supports) + [self.adaptive_adjacency()]
        for support in matrices:
            hidden = x
            for _ in range(self.diffusion_steps):
                hidden = graph_propagate(hidden, support)
                outputs.append(hidden)
        stacked = concat(outputs, axis=1)  # channel axis
        return self.dropout(self.mix(stacked))
