"""The identity operator, enabling skip-connections between DAG nodes."""

from __future__ import annotations

from ..autodiff import Tensor
from .base import OperatorContext, STOperator


class Identity(STOperator):
    """Pass-through operator (the paper's "identity" / skip edge)."""

    name = "skip"

    def __init__(self, context: OperatorContext) -> None:
        super().__init__(context)

    def forward(self, x: Tensor) -> Tensor:
        return x
