"""Candidate S/T-operators for ST-blocks (paper Section 3.1.1)."""

from .base import OperatorContext, STOperator
from .dgcn import DGCN, graph_propagate
from .gdcc import GDCC
from .identity import Identity
from .informer import InformerSpatial, InformerTemporal
from .registry import OPERATOR_REGISTRY, build_operator, register_operator

__all__ = [
    "OperatorContext",
    "STOperator",
    "DGCN",
    "graph_propagate",
    "GDCC",
    "Identity",
    "InformerSpatial",
    "InformerTemporal",
    "OPERATOR_REGISTRY",
    "build_operator",
    "register_operator",
]
