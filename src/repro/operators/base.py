"""Shared infrastructure for candidate S/T-operators.

All operators transform latent tensors of shape ``(batch, H, N, T)`` to the
same shape, so any DAG wiring of them type-checks.  :class:`OperatorContext`
packages everything an operator may need at construction time: the graph
supports for diffusion convolution, the hidden width, the dropout setting,
and a seeded RNG for weight initialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import init
from ..nn.module import Module


@dataclass
class OperatorContext:
    """Construction-time context shared by all operators of an ST-block."""

    hidden_dim: int
    n_nodes: int
    supports: list[np.ndarray] = field(default_factory=list)
    dropout_rate: float = 0.0
    rng: np.random.Generator = field(default_factory=lambda: init.resolve_rng(None))

    def __post_init__(self) -> None:
        if self.hidden_dim <= 0 or self.n_nodes <= 0:
            raise ValueError(
                f"invalid context: hidden_dim={self.hidden_dim}, "
                f"n_nodes={self.n_nodes}"
            )
        for support in self.supports:
            if support.shape != (self.n_nodes, self.n_nodes):
                raise ValueError(
                    f"support shape {support.shape} != ({self.n_nodes}, {self.n_nodes})"
                )


class STOperator(Module):
    """Base class for S/T-operators; ``name`` identifies the operator type."""

    name: str = "base"

    def __init__(self, context: OperatorContext) -> None:
        super().__init__()
        self.context = context
