"""Informer-style attention operators: INF-T (temporal) and INF-S (spatial).

Both wrap ProbSparse self-attention (Zhou et al., AAAI 2021) in a
pre-LayerNorm transformer block.  INF-T attends along the time axis within
each series (long-term temporal dependencies); INF-S attends across series
at each time step (dynamic spatial correlations).
"""

from __future__ import annotations

from ..autodiff import Tensor
from ..nn.attention import ProbSparseAttention
from ..nn.dropout import Dropout
from ..nn.linear import Linear
from ..nn.norm import LayerNorm
from .base import OperatorContext, STOperator


class _InformerBlock(STOperator):
    """Shared attention block; subclasses choose which axis becomes length."""

    def __init__(self, context: OperatorContext, num_heads: int = 2) -> None:
        super().__init__(context)
        h = context.hidden_dim
        heads = num_heads if h % num_heads == 0 else 1
        rng = context.rng
        self.attention = ProbSparseAttention(h, num_heads=heads, rng=rng)
        self.norm1 = LayerNorm(h)
        self.norm2 = LayerNorm(h)
        self.ff1 = Linear(h, 2 * h, rng=rng)
        self.ff2 = Linear(2 * h, h, rng=rng)
        self.dropout = Dropout(context.dropout_rate, seed=int(rng.integers(2**31)))

    def _attend(self, sequences: Tensor) -> Tensor:
        """Pre-norm attention + feed-forward over (batch', L, H) sequences."""
        attended = sequences + self.attention(self.norm1(sequences))
        ff = self.ff2(self.ff1(self.norm2(attended)).relu())
        return attended + self.dropout(ff)


class InformerTemporal(_InformerBlock):
    """INF-T: attention over the time axis, per series."""

    name = "inf_t"

    def forward(self, x: Tensor) -> Tensor:
        batch, hidden, n_nodes, time = x.shape
        sequences = x.transpose(0, 2, 3, 1).reshape(batch * n_nodes, time, hidden)
        attended = self._attend(sequences)
        return attended.reshape(batch, n_nodes, time, hidden).transpose(0, 3, 1, 2)


class InformerSpatial(_InformerBlock):
    """INF-S: attention over the series axis, per time step."""

    name = "inf_s"

    def forward(self, x: Tensor) -> Tensor:
        batch, hidden, n_nodes, time = x.shape
        sequences = x.transpose(0, 3, 2, 1).reshape(batch * time, n_nodes, hidden)
        attended = self._attend(sequences)
        return attended.reshape(batch, time, n_nodes, hidden).transpose(0, 3, 2, 1)
