"""On-disk warm-resume snapshots for multi-fidelity proxy training.

A successive-halving campaign (see ``docs/fidelity.md``) measures a
candidate at a low epoch budget, and — if it survives the rung — again at a
higher one.  Retraining from scratch at every rung would forfeit most of the
fidelity savings, so the trainer's end-of-run snapshot (weights, optimizer
moments, RNG streams, health-monitor state) is persisted here and the next
rung *continues* the same training trajectory.  The continuation is
bitwise-identical to an uninterrupted run of the higher fidelity, which is
what keeps warm resume score-inert (``warm_dir`` is excluded from eval
fingerprints).

Snapshots are content-addressed by
:func:`~repro.runtime.fingerprint.warm_lineage_fingerprint` — the evaluation
fingerprint with the fidelity axis stripped — and stored through the PR-2
:class:`~repro.runtime.checkpoint.Checkpoint` primitive, inheriting its
atomic-write, versioning, and corruption-discard behaviour.
"""

from __future__ import annotations

from pathlib import Path

from ..space.archhyper import ArchHyper
from ..tasks.proxy import ProxyConfig
from ..tasks.task import Task
from .checkpoint import Checkpoint
from .fingerprint import CACHE_KEY_VERSION, warm_lineage_fingerprint


class WarmStore:
    """Per-lineage trainer snapshots under one directory.

    One file per training lineage, named by the lineage fingerprint; a stale
    or corrupt snapshot is silently discarded (the rung then trains fresh,
    which is always sound — just slower).
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    def _checkpoint(self, lineage: str) -> Checkpoint:
        return Checkpoint(
            self.root / f"{lineage}.warm.pkl",
            kind="warm-train",
            meta={"fingerprint": lineage, "key_version": CACHE_KEY_VERSION},
        )

    def load(
        self, arch_hyper: ArchHyper, task: Task, config: ProxyConfig
    ) -> dict | None:
        """The candidate's trainer snapshot, or ``None`` when absent/stale."""
        lineage = warm_lineage_fingerprint(arch_hyper, task, config)
        return self._checkpoint(lineage).load()

    def save(
        self,
        arch_hyper: ArchHyper,
        task: Task,
        config: ProxyConfig,
        state: dict,
    ) -> None:
        """Persist a trainer snapshot for later promotion."""
        lineage = warm_lineage_fingerprint(arch_hyper, task, config)
        self._checkpoint(lineage).save(state)
