"""Fault-tolerance primitives for proxy evaluation.

Long AutoML campaigns run thousands of k-epoch proxy trainings; a single
worker crash, hang, or flaky I/O error must not destroy the run.  This module
defines the policy layer the :class:`~repro.runtime.evaluator.ProxyEvaluator`
uses to survive such faults:

* :class:`RetryPolicy` — bounded retries with exponential backoff whose
  jitter is derived *deterministically* from the evaluation fingerprint, so
  retry schedules are reproducible run-to-run (no wall-clock or PRNG state
  leaks into behaviour);
* :class:`EvalTimeoutError` — one attempt exceeded the per-evaluation
  timeout;
* :class:`EvalFailedError` — the retry budget is exhausted; carries the
  attempt count and chains the last underlying error.

Determinism contract: retries and timeouts only ever re-run the *same*
deterministic evaluation, so a fault can change wall-clock and stats counters
but never a returned score.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
EVAL_TIMEOUT_ENV = "REPRO_EVAL_TIMEOUT"


class EvalTimeoutError(TimeoutError):
    """A single evaluation attempt exceeded the configured timeout."""


class EvalFailedError(RuntimeError):
    """An evaluation failed after exhausting its retry budget.

    Attributes:
        attempts: total attempts made (first try + retries).
        last_error: the underlying exception of the final attempt (also
            chained as ``__cause__``).
    """

    def __init__(self, message: str, attempts: int, last_error: BaseException | None = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy with deterministic exponential backoff.

    Args:
        max_retries: retries *after* the first attempt (0 = fail fast).
        timeout: per-evaluation attempt timeout in seconds (``None`` = no
            timeout enforcement).
        backoff_base: delay before the first retry, in seconds.
        backoff_factor: multiplier applied per subsequent retry.
        backoff_max: upper bound on the un-jittered delay.
        jitter: fractional spread applied to each delay; the offset within
            ``[-jitter, +jitter]`` is derived from the evaluation fingerprint
            and attempt number, not from a PRNG, so it is reproducible.
    """

    max_retries: int = 2
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must lie in [0, 1)")

    def delay(self, retry_index: int, fingerprint: str | None = None) -> float:
        """Seconds to wait before retry number ``retry_index`` (0-based)."""
        base = min(
            self.backoff_base * self.backoff_factor ** max(0, retry_index),
            self.backoff_max,
        )
        if not base or not self.jitter:
            return base
        return base * (1.0 + self.jitter * _jitter_fraction(fingerprint, retry_index))


def _jitter_fraction(fingerprint: str | None, retry_index: int) -> float:
    """A deterministic value in ``[-1, 1)`` from (fingerprint, attempt)."""
    material = f"{fingerprint or 'no-fingerprint'}:{retry_index}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") / 2**63 - 1.0


def resolve_retry_policy(
    max_retries: int | None = None,
    timeout: float | None = None,
) -> RetryPolicy | None:
    """Build a policy from explicit knobs with env-var fallbacks.

    ``$REPRO_MAX_RETRIES`` / ``$REPRO_EVAL_TIMEOUT`` fill in whichever knob
    is not given explicitly; if neither source sets anything, returns
    ``None`` (fail-fast, no timeout — the historical behaviour).
    """
    if max_retries is None:
        env = os.environ.get(MAX_RETRIES_ENV, "").strip()
        max_retries = int(env) if env else None
    if timeout is None:
        env = os.environ.get(EVAL_TIMEOUT_ENV, "").strip()
        timeout = float(env) if env else None
    if max_retries is None and timeout is None:
        return None
    return RetryPolicy(max_retries=max(0, max_retries or 0), timeout=timeout)
