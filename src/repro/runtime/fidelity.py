"""Successive-halving fidelity schedules over proxy evaluations.

ROADMAP item 4: most candidates are eliminated early, yet the flat pipeline
pays the full ``k``-epoch proxy (`ProxyConfig.epochs`) for every one.  A
:class:`FidelitySchedule` describes a successive-halving ladder — score the
whole pool at a small epoch budget, keep the best ``1/eta`` fraction, promote
them to the next (``eta``-times larger) budget, repeat until the final rung
runs at full fidelity.  The :class:`FidelityScheduler` executes that ladder
through an existing :class:`~repro.runtime.evaluator.ProxyEvaluator`, so each
rung inherits the serial/pool backends, the eval cache, retry/timeout/
sentinel semantics, and checkpointed resume unchanged.

Determinism: rung composition is a pure function of the (deterministic)
scores, promotions warm-resume bitwise-identically (see
:mod:`repro.runtime.warm`), and partial-fidelity scores live under their own
fingerprints (:func:`~repro.runtime.fingerprint.proxy_fingerprint` includes
``fidelity_epochs`` only when partial) — so an interrupted campaign resumed
mid-rung from an :class:`~repro.runtime.checkpoint.EvalProgress` finishes
bitwise-identically, and no low-fidelity score can ever be confused with a
full-fidelity one.

Schedule grammar (CLI/env): ``eta:rungs:min-epochs``, e.g. ``3:3:1`` — see
``docs/fidelity.md``.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..obs.metrics import get_registry
from ..obs.trace import span
from ..space.archhyper import ArchHyper
from ..tasks.proxy import ProxyConfig
from ..tasks.task import Task
from ..utils.validation import ConfigError, require, require_int_at_least

FIDELITY_SCHEDULE_ENV = "REPRO_FIDELITY_SCHEDULE"
FIDELITY_LABEL_POLICY_ENV = "REPRO_FIDELITY_LABEL_POLICY"
FIDELITY_WARM_DIR_ENV = "REPRO_FIDELITY_WARM_DIR"

# How sub-full-fidelity scores may be used as comparator labels:
#   "survivors" (default) — only full-fidelity survivors label, exactly as a
#       single-fidelity collect would; culled candidates' low-fidelity scores
#       are tagged but excluded from pairing.
#   "tagged" — every score labels, carrying its fidelity tag; cheaper labels,
#       weaker guarantee (low-fidelity rankings are noisier).
LABEL_POLICIES = ("survivors", "tagged")


@dataclass(frozen=True)
class FidelitySchedule:
    """A successive-halving ladder: ``eta``, rung count, smallest budget.

    ``rungs=1`` degenerates to the flat full-fidelity pipeline (every
    candidate trains the full budget, nothing is culled).
    """

    eta: int = 3
    rungs: int = 3
    min_epochs: int = 1

    def __post_init__(self) -> None:
        require_int_at_least(self.eta, 2, "eta")
        require_int_at_least(self.rungs, 1, "rungs")
        require_int_at_least(self.min_epochs, 1, "min_epochs")

    def spec(self) -> str:
        """The canonical ``eta:rungs:min-epochs`` string form."""
        return f"{self.eta}:{self.rungs}:{self.min_epochs}"

    def rung_epochs(self, full_epochs: int) -> list[int]:
        """Strictly-ascending epoch budgets; the last is always full fidelity.

        Budgets grow geometrically (``min_epochs * eta**i``) and are capped
        at ``full_epochs``; duplicate rungs collapse, so a schedule too
        aggressive for a small ``full_epochs`` degrades gracefully.
        """
        require_int_at_least(full_epochs, 1, "full_epochs")
        budgets = [
            min(self.min_epochs * self.eta**i, full_epochs)
            for i in range(self.rungs - 1)
        ]
        budgets.append(full_epochs)
        ascending: list[int] = []
        for budget in budgets:
            if not ascending or budget > ascending[-1]:
                ascending.append(budget)
        return ascending

    def keep(self, n: int) -> int:
        """How many of ``n`` rung candidates are promoted (at least one)."""
        return max(1, math.ceil(n / self.eta))


def parse_fidelity_schedule(spec: str) -> FidelitySchedule:
    """Parse the ``eta:rungs:min-epochs`` grammar into a schedule.

    Raises :class:`~repro.utils.validation.ConfigError` on malformed specs,
    so CLI/env mistakes fail at the flag, not deep inside a campaign.
    """
    parts = [part.strip() for part in str(spec).strip().split(":")]
    if len(parts) != 3 or not all(parts):
        raise ConfigError(
            f"fidelity schedule must be 'eta:rungs:min-epochs', got {spec!r}"
        )
    try:
        eta, rungs, min_epochs = (int(part) for part in parts)
    except ValueError:
        raise ConfigError(
            f"fidelity schedule fields must be integers, got {spec!r}"
        ) from None
    return FidelitySchedule(eta=eta, rungs=rungs, min_epochs=min_epochs)


def resolve_fidelity_schedule(
    schedule: "FidelitySchedule | str | None" = None,
) -> FidelitySchedule | None:
    """Explicit schedule (object or spec string), else ``$REPRO_FIDELITY_SCHEDULE``,
    else ``None`` (single-rung full fidelity — the inert default)."""
    if schedule is not None:
        if isinstance(schedule, FidelitySchedule):
            return schedule
        return parse_fidelity_schedule(schedule)
    env = os.environ.get(FIDELITY_SCHEDULE_ENV, "").strip()
    return parse_fidelity_schedule(env) if env else None


def resolve_label_policy(policy: str | None = None) -> str:
    """Explicit policy, else ``$REPRO_FIDELITY_LABEL_POLICY``, else ``survivors``."""
    if policy is None:
        env = os.environ.get(FIDELITY_LABEL_POLICY_ENV, "").strip().lower()
        policy = env or "survivors"
    if policy not in LABEL_POLICIES:
        raise ConfigError(
            f"unknown fidelity label policy {policy!r}; expected one of "
            f"{LABEL_POLICIES}"
        )
    return policy


def resolve_warm_dir(warm_dir: str | None = None) -> str | None:
    """Explicit warm directory, else ``$REPRO_FIDELITY_WARM_DIR``, else ``None``."""
    if warm_dir is not None:
        return str(warm_dir)
    env = os.environ.get(FIDELITY_WARM_DIR_ENV, "").strip()
    return env or None


@dataclass(frozen=True)
class RungReport:
    """What one rung did: sizes, survivors, and the epoch budget it charged."""

    rung: int
    epochs: int
    candidates: int
    promoted: int
    culled: int
    epoch_budget: int  # incremental epochs charged (warm-resume accounting)


@dataclass
class FidelityResult:
    """Per-candidate ``(score, fidelity)`` pairs plus per-rung accounting.

    ``fidelities[i]`` is the epoch budget candidate ``i`` was last scored at
    — ``full_epochs`` for final-rung survivors, the cull rung's budget
    otherwise.  ``scores`` is position-aligned with the input pairs, like
    ``evaluate_pairs``.
    """

    scores: list[float]
    fidelities: list[int]
    full_epochs: int
    rungs: list[RungReport] = field(default_factory=list)

    @property
    def epochs_spent(self) -> int:
        """Total epoch budget charged across all rungs (warm accounting)."""
        return sum(report.epoch_budget for report in self.rungs)

    @property
    def epochs_saved(self) -> int:
        """Budget saved versus flat full-fidelity evaluation of every pair."""
        return max(0, self.full_epochs * len(self.scores) - self.epochs_spent)

    def full_fidelity_mask(self) -> list[bool]:
        """Which candidates were measured at full fidelity (label-eligible
        under the default ``survivors`` policy)."""
        return [fidelity >= self.full_epochs for fidelity in self.fidelities]


class FidelityScheduler:
    """Executes a :class:`FidelitySchedule` through a ``ProxyEvaluator``.

    Args:
        schedule: the successive-halving ladder.
        warm_dir: directory for warm-resume snapshots; ``None`` disables
            warm continuation (every rung trains from scratch — still
            correct, just slower).  Folded into the per-rung
            :class:`~repro.tasks.proxy.ProxyConfig` as the score-inert
            ``warm_dir`` field.
    """

    def __init__(
        self, schedule: FidelitySchedule, warm_dir: str | None = None
    ) -> None:
        self.schedule = schedule
        self.warm_dir = warm_dir

    def evaluate_pairs(
        self,
        evaluator,
        pairs: Sequence[tuple[ArchHyper, Task]],
        config: ProxyConfig | None = None,
        progress=None,
    ) -> FidelityResult:
        """Run the ladder over ``pairs``; order-preserving like the evaluator.

        Each rung fans through ``evaluator.evaluate_pairs`` with a
        fidelity-tagged config, so caching, checkpointed resume, retries,
        and sentinel semantics all apply per rung.  Survivors are the
        ``keep(n)`` lowest scores (stable ties by position); a candidate
        culled at rung ``r`` keeps its rung-``r`` score and fidelity tag.
        """
        config = config if config is not None else ProxyConfig()
        if self.warm_dir is not None and config.warm_dir is None:
            config = replace(config, warm_dir=str(self.warm_dir))
        budgets = self.schedule.rung_epochs(config.epochs)
        count = len(pairs)
        result = FidelityResult(
            scores=[0.0] * count,
            fidelities=[0] * count,
            full_epochs=config.epochs,
        )
        if count == 0:
            return result
        registry = get_registry()
        active = list(range(count))
        charged = [0] * count
        for rung_index, budget in enumerate(budgets):
            final = rung_index == len(budgets) - 1
            rung_config = replace(
                config,
                # The final rung runs as plain full fidelity — its config,
                # fingerprints, and cache keys are identical to a
                # never-scheduled evaluation, so full-fidelity scores are
                # shared between scheduled and flat campaigns.
                fidelity_epochs=None if budget >= config.epochs else budget,
            )
            with span(
                "fidelity-rung",
                rung=rung_index,
                epochs=budget,
                candidates=len(active),
            ) as rung_span:
                rung_started = time.perf_counter()
                rung_scores = evaluator.evaluate_pairs(
                    [pairs[i] for i in active], rung_config, progress=progress
                )
                # Per-rung wall time quantiles (a rung is one eval sweep, so
                # queue depth shows up here as p99 >> p50).
                registry.histogram("fidelity.rung_seconds").observe(
                    time.perf_counter() - rung_started
                )
                registry.histogram(f"fidelity.rung{rung_index}.epoch_seconds").observe(
                    (time.perf_counter() - rung_started) / max(1, budget)
                )
                increment = 0
                for i, score in zip(active, rung_scores):
                    result.scores[i] = float(score)
                    result.fidelities[i] = budget
                    increment += budget - charged[i]
                    charged[i] = budget
                if final:
                    promoted = list(active)
                    culled: list[int] = []
                else:
                    # Lower score is better; ties break by position, so the
                    # rung outcome is a pure function of the scores.
                    ranked = sorted(
                        active, key=lambda i: (result.scores[i], i)
                    )
                    promoted = sorted(ranked[: self.schedule.keep(len(active))])
                    survivors = set(promoted)
                    culled = [i for i in active if i not in survivors]
                rung_span.set(
                    promoted=0 if final else len(promoted), culled=len(culled)
                )
                registry.counter("fidelity.rungs").inc()
                registry.counter("fidelity.evals").inc(len(active))
                registry.counter("fidelity.epochs_spent").inc(increment)
                if not final:
                    registry.counter("fidelity.promotions").inc(len(promoted))
                    registry.counter("fidelity.culled").inc(len(culled))
            result.rungs.append(
                RungReport(
                    rung=rung_index,
                    epochs=budget,
                    candidates=len(active),
                    promoted=0 if final else len(promoted),
                    culled=len(culled),
                    epoch_budget=increment,
                )
            )
            active = promoted
        registry.counter("fidelity.epochs_saved").inc(result.epochs_saved)
        return result
