"""Stable fingerprints for proxy evaluations.

A fingerprint is the content address of one ``R'(ah)`` measurement: it
captures everything that determines the score — the arch-hyper encoding, the
task identity (dataset contents and forecasting setting), and the
:class:`~repro.tasks.proxy.ProxyConfig`.  Two evaluations with the same
fingerprint are guaranteed to produce bitwise-identical scores, which is what
makes the on-disk cache and the cross-backend determinism guarantee sound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, replace

import numpy as np

from ..space.archhyper import ArchHyper
from ..tasks.proxy import ProxyConfig
from ..tasks.task import Task

# Bump whenever the semantics of measure_arch_hyper or of this keying change;
# old cache entries then simply stop matching.
# v2: im2col conv kernels reorder the gemm reductions, shifting proxy scores
# within float tolerance — cached v1 scores no longer match the new kernels.
CACHE_KEY_VERSION = 2


def _array_digest(array: np.ndarray) -> str:
    """SHA-256 over an array's shape, dtype, and raw bytes."""
    hasher = hashlib.sha256()
    hasher.update(str(array.shape).encode())
    hasher.update(array.dtype.str.encode())
    hasher.update(np.ascontiguousarray(array).tobytes())
    return hasher.hexdigest()


def task_fingerprint_material(task: Task) -> dict:
    """The JSON-able identity of a task, including its data contents.

    Hashing the values/adjacency arrays (not just the dataset name) means
    regenerating a synthetic dataset with a different seed, or enriching it
    into a different subset, invalidates cached scores automatically.
    """
    data = task.data
    material = {
        "dataset": data.name,
        "domain": data.domain,
        "steps_per_day": data.steps_per_day,
        "values_sha256": _array_digest(data.values),
        "adjacency_sha256": _array_digest(data.adjacency),
        "p": task.p,
        "q": task.q,
        "single_step": task.single_step,
        "split_ratio": list(task.split_ratio),
        "max_train_windows": task.max_train_windows,
    }
    # The observation mask changes scaler statistics, the loss, and the
    # metrics, so it is score-relevant; the key is added only when a mask is
    # present so every pre-existing clean-task fingerprint stays unchanged.
    if data.mask is not None:
        material["mask_sha256"] = _array_digest(data.mask)
    return material


def proxy_fingerprint(
    arch_hyper: ArchHyper, task: Task, config: ProxyConfig
) -> str:
    """Content address of one proxy evaluation (hex SHA-256)."""
    proxy_material = asdict(config)
    # buffer_pool is score-inert (pooled training is bitwise-identical to
    # pool-off training, enforced by tests), so it must not split the cache.
    proxy_material.pop("buffer_pool", None)
    # warm_dir is score-inert too: a warm continuation is bitwise-identical
    # to a fresh run of the same fidelity (enforced by tests).
    proxy_material.pop("warm_dir", None)
    # The fidelity budget IS score-material — a k'-epoch score is a different
    # measurement than a k-epoch one — but the key is included only when the
    # fidelity is actually partial, so every full-fidelity fingerprint stays
    # byte-identical to its pre-fidelity value (same conditional-inclusion
    # pattern as mask_sha256 above).
    fidelity = proxy_material.pop("fidelity_epochs", None)
    if fidelity is not None and fidelity < config.epochs:
        proxy_material["fidelity_epochs"] = int(fidelity)
    material = {
        "key_version": CACHE_KEY_VERSION,
        "arch_hyper": arch_hyper.to_dict(),
        "task": task_fingerprint_material(task),
        "proxy": proxy_material,
    }
    payload = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def warm_lineage_fingerprint(
    arch_hyper: ArchHyper, task: Task, config: ProxyConfig
) -> str:
    """Fidelity-independent identity of one candidate's training lineage.

    Every fidelity rung of the same ``(ah, task, config)`` shares one
    training trajectory — the partial runs are literal prefixes of the full
    one — so warm-resume snapshots are keyed by the fingerprint with the
    fidelity axis stripped.  By construction this equals the plain
    full-fidelity :func:`proxy_fingerprint`.
    """
    return proxy_fingerprint(
        arch_hyper, task, replace(config, fidelity_epochs=None, warm_dir=None)
    )
