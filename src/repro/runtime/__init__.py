"""Runtime layer: the parallel, content-addressed proxy-evaluation engine.

The early-validation proxy R' (paper Eq. 22) dominates wall-clock in both
comparator pre-training and per-task search.  This package centralizes every
``measure_arch_hyper`` call behind a :class:`ProxyEvaluator` with

* pluggable **serial** and **process-pool** backends (bitwise-identical
  scores; worker count from ``--workers`` / ``$REPRO_WORKERS``), and
* a **content-addressed on-disk score cache** keyed by a stable fingerprint
  of (arch-hyper, task, proxy config), with atomic writes and
  corruption-safe versioned loads.

Call sites take an optional ``evaluator`` argument and fall back to the
process-wide default from :func:`get_default_evaluator`, which the CLI (and
tests) reconfigure via :func:`set_default_evaluator` /
:func:`configure_default_evaluator`.

See ``docs/runtime.md`` for the full picture.
"""

from __future__ import annotations

import os

from .cache import CACHE_DIR_ENV, CACHE_FORMAT_VERSION, EvalCache, default_cache_dir
from .evaluator import EvalStats, ProxyEvaluator, WORKERS_ENV, resolve_workers
from .fingerprint import CACHE_KEY_VERSION, proxy_fingerprint, task_fingerprint_material

EVAL_CACHE_ENV = "REPRO_EVAL_CACHE"

_default_evaluator: ProxyEvaluator | None = None


def _cache_enabled_by_env() -> bool:
    return os.environ.get(EVAL_CACHE_ENV, "1").strip().lower() not in ("0", "off", "no", "false")


def get_default_evaluator() -> ProxyEvaluator:
    """The process-wide evaluator used when call sites are not handed one."""
    global _default_evaluator
    if _default_evaluator is None:
        cache = EvalCache() if _cache_enabled_by_env() else None
        _default_evaluator = ProxyEvaluator(workers=None, cache=cache)
    return _default_evaluator


def set_default_evaluator(evaluator: ProxyEvaluator | None) -> None:
    """Install (or, with ``None``, reset) the process-wide evaluator."""
    global _default_evaluator
    _default_evaluator = evaluator


def configure_default_evaluator(
    workers: int | None = None,
    cache_enabled: bool = True,
    cache_dir=None,
) -> ProxyEvaluator:
    """Build, install, and return a default evaluator from CLI-style knobs."""
    cache = EvalCache(cache_dir) if cache_enabled else None
    evaluator = ProxyEvaluator(workers=workers, cache=cache)
    set_default_evaluator(evaluator)
    return evaluator


__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CACHE_KEY_VERSION",
    "EVAL_CACHE_ENV",
    "EvalCache",
    "EvalStats",
    "ProxyEvaluator",
    "WORKERS_ENV",
    "configure_default_evaluator",
    "default_cache_dir",
    "get_default_evaluator",
    "proxy_fingerprint",
    "resolve_workers",
    "set_default_evaluator",
    "task_fingerprint_material",
]
