"""Runtime layer: the parallel, fault-tolerant proxy-evaluation engine.

The early-validation proxy R' (paper Eq. 22) dominates wall-clock in both
comparator pre-training and per-task search.  This package centralizes every
``measure_arch_hyper`` call behind a :class:`ProxyEvaluator` with

* pluggable **serial** and **process-pool** backends (bitwise-identical
  scores; worker count from ``--workers`` / ``$REPRO_WORKERS``),
* a **content-addressed on-disk score cache** keyed by a stable fingerprint
  of (arch-hyper, task, proxy config), with atomic writes and
  corruption-safe versioned loads,
* a **fault-tolerance layer** (:mod:`~repro.runtime.faults`): bounded
  retries with deterministic backoff, per-evaluation timeouts, and graceful
  pool→serial degradation, and
* **progress checkpoints** (:mod:`~repro.runtime.checkpoint`) so interrupted
  pretraining and search campaigns resume bitwise-identically.

Call sites take an optional ``evaluator`` argument and fall back to the
process-wide default from :func:`get_default_evaluator`, which the CLI (and
tests) reconfigure via :func:`set_default_evaluator` /
:func:`configure_default_evaluator`.

See ``docs/runtime.md`` for the full picture.
"""

from __future__ import annotations

import os

from .cache import CACHE_DIR_ENV, CACHE_FORMAT_VERSION, EvalCache, default_cache_dir
from .checkpoint import (
    CHECKPOINT_DIR_ENV,
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    EvalProgress,
    ProgressVersionError,
    default_checkpoint_dir,
)
from .fidelity import (
    FIDELITY_LABEL_POLICY_ENV,
    FIDELITY_SCHEDULE_ENV,
    FIDELITY_WARM_DIR_ENV,
    FidelityResult,
    FidelitySchedule,
    FidelityScheduler,
    LABEL_POLICIES,
    RungReport,
    parse_fidelity_schedule,
    resolve_fidelity_schedule,
    resolve_label_policy,
    resolve_warm_dir,
)
from .evaluator import (
    DIVERGENCE_POLICIES,
    DIVERGENCE_POLICY_ENV,
    EvalStats,
    ProxyEvaluator,
    WORKERS_ENV,
    resolve_divergence_policy,
    resolve_workers,
)
from .faults import (
    EVAL_TIMEOUT_ENV,
    EvalFailedError,
    EvalTimeoutError,
    MAX_RETRIES_ENV,
    RetryPolicy,
    resolve_retry_policy,
)
from .fingerprint import (
    CACHE_KEY_VERSION,
    proxy_fingerprint,
    task_fingerprint_material,
    warm_lineage_fingerprint,
)
from .warm import WarmStore

EVAL_CACHE_ENV = "REPRO_EVAL_CACHE"

_default_evaluator: ProxyEvaluator | None = None


def _cache_enabled_by_env() -> bool:
    return os.environ.get(EVAL_CACHE_ENV, "1").strip().lower() not in ("0", "off", "no", "false")


def get_default_evaluator() -> ProxyEvaluator:
    """The process-wide evaluator used when call sites are not handed one."""
    global _default_evaluator
    if _default_evaluator is None:
        cache = EvalCache() if _cache_enabled_by_env() else None
        _default_evaluator = ProxyEvaluator(
            workers=None, cache=cache, retry_policy=resolve_retry_policy()
        )
    return _default_evaluator


def set_default_evaluator(evaluator: ProxyEvaluator | None) -> None:
    """Install (or, with ``None``, reset) the process-wide evaluator."""
    global _default_evaluator
    _default_evaluator = evaluator


def configure_default_evaluator(
    workers: int | None = None,
    cache_enabled: bool = True,
    cache_dir=None,
    max_retries: int | None = None,
    eval_timeout: float | None = None,
    retry_policy: RetryPolicy | None = None,
    divergence_policy: str | None = None,
) -> ProxyEvaluator:
    """Build, install, and return a default evaluator from CLI-style knobs.

    ``retry_policy`` wins when given; otherwise ``max_retries`` /
    ``eval_timeout`` (with ``$REPRO_MAX_RETRIES`` / ``$REPRO_EVAL_TIMEOUT``
    fallbacks) are resolved into one, or ``None`` for fail-fast.
    ``divergence_policy`` is ``"sentinel"`` / ``"raise"`` (``None`` reads
    ``$REPRO_DIVERGENCE_POLICY``, defaulting to ``sentinel``).
    """
    cache = EvalCache(cache_dir) if cache_enabled else None
    if retry_policy is None:
        retry_policy = resolve_retry_policy(max_retries, eval_timeout)
    evaluator = ProxyEvaluator(
        workers=workers,
        cache=cache,
        retry_policy=retry_policy,
        divergence_policy=divergence_policy,
    )
    set_default_evaluator(evaluator)
    return evaluator


__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CACHE_KEY_VERSION",
    "CHECKPOINT_DIR_ENV",
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "DIVERGENCE_POLICIES",
    "DIVERGENCE_POLICY_ENV",
    "EVAL_CACHE_ENV",
    "EVAL_TIMEOUT_ENV",
    "EvalCache",
    "EvalFailedError",
    "EvalProgress",
    "EvalStats",
    "EvalTimeoutError",
    "FIDELITY_LABEL_POLICY_ENV",
    "FIDELITY_SCHEDULE_ENV",
    "FIDELITY_WARM_DIR_ENV",
    "FidelityResult",
    "FidelitySchedule",
    "FidelityScheduler",
    "LABEL_POLICIES",
    "MAX_RETRIES_ENV",
    "ProgressVersionError",
    "ProxyEvaluator",
    "RetryPolicy",
    "RungReport",
    "WORKERS_ENV",
    "WarmStore",
    "configure_default_evaluator",
    "default_cache_dir",
    "default_checkpoint_dir",
    "get_default_evaluator",
    "parse_fidelity_schedule",
    "proxy_fingerprint",
    "resolve_divergence_policy",
    "resolve_fidelity_schedule",
    "resolve_label_policy",
    "resolve_retry_policy",
    "resolve_warm_dir",
    "resolve_workers",
    "set_default_evaluator",
    "task_fingerprint_material",
    "warm_lineage_fingerprint",
]
