"""Atomic, versioned progress checkpoints for long-running pipelines.

An interrupted comparator-pretraining or search campaign must resume
*bitwise-identically*: the samples scored so far, the comparator's epoch
state (weights, optimizer moments, RNG stream), and the search generation are
all persisted so a SIGINT or crash costs at most one unit of work.

:class:`Checkpoint` is the storage primitive shared by every loop:

* **atomic** — writes go to a temp file then ``os.replace``, so a crash can
  never leave a half-written checkpoint;
* **versioned** — every file embeds :data:`CHECKPOINT_FORMAT_VERSION`, a
  ``kind`` tag, and caller-supplied ``meta`` (seed, config knobs); any
  mismatch discards the file instead of resuming into a different run;
* **corruption-safe** — truncated or unreadable files are logged, deleted,
  and treated as "no checkpoint", never raised.

:class:`EvalProgress` specializes it for evaluation batches: a
content-addressed ``{fingerprint: score}`` map flushed as scores land, which
:meth:`ProxyEvaluator.evaluate_pairs` consults before touching a backend.
"""

from __future__ import annotations

import logging
import os
import pickle
from pathlib import Path

from .fingerprint import CACHE_KEY_VERSION

logger = logging.getLogger(__name__)


class ProgressVersionError(RuntimeError):
    """An :class:`EvalProgress` file was written under a different
    ``CACHE_KEY_VERSION``.

    Fingerprint semantics changed between the writer and the reader, so the
    stored ``{fingerprint: score}`` entries describe *different measurements*
    than the ones the resuming run would compute.  Refusing loudly (instead
    of silently mixing the two keyings) is the contract tested by the
    version-skew suite; delete the progress file or set a fresh checkpoint
    directory to proceed.
    """


# Bump when the checkpoint payload schema changes; old files are then
# discarded cleanly (and their runs restart) instead of crashing the loader.
CHECKPOINT_FORMAT_VERSION = 1

CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"

_REPO_ROOT = Path(__file__).resolve().parents[3]


def default_checkpoint_dir() -> Path:
    """``$REPRO_CHECKPOINT_DIR`` or ``benchmarks/.checkpoints``."""
    env = os.environ.get(CHECKPOINT_DIR_ENV)
    if env:
        return Path(env)
    return _REPO_ROOT / "benchmarks" / ".checkpoints"


class Checkpoint:
    """One on-disk progress file for one resumable loop.

    Args:
        path: the checkpoint file location.
        kind: a short tag naming the producing loop (``"collect"``,
            ``"pretrain"``, ``"evolution"`` …); a file of the wrong kind is
            discarded rather than resumed.
        meta: identity of the run (seed, config knobs, task names).  A
            checkpoint whose stored meta differs is stale — it belongs to a
            different configuration — and is discarded on load.
    """

    def __init__(self, path: Path | str, kind: str, meta: dict | None = None) -> None:
        self.path = Path(path)
        self.kind = kind
        self.meta = dict(meta or {})

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> dict | None:
        """The saved state, or ``None`` (discarding the file) on any mismatch."""
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,
            IndexError,
            KeyError,
            TypeError,
            ValueError,
            MemoryError,
            OSError,
        ) as exc:
            self._discard(f"corrupt ({type(exc).__name__}: {exc})")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format_version") != CHECKPOINT_FORMAT_VERSION
            or payload.get("kind") != self.kind
            or not isinstance(payload.get("state"), dict)
        ):
            self._discard("wrong version, kind, or schema")
            return None
        if payload.get("meta") != self.meta:
            self._discard("stale run identity (meta mismatch)")
            return None
        return payload["state"]

    def save(self, state: dict) -> None:
        """Atomically persist ``state``; failures are logged, never raised."""
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "kind": self.kind,
            "meta": self.meta,
            "state": state,
        }
        temp = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(temp, "wb") as handle:
                pickle.dump(payload, handle)
            os.replace(temp, self.path)
        except OSError as exc:
            logger.warning("checkpoint: failed to write %s: %s", self.path, exc)
            temp.unlink(missing_ok=True)

    def clear(self) -> None:
        """Remove the checkpoint file (fresh-run semantics)."""
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            pass

    def _discard(self, reason: str) -> None:
        logger.warning("checkpoint: discarding %s checkpoint %s", reason, self.path)
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            pass


class EvalProgress:
    """Content-addressed scores-so-far of one evaluation batch.

    Because entries are keyed by the full evaluation fingerprint, a stale or
    partially relevant progress file can only ever *pre-fill correct scores*
    — resuming with it is always sound, and resumed scores are bitwise
    identical to freshly computed ones.
    """

    def __init__(self, checkpoint: Checkpoint, flush_every: int = 1) -> None:
        self.checkpoint = checkpoint
        self.flush_every = max(1, int(flush_every))
        state = checkpoint.load()
        if state is not None:
            # Entries are keyed by fingerprints whose semantics are pinned by
            # CACHE_KEY_VERSION; a file written under any other version (or
            # before versions were recorded) must refuse, not silently mix.
            stored = state.get("key_version", 0)
            if stored != CACHE_KEY_VERSION:
                raise ProgressVersionError(
                    f"eval progress {checkpoint.path} was written under cache "
                    f"key version {stored}, but this build uses "
                    f"{CACHE_KEY_VERSION}; refusing to resume (delete the "
                    "file or point REPRO_CHECKPOINT_DIR elsewhere)"
                )
        self.scores: dict[str, float] = dict(state["scores"]) if state else {}
        self._pending = 0

    def known(self, fingerprint: str) -> float | None:
        return self.scores.get(fingerprint)

    def record(self, fingerprint: str, score: float) -> None:
        """Remember one landed score, flushing per the configured cadence."""
        self.scores[fingerprint] = float(score)
        self._pending += 1
        if self._pending >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if self._pending:
            self.checkpoint.save(
                {"scores": dict(self.scores), "key_version": CACHE_KEY_VERSION}
            )
            self._pending = 0

    def clear(self) -> None:
        self.scores.clear()
        self._pending = 0
        self.checkpoint.clear()
