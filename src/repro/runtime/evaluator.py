"""The proxy-evaluation engine: fan-out backends, caching, fault tolerance.

Every comparator training label and every search-loop candidate costs one
``measure_arch_hyper`` call — a k-epoch forecaster training — which the paper
amortizes across eight GPUs.  :class:`ProxyEvaluator` is the single choke
point for those calls:

* **serial backend** (``workers=1``, the default) — an in-process loop,
* **process-pool backend** (``workers>1``) — a
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out.

Both backends are bitwise-identical: each evaluation is self-contained and
deterministically seeded by its :class:`~repro.tasks.proxy.ProxyConfig`, so
neither execution order nor process boundaries can change a score.  Results
are consumed in submission order, so the returned list is position-stable
too.

An optional :class:`~repro.runtime.cache.EvalCache` short-circuits
evaluations whose fingerprint has been scored before; hit/miss counters and
per-evaluation wall times are accumulated on :attr:`ProxyEvaluator.stats`.

Fault tolerance (see :mod:`repro.runtime.faults`): with a
:class:`~repro.runtime.faults.RetryPolicy`, a crashed or timed-out attempt
is retried with deterministic backoff; exhaustion raises a typed
:class:`~repro.runtime.faults.EvalFailedError`; and a broken process pool
degrades gracefully to the serial backend instead of destroying the run.
Faults can change wall-clock and stats counters but never a returned score.

Checkpointing (see :mod:`repro.runtime.checkpoint`): an
:class:`~repro.runtime.checkpoint.EvalProgress` handed to
:meth:`ProxyEvaluator.evaluate_pairs` records each score as it lands and
pre-fills already-scored evaluations on resume.
"""

from __future__ import annotations

import contextlib
import logging
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

import numpy as np

from ..core.health import DivergenceError
from ..obs.heartbeat import heartbeat, latency_summary
from ..obs.metrics import MetricsRegistry, get_registry, metrics_scope
from ..obs.trace import Tracer, get_tracer, span, tracer_scope, tracing_enabled
from ..space.archhyper import ArchHyper
from ..tasks.proxy import SENTINEL_SCORE, ProxyConfig, measure_arch_hyper
from ..tasks.task import Task
from .cache import EvalCache
from .checkpoint import EvalProgress
from .faults import EvalFailedError, EvalTimeoutError, RetryPolicy
from .fingerprint import proxy_fingerprint

logger = logging.getLogger(__name__)

WORKERS_ENV = "REPRO_WORKERS"
DIVERGENCE_POLICY_ENV = "REPRO_DIVERGENCE_POLICY"
DIVERGENCE_POLICIES = ("sentinel", "raise")


def resolve_divergence_policy(policy: str | None = None) -> str:
    """Divergence policy: explicit argument, else env var, else ``sentinel``.

    ``sentinel`` maps a diverged candidate to the deterministic worst-case
    :data:`~repro.tasks.proxy.SENTINEL_SCORE`; ``raise`` propagates the
    :class:`~repro.core.health.DivergenceError`.  Either way divergence is
    *retry-exempt*: re-running a deterministic divergence re-diverges, so
    retrying would only burn the fault budget.
    """
    if policy is None:
        env = os.environ.get(DIVERGENCE_POLICY_ENV, "").strip().lower()
        policy = env or "sentinel"
    if policy not in DIVERGENCE_POLICIES:
        raise ValueError(
            f"unknown divergence policy {policy!r}; expected one of "
            f"{DIVERGENCE_POLICIES}"
        )
    return policy


def resolve_workers(workers: int | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_WORKERS``, else 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(env) if env else 1
    return max(1, int(workers))


class EvalStats:
    """Counters and timings accumulated across an evaluator's lifetime.

    The counters live in a :class:`~repro.obs.metrics.MetricsRegistry`
    (``eval.*`` names) whose parent is the registry that was ambient when
    the evaluator was built — normally the process-wide one — so every
    evaluator keeps isolated local counts *and* feeds the consolidated
    end-of-run snapshot.  The attribute API (``stats.misses``,
    ``stats.misses += 1``) is preserved as a thin view over the registry.
    """

    _COUNTERS = (
        "hits",
        "misses",
        "resumed",
        "retries",
        "timeouts",
        "failures",
        "degradations",
        "divergences",
        "batches",
    )

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        if registry is None:
            registry = MetricsRegistry(parent=get_registry())
        self.registry = registry
        self.eval_seconds: list[float] = []

    def _counter(self, name: str):
        return self.registry.counter(f"eval.{name}")

    def record_eval(self, seconds: float, queue_wait: float = 0.0) -> None:
        """Account one fresh evaluation's compute time and queue wait."""
        self.eval_seconds.append(seconds)
        self.registry.histogram("eval.seconds").observe(seconds)
        self._counter("compute_seconds").inc(seconds)
        self._counter("queue_wait_seconds").inc(queue_wait)

    @property
    def batch_seconds(self) -> float:
        return self._counter("batch_seconds").value

    @batch_seconds.setter
    def batch_seconds(self, value: float) -> None:
        counter = self._counter("batch_seconds")
        counter.inc(float(value) - counter.value)

    @property
    def compute_seconds(self) -> float:
        """Wall time spent inside evaluations (excludes pool queue wait)."""
        return self._counter("compute_seconds").value

    @property
    def queue_wait_seconds(self) -> float:
        """Time evaluations sat in a backend queue before starting."""
        return self._counter("queue_wait_seconds").value

    @property
    def evaluations(self) -> int:
        return len(self.eval_seconds)

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def faults(self) -> int:
        """Total fault events survived (retries + timeouts + degradations)."""
        return self.retries + self.timeouts + self.degradations

    def report(self) -> str:
        """One-line human summary rendered from the metrics registry."""
        snap = self.registry.snapshot()

        def count(name: str) -> int:
            return int(snap.get(f"eval.{name}", {}).get("value", 0))

        seconds = snap.get("eval.seconds", {})
        eval_wall = float(seconds.get("total", 0.0))
        evaluations = int(seconds.get("count", 0))
        mean = eval_wall / evaluations if evaluations else 0.0
        total = count("hits") + count("misses")
        hit_rate = count("hits") / total if total else 0.0
        queue_wait = float(snap.get("eval.queue_wait_seconds", {}).get("value", 0.0))
        line = (
            f"proxy evaluations: {count('misses')} fresh, {count('hits')} cache hits "
            f"({hit_rate:.1%} hit rate); "
            f"eval wall {eval_wall:.2f}s total, {mean:.3f}s/eval mean "
            f"({latency_summary(seconds)}); "
            f"{count('batches')} batches in "
            f"{float(snap.get('eval.batch_seconds', {}).get('value', 0.0)):.2f}s "
            f"(compute {eval_wall:.2f}s, queue wait {queue_wait:.2f}s)"
        )
        if count("resumed"):
            line += f"; {count('resumed')} resumed from checkpoint"
        line += (
            f"; faults: {count('retries')} retries, {count('timeouts')} timeouts, "
            f"{count('degradations')} pool degradations, {count('failures')} failures"
        )
        if count("divergences"):
            line += (
                f"; {count('divergences')} diverged candidate(s) -> sentinel score"
            )
        return line


def _make_counter_property(name: str):
    def getter(self: EvalStats) -> int:
        return int(self._counter(name).value)

    def setter(self: EvalStats, value: int) -> None:
        counter = self._counter(name)
        counter.inc(float(value) - counter.value)

    return property(getter, setter)


for _name in EvalStats._COUNTERS:
    setattr(EvalStats, _name, _make_counter_property(_name))
del _name


def _timed_eval(payload: tuple) -> tuple[float, float, bool, float, list, dict]:
    """Run one evaluation; report (score, seconds, diverged, started-at-wall,
    collected span records, metric deltas).

    Module-level so the process-pool backend can pickle it; the eval function
    itself rides along in the payload and must be picklable too.

    Telemetry capture lives *here*, inside the unit of work, so the serial
    and process-pool backends agree: the evaluation runs under a fresh
    metrics scope (health-monitor and profiling counters become a relayable
    delta) and — when the parent has tracing on — under an in-memory span
    collector whose records ride back through the result plumbing.  The
    wall-clock entry timestamp lets the parent split queue wait from compute
    time (monotonic clocks are not comparable across processes, wall clocks
    on one machine are).

    Divergence handling is also here so both backends behave identically:
    under the ``sentinel`` policy a :class:`DivergenceError`
    deterministically becomes :data:`SENTINEL_SCORE` (no exception crosses
    the process boundary, no retry is triggered); under ``raise`` it
    propagates to the caller.
    """
    eval_fn, arch_hyper, task, config, divergence_policy, trace = payload
    started_wall = time.time()
    spans: list[dict] = []
    collector = Tracer(spans.append) if trace else None
    scope = tracer_scope(collector) if trace else contextlib.nullcontext()
    with scope, metrics_scope() as local_metrics:
        start = time.perf_counter()
        score, diverged = _guarded_eval(
            eval_fn, arch_hyper, task, config, divergence_policy, collector
        )
        seconds = time.perf_counter() - start
    return (
        float(score),
        seconds,
        diverged,
        started_wall,
        spans,
        local_metrics.snapshot(),
    )


def _guarded_eval(
    eval_fn, arch_hyper, task, config, divergence_policy, collector
) -> tuple[float, bool]:
    """One evaluation under an (optional) ``eval`` span; (score, diverged)."""
    span_cm = (
        collector.span("eval", candidate=arch_hyper.key(), task=task.name)
        if collector is not None
        else contextlib.nullcontext()
    )
    with span_cm as handle:
        try:
            score = eval_fn(arch_hyper, task, config)
        except DivergenceError:
            if divergence_policy == "raise":
                raise
            if handle is not None:
                handle.set(diverged=True)
            return SENTINEL_SCORE, True
    return float(score), False


# One evaluation job flowing through a backend: its position in the batch,
# its fingerprint (None when neither cache, retry jitter, nor progress needs
# one), and the (arch_hyper, task) pair.
_Job = tuple[int, "str | None", ArchHyper, Task]


class ProxyEvaluator:
    """Fans out ``(arch_hyper, task)`` proxy evaluations, with caching.

    Args:
        workers: parallel worker processes; ``None`` reads ``$REPRO_WORKERS``
            (default 1 = serial, in-process).
        cache: an :class:`EvalCache`, or ``None`` to disable score caching.
        eval_fn: the evaluation function ``(ah, task, config) -> float``;
            defaults to :func:`~repro.tasks.proxy.measure_arch_hyper`.  Must
            be a picklable (module-level) callable when ``workers > 1``.
        retry_policy: a :class:`~repro.runtime.faults.RetryPolicy` governing
            per-evaluation retries, backoff, and timeouts; ``None`` (the
            default) fails fast with no timeout enforcement.
        divergence_policy: ``"sentinel"`` (default; a diverged candidate
            deterministically scores :data:`~repro.tasks.proxy.SENTINEL_SCORE`
            — cacheable, retry-exempt, bitwise-identical on every backend) or
            ``"raise"`` (a :class:`~repro.core.health.DivergenceError`
            propagates, still without burning retries); ``None`` reads
            ``$REPRO_DIVERGENCE_POLICY``.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: EvalCache | None = None,
        eval_fn: Callable[[ArchHyper, Task, ProxyConfig], float] | None = None,
        retry_policy: RetryPolicy | None = None,
        divergence_policy: str | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.eval_fn = eval_fn or measure_arch_hyper
        self.retry_policy = retry_policy
        self.divergence_policy = resolve_divergence_policy(divergence_policy)
        self.stats = EvalStats()
        self._sleep = time.sleep  # injectable for fast tests

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self, arch_hyper: ArchHyper, task: Task, config: ProxyConfig | None = None
    ) -> float:
        """Score one arch-hyper on one task."""
        return self.evaluate_pairs([(arch_hyper, task)], config)[0]

    def evaluate_many(
        self,
        arch_hypers: Sequence[ArchHyper],
        task: Task,
        config: ProxyConfig | None = None,
    ) -> list[float]:
        """Score many arch-hypers on a single task."""
        return self.evaluate_pairs([(ah, task) for ah in arch_hypers], config)

    def evaluate_pairs(
        self,
        pairs: Sequence[tuple[ArchHyper, Task]],
        config: ProxyConfig | None = None,
        progress: EvalProgress | None = None,
    ) -> list[float]:
        """Score arbitrary ``(arch_hyper, task)`` pairs, order-preserving.

        Checkpointed scores (``progress``) and cache hits are filled in
        without touching a backend; the remaining misses run on the serial
        or process-pool backend and are written back to both stores as each
        result lands, so an interrupted batch loses at most the in-flight
        evaluations.
        """
        config = config if config is not None else ProxyConfig()
        start = time.perf_counter()
        need_fingerprint = (
            self.cache is not None
            or progress is not None
            or self.retry_policy is not None
        )
        scores: list[float | None] = [None] * len(pairs)
        jobs: list[_Job] = []
        with span("eval-batch", pairs=len(pairs), workers=self.workers) as batch_span:
            for position, (arch_hyper, task) in enumerate(pairs):
                fingerprint = None
                if need_fingerprint:
                    fingerprint = proxy_fingerprint(arch_hyper, task, config)
                if progress is not None and fingerprint is not None:
                    known = progress.known(fingerprint)
                    if known is not None:
                        scores[position] = known
                        self.stats.resumed += 1
                        continue
                if self.cache is not None and fingerprint is not None:
                    cached = self.cache.get(fingerprint)
                    if cached is not None:
                        scores[position] = cached
                        self.stats.hits += 1
                        if progress is not None:
                            progress.record(fingerprint, cached)
                        continue
                self.stats.misses += 1
                jobs.append((position, fingerprint, arch_hyper, task))
            batch_span.set(evaluated=len(jobs), cached=len(pairs) - len(jobs))
            done = 0

            def on_result(job: _Job, outcome: tuple, attempts: int) -> None:
                nonlocal done
                position, fingerprint, _, _ = job
                score, seconds, diverged, queue_wait, spans, metrics = outcome
                scores[position] = score
                self.stats.record_eval(seconds, queue_wait)
                if diverged:
                    self.stats.divergences += 1
                if self.cache is not None and fingerprint is not None:
                    # Sentinel scores are cached like any other: the fingerprint
                    # fully determines divergence, so re-evaluating is pointless.
                    self.cache.put(fingerprint, score, seconds)
                if progress is not None and fingerprint is not None:
                    progress.record(fingerprint, score)
                # Fold worker-side metric deltas (health monitor, profiling)
                # into this evaluator's registry — and, via its parent link,
                # into the consolidated process-wide snapshot.
                if metrics:
                    self.stats.registry.merge(metrics)
                # Graft worker spans onto this batch, stamped with what only
                # the parent knows: the attempt that finally landed and the
                # content-addressed fingerprint.
                tracer = get_tracer()
                if spans and tracer is not None:
                    root_attrs: dict = {"attempt": attempts}
                    if fingerprint is not None:
                        root_attrs["fingerprint"] = fingerprint
                    tracer.relay(spans, batch_span.id, root_attrs)
                done += 1
                heartbeat(
                    "eval",
                    lambda: (
                        f"evals {done}/{len(jobs)}; "
                        f"{done / max(time.perf_counter() - start, 1e-9):.2f} eval/s "
                        f"this batch; "
                        f"{latency_summary(self.stats.registry.histogram('eval.seconds'))}; "
                        f"cache hit rate {self.stats.hit_rate:.0%}; "
                        f"queue wait {self.stats.queue_wait_seconds:.1f}s"
                    ),
                )

            if jobs:
                try:
                    self._run_backend(jobs, config, on_result)
                finally:
                    # Persist whatever landed before a failure interrupted us.
                    if progress is not None:
                        progress.flush()

            self.stats.batches += 1
            self.stats.batch_seconds += time.perf_counter() - start
        assert all(score is not None for score in scores)
        return [float(score) for score in scores]  # type: ignore[arg-type]

    def evaluate_rungs(
        self,
        pairs: Sequence[tuple[ArchHyper, Task]],
        config: ProxyConfig | None = None,
        schedule=None,
        progress: EvalProgress | None = None,
        warm_dir: str | None = None,
    ):
        """Score pairs through a successive-halving fidelity ladder.

        ``schedule`` is a :class:`~repro.runtime.fidelity.FidelitySchedule`,
        an ``eta:rungs:min-epochs`` spec string, or ``None`` to read
        ``$REPRO_FIDELITY_SCHEDULE``.  With no schedule anywhere this is
        exactly :meth:`evaluate_pairs` (every candidate at full fidelity) —
        the fidelity machinery is inert until a schedule is requested.
        Returns a :class:`~repro.runtime.fidelity.FidelityResult`.
        """
        from .fidelity import (
            FidelityResult,
            FidelityScheduler,
            resolve_fidelity_schedule,
            resolve_warm_dir,
        )

        config = config if config is not None else ProxyConfig()
        schedule = resolve_fidelity_schedule(schedule)
        if schedule is None:
            scores = self.evaluate_pairs(pairs, config, progress)
            return FidelityResult(
                scores=scores,
                fidelities=[config.epochs] * len(scores),
                full_epochs=config.epochs,
            )
        scheduler = FidelityScheduler(schedule, warm_dir=resolve_warm_dir(warm_dir))
        return scheduler.evaluate_pairs(self, pairs, config, progress=progress)

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _payload(self, job: _Job, config: ProxyConfig) -> tuple:
        _, _, arch_hyper, task = job
        return (
            self.eval_fn,
            arch_hyper,
            task,
            config,
            self.divergence_policy,
            tracing_enabled(),
        )

    def _run_backend(
        self,
        jobs: list[_Job],
        config: ProxyConfig,
        on_result: Callable[[_Job, tuple, int], None],
    ) -> None:
        if self.workers <= 1 or len(jobs) <= 1:
            self._run_serial(jobs, config, on_result)
            return
        settled: set[int] = set()
        try:
            self._run_pool(jobs, config, on_result, settled)
        except (BrokenProcessPool, OSError) as exc:
            # The pool died (worker hard-crash, fork failure, resource
            # exhaustion).  Scores are deterministic, so finishing the
            # remaining jobs in-process is always sound — record the
            # degradation and keep going instead of destroying the run.
            remaining = [job for job in jobs if job[0] not in settled]
            self.stats.degradations += 1
            logger.warning(
                "process pool broke (%s: %s); degrading %d remaining "
                "evaluation(s) to the serial backend",
                type(exc).__name__, exc, len(remaining),
            )
            self._run_serial(remaining, config, on_result)

    @staticmethod
    def _outcome(result: tuple, submitted_wall: float) -> tuple:
        """Attach the queue wait (worker start − submission, wall clock) to a
        raw :func:`_timed_eval` result."""
        score, seconds, diverged, started_wall, spans, metrics = result
        queue_wait = max(0.0, started_wall - submitted_wall)
        return (score, seconds, diverged, queue_wait, spans, metrics)

    def _run_serial(
        self,
        jobs: list[_Job],
        config: ProxyConfig,
        on_result: Callable[[_Job, tuple, int], None],
    ) -> None:
        for job in jobs:
            submitted_wall = time.time()
            result, attempts = self._run_one_with_retries(job, config)
            on_result(job, self._outcome(result, submitted_wall), attempts)

    def _run_pool(
        self,
        jobs: list[_Job],
        config: ProxyConfig,
        on_result: Callable[[_Job, tuple, int], None],
        settled: set[int],
    ) -> None:
        policy = self.retry_policy
        timeout = policy.timeout if policy is not None else None
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(jobs)))
        try:
            submitted_wall = []
            futures = []
            for job in jobs:
                submitted_wall.append(time.time())
                futures.append(pool.submit(_timed_eval, self._payload(job, config)))
            for index, (job, future) in enumerate(zip(jobs, futures)):
                attempts = 0
                while True:
                    error: BaseException
                    try:
                        result = future.result(timeout=timeout)
                        break
                    except FutureTimeoutError:
                        self.stats.timeouts += 1
                        future.cancel()
                        error = EvalTimeoutError(
                            f"evaluation exceeded {timeout}s in worker"
                        )
                    except BrokenProcessPool:
                        raise  # degrade in _run_backend
                    except DivergenceError:
                        # Only reaches here under divergence_policy="raise".
                        # Deterministic: a retry would re-diverge identically,
                        # so divergence is exempt from the retry budget.
                        self.stats.divergences += 1
                        raise
                    except Exception as exc:  # a fault raised inside the worker
                        error = exc
                    attempts += 1
                    if policy is None or attempts > policy.max_retries:
                        self.stats.failures += 1
                        raise EvalFailedError(
                            f"evaluation failed after {attempts} attempt(s): {error}",
                            attempts=attempts,
                            last_error=error,
                        ) from error
                    self.stats.retries += 1
                    self._sleep(policy.delay(attempts - 1, job[1]))
                    submitted_wall[index] = time.time()
                    future = pool.submit(_timed_eval, self._payload(job, config))
                on_result(job, self._outcome(result, submitted_wall[index]), attempts + 1)
                settled.add(job[0])
        finally:
            # wait=False: never block on a worker wedged past its timeout.
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Serial attempts with retry / timeout
    # ------------------------------------------------------------------
    def _run_one_with_retries(
        self, job: _Job, config: ProxyConfig
    ) -> tuple[tuple, int]:
        policy = self.retry_policy
        payload = self._payload(job, config)
        attempts = 0
        while True:
            error: BaseException
            try:
                return self._attempt_serial(payload), attempts + 1
            except EvalTimeoutError as exc:
                self.stats.timeouts += 1
                error = exc
            except DivergenceError:
                # divergence_policy="raise": typed, deterministic, retry-exempt.
                self.stats.divergences += 1
                raise
            except Exception as exc:
                error = exc
            attempts += 1
            if policy is None or attempts > policy.max_retries:
                self.stats.failures += 1
                raise EvalFailedError(
                    f"evaluation failed after {attempts} attempt(s): {error}",
                    attempts=attempts,
                    last_error=error,
                ) from error
            self.stats.retries += 1
            self._sleep(policy.delay(attempts - 1, job[1]))

    def _attempt_serial(self, payload: tuple) -> tuple:
        """One in-process attempt, with thread-based timeout enforcement.

        Without a timeout the evaluation runs inline.  With one, it runs in
        a daemon thread that is abandoned on expiry — the attempt is counted
        as timed out and retried; the orphan thread cannot affect scores
        (evaluations are self-contained) but does keep consuming CPU until
        it finishes, which is the usual in-process-timeout trade-off.
        """
        policy = self.retry_policy
        if policy is None or policy.timeout is None:
            return _timed_eval(payload)
        box: dict[str, object] = {}

        def target() -> None:
            try:
                box["result"] = _timed_eval(payload)
            except BaseException as exc:  # ferried to the caller below
                box["error"] = exc

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        thread.join(policy.timeout)
        if thread.is_alive():
            raise EvalTimeoutError(f"evaluation exceeded {policy.timeout}s")
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["result"]  # type: ignore[return-value]
