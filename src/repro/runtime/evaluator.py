"""The proxy-evaluation engine: fan-out backends plus score caching.

Every comparator training label and every search-loop candidate costs one
``measure_arch_hyper`` call — a k-epoch forecaster training — which the paper
amortizes across eight GPUs.  :class:`ProxyEvaluator` is the single choke
point for those calls:

* **serial backend** (``workers=1``, the default) — an in-process loop,
* **process-pool backend** (``workers>1``) — a
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out.

Both backends are bitwise-identical: each evaluation is self-contained and
deterministically seeded by its :class:`~repro.tasks.proxy.ProxyConfig`, so
neither execution order nor process boundaries can change a score.  Results
from ``ProcessPoolExecutor.map`` are consumed in submission order, so the
returned list is position-stable too.

An optional :class:`~repro.runtime.cache.EvalCache` short-circuits
evaluations whose fingerprint has been scored before; hit/miss counters and
per-evaluation wall times are accumulated on :attr:`ProxyEvaluator.stats`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..space.archhyper import ArchHyper
from ..tasks.proxy import ProxyConfig, measure_arch_hyper
from ..tasks.task import Task
from .cache import EvalCache
from .fingerprint import proxy_fingerprint

WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_WORKERS``, else 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(env) if env else 1
    return max(1, int(workers))


@dataclass
class EvalStats:
    """Counters and timings accumulated across an evaluator's lifetime."""

    hits: int = 0
    misses: int = 0
    eval_seconds: list[float] = field(default_factory=list)
    batch_seconds: float = 0.0
    batches: int = 0

    @property
    def evaluations(self) -> int:
        return len(self.eval_seconds)

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def report(self) -> str:
        """One-line human summary (surfaced by the CLI after a search)."""
        eval_wall = float(np.sum(self.eval_seconds)) if self.eval_seconds else 0.0
        mean = eval_wall / self.evaluations if self.evaluations else 0.0
        return (
            f"proxy evaluations: {self.misses} fresh, {self.hits} cache hits "
            f"({self.hit_rate:.1%} hit rate); "
            f"eval wall {eval_wall:.2f}s total, {mean:.3f}s/eval mean; "
            f"{self.batches} batches in {self.batch_seconds:.2f}s"
        )


def _timed_eval(payload: tuple) -> tuple[float, float]:
    """Run one evaluation and report (score, wall seconds).

    Module-level so the process-pool backend can pickle it; the eval function
    itself rides along in the payload and must be picklable too.
    """
    eval_fn, arch_hyper, task, config = payload
    start = time.perf_counter()
    score = eval_fn(arch_hyper, task, config)
    return float(score), time.perf_counter() - start


class ProxyEvaluator:
    """Fans out ``(arch_hyper, task)`` proxy evaluations, with caching.

    Args:
        workers: parallel worker processes; ``None`` reads ``$REPRO_WORKERS``
            (default 1 = serial, in-process).
        cache: an :class:`EvalCache`, or ``None`` to disable score caching.
        eval_fn: the evaluation function ``(ah, task, config) -> float``;
            defaults to :func:`~repro.tasks.proxy.measure_arch_hyper`.  Must
            be a picklable (module-level) callable when ``workers > 1``.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: EvalCache | None = None,
        eval_fn: Callable[[ArchHyper, Task, ProxyConfig], float] | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.eval_fn = eval_fn or measure_arch_hyper
        self.stats = EvalStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self, arch_hyper: ArchHyper, task: Task, config: ProxyConfig = ProxyConfig()
    ) -> float:
        """Score one arch-hyper on one task."""
        return self.evaluate_pairs([(arch_hyper, task)], config)[0]

    def evaluate_many(
        self,
        arch_hypers: Sequence[ArchHyper],
        task: Task,
        config: ProxyConfig = ProxyConfig(),
    ) -> list[float]:
        """Score many arch-hypers on a single task."""
        return self.evaluate_pairs([(ah, task) for ah in arch_hypers], config)

    def evaluate_pairs(
        self,
        pairs: Sequence[tuple[ArchHyper, Task]],
        config: ProxyConfig = ProxyConfig(),
    ) -> list[float]:
        """Score arbitrary ``(arch_hyper, task)`` pairs, order-preserving.

        Cache hits are filled in without touching a backend; the remaining
        misses run on the serial or process-pool backend and are written back
        to the cache.
        """
        start = time.perf_counter()
        scores: list[float | None] = [None] * len(pairs)
        jobs: list[tuple[int, str | None, ArchHyper, Task]] = []
        for position, (arch_hyper, task) in enumerate(pairs):
            fingerprint = None
            if self.cache is not None:
                fingerprint = proxy_fingerprint(arch_hyper, task, config)
                cached = self.cache.get(fingerprint)
                if cached is not None:
                    scores[position] = cached
                    self.stats.hits += 1
                    continue
            self.stats.misses += 1
            jobs.append((position, fingerprint, arch_hyper, task))

        if jobs:
            results = self._run_backend(jobs, config)
            for (position, fingerprint, _, _), (score, seconds) in zip(jobs, results):
                scores[position] = score
                self.stats.eval_seconds.append(seconds)
                if self.cache is not None and fingerprint is not None:
                    self.cache.put(fingerprint, score, seconds)

        self.stats.batches += 1
        self.stats.batch_seconds += time.perf_counter() - start
        assert all(score is not None for score in scores)
        return [float(score) for score in scores]  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _run_backend(
        self, jobs: list[tuple[int, str | None, ArchHyper, Task]], config: ProxyConfig
    ) -> list[tuple[float, float]]:
        payloads = [
            (self.eval_fn, arch_hyper, task, config)
            for _, _, arch_hyper, task in jobs
        ]
        if self.workers <= 1 or len(payloads) <= 1:
            return [_timed_eval(payload) for payload in payloads]
        with ProcessPoolExecutor(max_workers=min(self.workers, len(payloads))) as pool:
            return list(pool.map(_timed_eval, payloads))
