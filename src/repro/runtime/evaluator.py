"""The proxy-evaluation engine: fan-out backends, caching, fault tolerance.

Every comparator training label and every search-loop candidate costs one
``measure_arch_hyper`` call — a k-epoch forecaster training — which the paper
amortizes across eight GPUs.  :class:`ProxyEvaluator` is the single choke
point for those calls:

* **serial backend** (``workers=1``, the default) — an in-process loop,
* **process-pool backend** (``workers>1``) — a
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out.

Both backends are bitwise-identical: each evaluation is self-contained and
deterministically seeded by its :class:`~repro.tasks.proxy.ProxyConfig`, so
neither execution order nor process boundaries can change a score.  Results
are consumed in submission order, so the returned list is position-stable
too.

An optional :class:`~repro.runtime.cache.EvalCache` short-circuits
evaluations whose fingerprint has been scored before; hit/miss counters and
per-evaluation wall times are accumulated on :attr:`ProxyEvaluator.stats`.

Fault tolerance (see :mod:`repro.runtime.faults`): with a
:class:`~repro.runtime.faults.RetryPolicy`, a crashed or timed-out attempt
is retried with deterministic backoff; exhaustion raises a typed
:class:`~repro.runtime.faults.EvalFailedError`; and a broken process pool
degrades gracefully to the serial backend instead of destroying the run.
Faults can change wall-clock and stats counters but never a returned score.

Checkpointing (see :mod:`repro.runtime.checkpoint`): an
:class:`~repro.runtime.checkpoint.EvalProgress` handed to
:meth:`ProxyEvaluator.evaluate_pairs` records each score as it lands and
pre-fills already-scored evaluations on resume.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.health import DivergenceError
from ..space.archhyper import ArchHyper
from ..tasks.proxy import SENTINEL_SCORE, ProxyConfig, measure_arch_hyper
from ..tasks.task import Task
from .cache import EvalCache
from .checkpoint import EvalProgress
from .faults import EvalFailedError, EvalTimeoutError, RetryPolicy
from .fingerprint import proxy_fingerprint

logger = logging.getLogger(__name__)

WORKERS_ENV = "REPRO_WORKERS"
DIVERGENCE_POLICY_ENV = "REPRO_DIVERGENCE_POLICY"
DIVERGENCE_POLICIES = ("sentinel", "raise")


def resolve_divergence_policy(policy: str | None = None) -> str:
    """Divergence policy: explicit argument, else env var, else ``sentinel``.

    ``sentinel`` maps a diverged candidate to the deterministic worst-case
    :data:`~repro.tasks.proxy.SENTINEL_SCORE`; ``raise`` propagates the
    :class:`~repro.core.health.DivergenceError`.  Either way divergence is
    *retry-exempt*: re-running a deterministic divergence re-diverges, so
    retrying would only burn the fault budget.
    """
    if policy is None:
        env = os.environ.get(DIVERGENCE_POLICY_ENV, "").strip().lower()
        policy = env or "sentinel"
    if policy not in DIVERGENCE_POLICIES:
        raise ValueError(
            f"unknown divergence policy {policy!r}; expected one of "
            f"{DIVERGENCE_POLICIES}"
        )
    return policy


def resolve_workers(workers: int | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_WORKERS``, else 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(env) if env else 1
    return max(1, int(workers))


@dataclass
class EvalStats:
    """Counters and timings accumulated across an evaluator's lifetime."""

    hits: int = 0
    misses: int = 0
    resumed: int = 0
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    degradations: int = 0
    divergences: int = 0
    eval_seconds: list[float] = field(default_factory=list)
    batch_seconds: float = 0.0
    batches: int = 0

    @property
    def evaluations(self) -> int:
        return len(self.eval_seconds)

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def faults(self) -> int:
        """Total fault events survived (retries + timeouts + degradations)."""
        return self.retries + self.timeouts + self.degradations

    def report(self) -> str:
        """One-line human summary (surfaced by the CLI after a search)."""
        eval_wall = float(np.sum(self.eval_seconds)) if self.eval_seconds else 0.0
        mean = eval_wall / self.evaluations if self.evaluations else 0.0
        line = (
            f"proxy evaluations: {self.misses} fresh, {self.hits} cache hits "
            f"({self.hit_rate:.1%} hit rate); "
            f"eval wall {eval_wall:.2f}s total, {mean:.3f}s/eval mean; "
            f"{self.batches} batches in {self.batch_seconds:.2f}s"
        )
        if self.resumed:
            line += f"; {self.resumed} resumed from checkpoint"
        line += (
            f"; faults: {self.retries} retries, {self.timeouts} timeouts, "
            f"{self.degradations} pool degradations, {self.failures} failures"
        )
        if self.divergences:
            line += f"; {self.divergences} diverged candidate(s) -> sentinel score"
        return line


def _timed_eval(payload: tuple) -> tuple[float, float, bool]:
    """Run one evaluation and report (score, wall seconds, diverged).

    Module-level so the process-pool backend can pickle it; the eval function
    itself rides along in the payload and must be picklable too.

    Divergence handling lives *here*, inside the unit of work, so the serial
    and process-pool backends behave identically: under the ``sentinel``
    policy a :class:`DivergenceError` deterministically becomes
    :data:`SENTINEL_SCORE` (no exception crosses the process boundary, no
    retry is triggered); under ``raise`` it propagates to the caller.
    """
    eval_fn, arch_hyper, task, config, divergence_policy = payload
    start = time.perf_counter()
    try:
        score = eval_fn(arch_hyper, task, config)
    except DivergenceError:
        if divergence_policy == "raise":
            raise
        return SENTINEL_SCORE, time.perf_counter() - start, True
    return float(score), time.perf_counter() - start, False


# One evaluation job flowing through a backend: its position in the batch,
# its fingerprint (None when neither cache, retry jitter, nor progress needs
# one), and the (arch_hyper, task) pair.
_Job = tuple[int, "str | None", ArchHyper, Task]


class ProxyEvaluator:
    """Fans out ``(arch_hyper, task)`` proxy evaluations, with caching.

    Args:
        workers: parallel worker processes; ``None`` reads ``$REPRO_WORKERS``
            (default 1 = serial, in-process).
        cache: an :class:`EvalCache`, or ``None`` to disable score caching.
        eval_fn: the evaluation function ``(ah, task, config) -> float``;
            defaults to :func:`~repro.tasks.proxy.measure_arch_hyper`.  Must
            be a picklable (module-level) callable when ``workers > 1``.
        retry_policy: a :class:`~repro.runtime.faults.RetryPolicy` governing
            per-evaluation retries, backoff, and timeouts; ``None`` (the
            default) fails fast with no timeout enforcement.
        divergence_policy: ``"sentinel"`` (default; a diverged candidate
            deterministically scores :data:`~repro.tasks.proxy.SENTINEL_SCORE`
            — cacheable, retry-exempt, bitwise-identical on every backend) or
            ``"raise"`` (a :class:`~repro.core.health.DivergenceError`
            propagates, still without burning retries); ``None`` reads
            ``$REPRO_DIVERGENCE_POLICY``.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: EvalCache | None = None,
        eval_fn: Callable[[ArchHyper, Task, ProxyConfig], float] | None = None,
        retry_policy: RetryPolicy | None = None,
        divergence_policy: str | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.eval_fn = eval_fn or measure_arch_hyper
        self.retry_policy = retry_policy
        self.divergence_policy = resolve_divergence_policy(divergence_policy)
        self.stats = EvalStats()
        self._sleep = time.sleep  # injectable for fast tests

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self, arch_hyper: ArchHyper, task: Task, config: ProxyConfig | None = None
    ) -> float:
        """Score one arch-hyper on one task."""
        return self.evaluate_pairs([(arch_hyper, task)], config)[0]

    def evaluate_many(
        self,
        arch_hypers: Sequence[ArchHyper],
        task: Task,
        config: ProxyConfig | None = None,
    ) -> list[float]:
        """Score many arch-hypers on a single task."""
        return self.evaluate_pairs([(ah, task) for ah in arch_hypers], config)

    def evaluate_pairs(
        self,
        pairs: Sequence[tuple[ArchHyper, Task]],
        config: ProxyConfig | None = None,
        progress: EvalProgress | None = None,
    ) -> list[float]:
        """Score arbitrary ``(arch_hyper, task)`` pairs, order-preserving.

        Checkpointed scores (``progress``) and cache hits are filled in
        without touching a backend; the remaining misses run on the serial
        or process-pool backend and are written back to both stores as each
        result lands, so an interrupted batch loses at most the in-flight
        evaluations.
        """
        config = config if config is not None else ProxyConfig()
        start = time.perf_counter()
        need_fingerprint = (
            self.cache is not None
            or progress is not None
            or self.retry_policy is not None
        )
        scores: list[float | None] = [None] * len(pairs)
        jobs: list[_Job] = []
        for position, (arch_hyper, task) in enumerate(pairs):
            fingerprint = None
            if need_fingerprint:
                fingerprint = proxy_fingerprint(arch_hyper, task, config)
            if progress is not None and fingerprint is not None:
                known = progress.known(fingerprint)
                if known is not None:
                    scores[position] = known
                    self.stats.resumed += 1
                    continue
            if self.cache is not None and fingerprint is not None:
                cached = self.cache.get(fingerprint)
                if cached is not None:
                    scores[position] = cached
                    self.stats.hits += 1
                    if progress is not None:
                        progress.record(fingerprint, cached)
                    continue
            self.stats.misses += 1
            jobs.append((position, fingerprint, arch_hyper, task))

        def on_result(job: _Job, score: float, seconds: float, diverged: bool) -> None:
            position, fingerprint, _, _ = job
            scores[position] = score
            self.stats.eval_seconds.append(seconds)
            if diverged:
                self.stats.divergences += 1
            if self.cache is not None and fingerprint is not None:
                # Sentinel scores are cached like any other: the fingerprint
                # fully determines divergence, so re-evaluating is pointless.
                self.cache.put(fingerprint, score, seconds)
            if progress is not None and fingerprint is not None:
                progress.record(fingerprint, score)

        if jobs:
            try:
                self._run_backend(jobs, config, on_result)
            finally:
                # Persist whatever landed before a failure interrupted us.
                if progress is not None:
                    progress.flush()

        self.stats.batches += 1
        self.stats.batch_seconds += time.perf_counter() - start
        assert all(score is not None for score in scores)
        return [float(score) for score in scores]  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _payload(self, job: _Job, config: ProxyConfig) -> tuple:
        _, _, arch_hyper, task = job
        return (self.eval_fn, arch_hyper, task, config, self.divergence_policy)

    def _run_backend(
        self,
        jobs: list[_Job],
        config: ProxyConfig,
        on_result: Callable[[_Job, float, float, bool], None],
    ) -> None:
        if self.workers <= 1 or len(jobs) <= 1:
            self._run_serial(jobs, config, on_result)
            return
        settled: set[int] = set()
        try:
            self._run_pool(jobs, config, on_result, settled)
        except (BrokenProcessPool, OSError) as exc:
            # The pool died (worker hard-crash, fork failure, resource
            # exhaustion).  Scores are deterministic, so finishing the
            # remaining jobs in-process is always sound — record the
            # degradation and keep going instead of destroying the run.
            remaining = [job for job in jobs if job[0] not in settled]
            self.stats.degradations += 1
            logger.warning(
                "process pool broke (%s: %s); degrading %d remaining "
                "evaluation(s) to the serial backend",
                type(exc).__name__, exc, len(remaining),
            )
            self._run_serial(remaining, config, on_result)

    def _run_serial(
        self,
        jobs: list[_Job],
        config: ProxyConfig,
        on_result: Callable[[_Job, float, float, bool], None],
    ) -> None:
        for job in jobs:
            score, seconds, diverged = self._run_one_with_retries(job, config)
            on_result(job, score, seconds, diverged)

    def _run_pool(
        self,
        jobs: list[_Job],
        config: ProxyConfig,
        on_result: Callable[[_Job, float, float, bool], None],
        settled: set[int],
    ) -> None:
        policy = self.retry_policy
        timeout = policy.timeout if policy is not None else None
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(jobs)))
        try:
            futures = [pool.submit(_timed_eval, self._payload(job, config)) for job in jobs]
            for job, future in zip(jobs, futures):
                attempts = 0
                while True:
                    error: BaseException
                    try:
                        score, seconds, diverged = future.result(timeout=timeout)
                        break
                    except FutureTimeoutError:
                        self.stats.timeouts += 1
                        future.cancel()
                        error = EvalTimeoutError(
                            f"evaluation exceeded {timeout}s in worker"
                        )
                    except BrokenProcessPool:
                        raise  # degrade in _run_backend
                    except DivergenceError:
                        # Only reaches here under divergence_policy="raise".
                        # Deterministic: a retry would re-diverge identically,
                        # so divergence is exempt from the retry budget.
                        self.stats.divergences += 1
                        raise
                    except Exception as exc:  # a fault raised inside the worker
                        error = exc
                    attempts += 1
                    if policy is None or attempts > policy.max_retries:
                        self.stats.failures += 1
                        raise EvalFailedError(
                            f"evaluation failed after {attempts} attempt(s): {error}",
                            attempts=attempts,
                            last_error=error,
                        ) from error
                    self.stats.retries += 1
                    self._sleep(policy.delay(attempts - 1, job[1]))
                    future = pool.submit(_timed_eval, self._payload(job, config))
                on_result(job, score, seconds, diverged)
                settled.add(job[0])
        finally:
            # wait=False: never block on a worker wedged past its timeout.
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Serial attempts with retry / timeout
    # ------------------------------------------------------------------
    def _run_one_with_retries(
        self, job: _Job, config: ProxyConfig
    ) -> tuple[float, float, bool]:
        policy = self.retry_policy
        payload = self._payload(job, config)
        attempts = 0
        while True:
            error: BaseException
            try:
                return self._attempt_serial(payload)
            except EvalTimeoutError as exc:
                self.stats.timeouts += 1
                error = exc
            except DivergenceError:
                # divergence_policy="raise": typed, deterministic, retry-exempt.
                self.stats.divergences += 1
                raise
            except Exception as exc:
                error = exc
            attempts += 1
            if policy is None or attempts > policy.max_retries:
                self.stats.failures += 1
                raise EvalFailedError(
                    f"evaluation failed after {attempts} attempt(s): {error}",
                    attempts=attempts,
                    last_error=error,
                ) from error
            self.stats.retries += 1
            self._sleep(policy.delay(attempts - 1, job[1]))

    def _attempt_serial(self, payload: tuple) -> tuple[float, float, bool]:
        """One in-process attempt, with thread-based timeout enforcement.

        Without a timeout the evaluation runs inline.  With one, it runs in
        a daemon thread that is abandoned on expiry — the attempt is counted
        as timed out and retried; the orphan thread cannot affect scores
        (evaluations are self-contained) but does keep consuming CPU until
        it finishes, which is the usual in-process-timeout trade-off.
        """
        policy = self.retry_policy
        if policy is None or policy.timeout is None:
            return _timed_eval(payload)
        box: dict[str, object] = {}

        def target() -> None:
            try:
                box["result"] = _timed_eval(payload)
            except BaseException as exc:  # ferried to the caller below
                box["error"] = exc

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        thread.join(policy.timeout)
        if thread.is_alive():
            raise EvalTimeoutError(f"evaluation exceeded {policy.timeout}s")
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["result"]  # type: ignore[return-value]
