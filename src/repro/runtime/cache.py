"""Content-addressed on-disk cache of proxy-evaluation scores.

One evaluation = one small JSON file under ``<dir>/<fp[:2]>/<fp>.json``,
where ``fp`` is the :func:`~repro.runtime.fingerprint.proxy_fingerprint` of
the evaluation.  Writes are atomic (temp file + ``os.replace``) so a crashed
or concurrent run can never leave a half-written entry behind; loads are
corruption-safe — any unreadable, truncated, or wrong-version entry is
discarded and treated as a miss, never raised to the caller.

Scores are stored via ``json``, whose ``repr``-based float encoding
round-trips exactly, so a cache hit is bitwise identical to the original
evaluation.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path

logger = logging.getLogger(__name__)

# Bump when the entry schema changes; old entries are then discarded cleanly.
CACHE_FORMAT_VERSION = 1

CACHE_DIR_ENV = "REPRO_EVAL_CACHE_DIR"

_REPO_ROOT = Path(__file__).resolve().parents[3]


def default_cache_dir() -> Path:
    """Cache location: ``$REPRO_EVAL_CACHE_DIR`` or ``benchmarks/.cache/proxy``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return _REPO_ROOT / "benchmarks" / ".cache" / "proxy"


class EvalCache:
    """Directory-backed score cache keyed by evaluation fingerprint."""

    def __init__(self, directory: Path | str | None = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> float | None:
        """The cached score, or ``None`` on a miss or an unreadable entry."""
        path = self.path_for(fingerprint)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._discard(path, "unreadable")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_FORMAT_VERSION
            or not isinstance(payload.get("score"), (int, float))
        ):
            self._discard(path, "wrong version or schema")
            return None
        return float(payload["score"])

    def put(self, fingerprint: str, score: float, wall_seconds: float = 0.0) -> None:
        """Atomically persist one score; failures are logged, never raised."""
        path = self.path_for(fingerprint)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "score": float(score),
            "wall_seconds": float(wall_seconds),
            "created": time.time(),
        }
        temp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp.write_text(json.dumps(payload))
            os.replace(temp, path)
        except OSError as exc:
            logger.warning("eval cache: failed to write %s: %s", path, exc)
            temp.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Remove every entry; returns the number of files deleted."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for entry in self.directory.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _discard(self, path: Path, reason: str) -> None:
        logger.warning("eval cache: discarding %s entry %s", reason, path)
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass
