"""repro — reproduction of AutoCTS+ / AutoCTS++.

Joint neural architecture and hyperparameter search for correlated time
series (CTS) forecasting, including the zero-shot task-aware comparator of
the journal extension.  Everything — the autodiff engine, the neural layers,
the candidate S/T operators, the comparators, the search strategies, the
baselines, and the synthetic benchmark datasets — is implemented from scratch
on top of numpy.

Typical entry points:

>>> from repro.data import get_dataset
>>> from repro.tasks import Task
>>> from repro.search import ZeroShotSearch

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

__version__ = "1.0.0"
