"""Persistence for searched models.

A searched forecasting model is fully described by (i) its arch-hyper, (ii)
the task dimensions it was built for, and (iii) its trained weights.  These
helpers save all three to a directory (arch-hyper + dimensions as JSON,
weights as ``.npz``) and rebuild the model on load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .core.model import CTSForecaster
from .space.archhyper import ArchHyper

_META_FILE = "model.json"
_WEIGHTS_FILE = "weights.npz"
FORMAT_VERSION = 1


def save_forecaster(model: CTSForecaster, directory: str | Path) -> Path:
    """Serialize ``model`` (definition + weights) into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = {
        "format_version": FORMAT_VERSION,
        "arch_hyper": model.arch_hyper.to_dict(),
        "n_nodes": model.n_nodes,
        "n_features": model.n_features,
        "horizon": model.horizon,
    }
    with open(directory / _META_FILE, "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
    state = model.state_dict()
    np.savez(directory / _WEIGHTS_FILE, **state)
    if model.supports:
        np.savez(directory / "supports.npz", *model.supports)
    return directory


def load_forecaster(directory: str | Path) -> CTSForecaster:
    """Rebuild a forecaster saved with :func:`save_forecaster`."""
    directory = Path(directory)
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise FileNotFoundError(f"no saved model at {directory}")
    with open(meta_path) as handle:
        meta = json.load(handle)
    if meta.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {meta.get('format_version')!r}; "
            f"expected {FORMAT_VERSION}"
        )
    supports = None
    supports_path = directory / "supports.npz"
    if supports_path.exists():
        with np.load(supports_path) as data:
            supports = [data[key] for key in data.files]
    model = CTSForecaster(
        ArchHyper.from_dict(meta["arch_hyper"]),
        n_nodes=meta["n_nodes"],
        n_features=meta["n_features"],
        horizon=meta["horizon"],
        supports=supports,
    )
    with np.load(directory / _WEIGHTS_FILE) as data:
        model.load_state_dict({key: data[key] for key in data.files})
    return model
