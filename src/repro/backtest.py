"""Rolling-origin backtesting for CTS forecasting models.

Production forecasting systems evaluate models the way they are deployed:
fit on data up to an origin, forecast the next horizon, roll the origin
forward, repeat.  This module implements that protocol on top of the task
pipeline — useful both for honest model assessment and for detecting
concept drift (error trending upward across folds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.model import build_forecaster
from .core.trainer import TrainConfig, evaluate_forecaster, train_forecaster
from .data.datasets import CTSData
from .data.windows import WindowSet, make_windows
from .metrics import ForecastScores
from .space.archhyper import ArchHyper
from .data.scalers import StandardScaler


@dataclass(frozen=True)
class BacktestConfig:
    """Rolling-origin evaluation protocol.

    ``n_folds`` origins are placed evenly over the back half of the series;
    each fold trains on everything before its origin (optionally capped) and
    scores the ``test_fraction`` slice that follows it.
    """

    n_folds: int = 3
    min_train_fraction: float = 0.4
    test_fraction: float = 0.1
    retrain_per_fold: bool = True
    train: TrainConfig = TrainConfig(epochs=3, batch_size=64)
    max_train_windows: int | None = 256

    def __post_init__(self) -> None:
        if self.n_folds < 1:
            raise ValueError("n_folds must be >= 1")
        if not 0 < self.min_train_fraction < 1 or not 0 < self.test_fraction < 1:
            raise ValueError("fractions must lie in (0, 1)")
        if self.min_train_fraction + self.test_fraction >= 1:
            raise ValueError("min_train_fraction + test_fraction must be < 1")


@dataclass
class BacktestResult:
    """Per-fold scores plus the aggregate."""

    fold_scores: list[ForecastScores]
    fold_origins: list[int]

    @property
    def mean_mae(self) -> float:
        return float(np.mean([s.mae for s in self.fold_scores]))

    @property
    def mae_trend(self) -> float:
        """Slope of MAE across folds; positive suggests drift/degradation."""
        if len(self.fold_scores) < 2:
            return 0.0
        maes = np.array([s.mae for s in self.fold_scores])
        x = np.arange(len(maes), dtype=np.float64)
        return float(np.polyfit(x, maes, 1)[0])


def _cap(windows: WindowSet, cap: int | None) -> WindowSet:
    if cap is None or len(windows) <= cap:
        return windows
    keep = np.unique(np.linspace(0, len(windows) - 1, cap).astype(int))
    return WindowSet(windows.x[keep], windows.y[keep])


def rolling_backtest(
    arch_hyper: ArchHyper,
    data: CTSData,
    p: int,
    q: int,
    config: BacktestConfig = BacktestConfig(),
    seed: int = 0,
) -> BacktestResult:
    """Evaluate ``arch_hyper`` on ``data`` with rolling-origin folds."""
    total = data.n_steps
    span = p + q
    first_origin = int(total * config.min_train_fraction)
    test_steps = max(int(total * config.test_fraction), span)
    last_origin = total - test_steps
    if last_origin <= first_origin:
        raise ValueError(
            f"dataset too short for backtest: T={total}, P+Q={span}, "
            f"folds need origins in [{first_origin}, {last_origin}]"
        )
    origins = np.unique(
        np.linspace(first_origin, last_origin, config.n_folds).astype(int)
    )

    fold_scores: list[ForecastScores] = []
    model = None
    for origin in origins:
        scaler = StandardScaler().fit(data.values[:, :origin, :])
        scaled = CTSData(
            name=data.name,
            values=scaler.transform(data.values),
            adjacency=data.adjacency,
            domain=data.domain,
            steps_per_day=data.steps_per_day,
        )
        train_windows = _cap(
            make_windows(scaled.slice_time(0, origin), p, q),
            config.max_train_windows,
        )
        test_region = scaled.slice_time(
            max(origin - p, 0), min(origin + test_steps, total)
        )
        test_windows = make_windows(test_region, p, q)
        if model is None or config.retrain_per_fold:
            # Early stopping validates on the chronological tail of the
            # training region — the test slice is never touched in training.
            val_start = max(int(len(train_windows) * 0.9), 1)
            fit_windows = WindowSet(
                train_windows.x[:val_start], train_windows.y[:val_start]
            )
            val_windows = WindowSet(
                train_windows.x[val_start:], train_windows.y[val_start:]
            )
            if len(val_windows) == 0:
                fit_windows, val_windows = train_windows, train_windows
            model = build_forecaster(arch_hyper, data, horizon=q, seed=seed)
            train_forecaster(model, fit_windows, val_windows, config.train)
        fold_scores.append(
            evaluate_forecaster(
                model,
                test_windows,
                config.train.batch_size,
                inverse=scaler.inverse_transform,
            )
        )
    return BacktestResult(fold_scores=fold_scores, fold_origins=[int(o) for o in origins])
