"""The joint architecture-hyperparameter search space (paper Section 3.1)."""

from .arch import (
    CANDIDATE_OPERATORS,
    IDENTITY_OPERATOR,
    MAX_INCOMING_EDGES,
    S_OPERATORS,
    T_OPERATORS,
    Architecture,
    Edge,
    sample_architecture,
)
from .archhyper import ArchHyper
from .encoding import (
    MAX_ENCODING_NODES,
    ArchHyperEncoding,
    encode_arch_hyper,
    encode_batch,
    operator_vocabulary,
)
from .hyperparams import HyperParameters, HyperSpace
from .pruning import PruningConfig, prune_space, space_reduction
from .sampling import JointSearchSpace, getattr_hyper

__all__ = [
    "CANDIDATE_OPERATORS",
    "IDENTITY_OPERATOR",
    "MAX_INCOMING_EDGES",
    "S_OPERATORS",
    "T_OPERATORS",
    "Architecture",
    "Edge",
    "sample_architecture",
    "ArchHyper",
    "MAX_ENCODING_NODES",
    "ArchHyperEncoding",
    "encode_arch_hyper",
    "encode_batch",
    "operator_vocabulary",
    "HyperParameters",
    "HyperSpace",
    "PruningConfig",
    "prune_space",
    "space_reduction",
    "JointSearchSpace",
    "getattr_hyper",
]
