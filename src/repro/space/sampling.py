"""Sampling, mutation, and crossover over the joint search space.

:class:`JointSearchSpace` is the single entry point the rest of the framework
uses to draw candidates: random sampling for comparator pre-training, and the
genetic operators (crossover probability p1, mutation probability p2) used by
the evolutionary search of Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from .arch import Architecture, CANDIDATE_OPERATORS, Edge, sample_architecture
from .archhyper import ArchHyper
from .hyperparams import HyperParameters, HyperSpace

_MAX_SAMPLE_ATTEMPTS = 200


@dataclass(frozen=True)
class JointSearchSpace:
    """The joint architecture-hyperparameter search space.

    ``operators`` defaults to the paper's candidate set; extend it (after
    registering the implementation) to grow the space, exactly as Section
    3.1.1 prescribes.
    """

    hyper_space: HyperSpace = HyperSpace()
    operators: tuple[str, ...] = CANDIDATE_OPERATORS

    def __post_init__(self) -> None:
        if len(self.operators) < 2:
            raise ValueError("the operator set must contain at least two operators")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self, rng: np.random.Generator, searchable_only: bool = True
    ) -> ArchHyper:
        """Draw one valid arch-hyper uniformly at random.

        With ``searchable_only`` (the search-strategy filter of Section 3.3),
        candidates lacking spatial or temporal operators are rejected.
        """
        for _ in range(_MAX_SAMPLE_ATTEMPTS):
            hyper = self.hyper_space.sample(rng)
            arch = sample_architecture(hyper.num_nodes, rng, self.operators)
            candidate = ArchHyper(arch=arch, hyper=hyper)
            if not searchable_only or candidate.is_searchable():
                return candidate
        raise RuntimeError(
            "failed to sample a searchable arch-hyper; the operator set may "
            "lack spatial or temporal operators"
        )

    def sample_batch(
        self,
        count: int,
        rng: np.random.Generator,
        unique: bool = True,
        searchable_only: bool = True,
    ) -> list[ArchHyper]:
        """Draw ``count`` arch-hypers, deduplicated by identity key."""
        samples: list[ArchHyper] = []
        seen: set[str] = set()
        attempts = 0
        while len(samples) < count:
            attempts += 1
            if attempts > _MAX_SAMPLE_ATTEMPTS * max(count, 1):
                raise RuntimeError(
                    f"could not draw {count} unique arch-hypers; space too small"
                )
            candidate = self.sample(rng, searchable_only=searchable_only)
            if unique:
                key = candidate.key()
                if key in seen:
                    continue
                seen.add(key)
            samples.append(candidate)
        return samples

    # ------------------------------------------------------------------
    # Genetic operators (Section 3.3)
    # ------------------------------------------------------------------
    def mutate(self, parent: ArchHyper, rng: np.random.Generator) -> ArchHyper:
        """Return a mutated copy of ``parent`` (one local change)."""
        for _ in range(_MAX_SAMPLE_ATTEMPTS):
            kind = rng.choice(("operator", "topology", "hyper"))
            if kind == "operator":
                child = self._mutate_edge_operator(parent, rng)
            elif kind == "topology":
                child = self._mutate_topology(parent, rng)
            else:
                child = self._mutate_hyper(parent, rng)
            if child.is_searchable() and child.key() != parent.key():
                return child
        return self.sample(rng)

    def crossover(
        self, parent_a: ArchHyper, parent_b: ArchHyper, rng: np.random.Generator
    ) -> ArchHyper:
        """Combine the architecture of one parent with the hyperparameters
        of the other, reconciling the shared node count C."""
        if rng.random() < 0.5:
            parent_a, parent_b = parent_b, parent_a
        arch = parent_a.arch
        hyper = dc_replace(parent_b.hyper, num_nodes=arch.num_nodes)
        child = ArchHyper(arch=arch, hyper=hyper)
        if child.is_searchable():
            return child
        return self.mutate(child, rng)

    # ------------------------------------------------------------------
    # Mutation internals
    # ------------------------------------------------------------------
    def _mutate_edge_operator(
        self, parent: ArchHyper, rng: np.random.Generator
    ) -> ArchHyper:
        edges = list(parent.arch.edges)
        index = int(rng.integers(len(edges)))
        old = edges[index]
        choices = [op for op in self.operators if op != old.op]
        edges[index] = Edge(old.source, old.target, str(rng.choice(choices)))
        arch = Architecture(parent.arch.num_nodes, tuple(edges))
        return ArchHyper(arch=arch, hyper=parent.hyper)

    def _mutate_topology(
        self, parent: ArchHyper, rng: np.random.Generator
    ) -> ArchHyper:
        """Rewire the incoming edges of one randomly chosen non-input node."""
        num_nodes = parent.arch.num_nodes
        target = int(rng.integers(1, num_nodes))
        kept = [e for e in parent.arch.edges if e.target != target]
        sources = {int(rng.integers(0, target))}
        if target > 1 and rng.random() < 0.5:
            sources.add(int(rng.integers(0, target)))
        new_edges = [
            Edge(source, target, str(rng.choice(self.operators)))
            for source in sorted(sources)
        ]
        arch = Architecture(num_nodes, tuple(kept + new_edges))
        return ArchHyper(arch=arch, hyper=parent.hyper)

    def _mutate_hyper(self, parent: ArchHyper, rng: np.random.Generator) -> ArchHyper:
        values = self.hyper_space.as_dict()
        name = str(rng.choice(list(values)))
        choices = [v for v in values[name] if v != getattr_hyper(parent.hyper, name)]
        if not choices:
            return parent
        new_value = int(rng.choice(choices))
        hyper_dict = parent.hyper.to_dict()
        hyper_dict[name] = new_value
        hyper = HyperParameters.from_dict(hyper_dict)
        if name == "C":
            # The node count changed: the DAG must be re-drawn at the new C.
            arch = sample_architecture(hyper.num_nodes, rng, self.operators)
        else:
            arch = parent.arch
        return ArchHyper(arch=arch, hyper=hyper)


_HYPER_FIELDS = {
    "B": "num_blocks",
    "C": "num_nodes",
    "H": "hidden_dim",
    "I": "output_dim",
    "U": "output_mode",
    "delta": "dropout",
}


def getattr_hyper(hyper: HyperParameters, short_name: str) -> int:
    """Read a hyperparameter by its paper symbol (B, C, H, I, U, delta)."""
    return getattr(hyper, _HYPER_FIELDS[short_name])
