"""Encoding of the joint search space (paper Section 3.1.3).

An arch-hyper is encoded as its *dual* graph: DAG edges become nodes (one per
operator), information flow between consecutive operators becomes edges, and
one extra "Hyper" node — connected to every operator node — carries the
normalized hyperparameter vector.  The result is an adjacency matrix ``A_a``
(zero-padded to a fixed size, 14 in the paper) and per-node features: a
one-hot operator id for operator nodes and the r=6 hyperparameter vector for
the Hyper node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arch import CANDIDATE_OPERATORS
from .archhyper import ArchHyper
from .hyperparams import HyperSpace

# C=7 with at most two incoming edges per node yields at most 12 operators;
# plus the Hyper node -> the paper pads adjacency matrices to size 14.
MAX_ENCODING_NODES = 14

HYPER_NODE = 0  # index of the "Hyper" node within the encoding

_OPERATOR_INDEX = {name: i for i, name in enumerate(CANDIDATE_OPERATORS)}


@dataclass(frozen=True)
class ArchHyperEncoding:
    """Padded dual-graph encoding of one arch-hyper.

    Attributes:
        adjacency: ``(M, M)`` float32 with self-loops, zero padded.
        op_indices: ``(M,)`` int64; operator-vocabulary id per node,
            ``-1`` for the Hyper node and padding.
        hyper_vector: ``(r,)`` float32, min-max normalized ``[B,C,H,I,U,δ]``.
        mask: ``(M,)`` float32; 1 for real nodes, 0 for padding.
    """

    adjacency: np.ndarray
    op_indices: np.ndarray
    hyper_vector: np.ndarray
    mask: np.ndarray

    @property
    def size(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_real_nodes(self) -> int:
        return int(self.mask.sum())


def operator_vocabulary() -> tuple[str, ...]:
    """The operator vocabulary used for one-hot node features."""
    return CANDIDATE_OPERATORS


def encode_arch_hyper(
    arch_hyper: ArchHyper,
    space: HyperSpace | None = None,
    max_nodes: int = MAX_ENCODING_NODES,
) -> ArchHyperEncoding:
    """Encode ``arch_hyper`` as its padded dual graph."""
    space = space or HyperSpace()
    edges = arch_hyper.arch.edges
    n_ops = len(edges)
    total = n_ops + 1  # + Hyper node
    if total > max_nodes:
        raise ValueError(
            f"arch-hyper has {n_ops} operators; exceeds encoding size {max_nodes}"
        )

    adjacency = np.zeros((max_nodes, max_nodes), dtype=np.float32)
    # Self-connections on real nodes (Section 3.1.3).
    for i in range(total):
        adjacency[i, i] = 1.0
    # The Hyper node connects to all operator nodes.
    for i in range(1, total):
        adjacency[HYPER_NODE, i] = 1.0
        adjacency[i, HYPER_NODE] = 1.0
    # Dual edges: operator (i->j) feeds operator (j->k).
    for a, edge_a in enumerate(edges):
        for b, edge_b in enumerate(edges):
            if edge_a.target == edge_b.source:
                adjacency[1 + a, 1 + b] = 1.0

    op_indices = np.full(max_nodes, -1, dtype=np.int64)
    for a, edge in enumerate(edges):
        if edge.op not in _OPERATOR_INDEX:
            raise KeyError(
                f"operator {edge.op!r} is not in the encoding vocabulary "
                f"{CANDIDATE_OPERATORS}; comparators must be retrained with "
                "an extended vocabulary before ranking custom operators"
            )
        op_indices[1 + a] = _OPERATOR_INDEX[edge.op]

    mask = np.zeros(max_nodes, dtype=np.float32)
    mask[:total] = 1.0

    return ArchHyperEncoding(
        adjacency=adjacency,
        op_indices=op_indices,
        hyper_vector=arch_hyper.hyper.normalized_vector(space),
        mask=mask,
    )


def encode_batch(
    arch_hypers: list[ArchHyper],
    space: HyperSpace | None = None,
    max_nodes: int = MAX_ENCODING_NODES,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Encode many arch-hypers into stacked arrays for batched GIN encoding.

    Returns ``(adjacency (B,M,M), op_indices (B,M), hyper (B,r), mask (B,M))``.
    """
    encodings = [encode_arch_hyper(ah, space, max_nodes) for ah in arch_hypers]
    return (
        np.stack([e.adjacency for e in encodings]),
        np.stack([e.op_indices for e in encodings]),
        np.stack([e.hyper_vector for e in encodings]),
        np.stack([e.mask for e in encodings]),
    )
