"""The architecture search space: ST-block DAGs (Section 3.1.1).

An ST-block is a DAG of ``C`` latent nodes; each directed edge ``(i, j)``
with ``i < j`` carries one operator from the candidate set
``{GDCC, INF-T, DGCN, INF-S, identity}``.  Topological-connection rules:

1. at most one edge between any node pair, always forward (``i < j``),
2. each non-input node has at least one and at most two incoming edges
   (matching the derivation rule of supernet-based predecessors),
3. every non-input node is reachable from the input node ``h_0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# The candidate operator set O of the paper (Section 3.1.1).
T_OPERATORS = ("gdcc", "inf_t")
S_OPERATORS = ("dgcn", "inf_s")
IDENTITY_OPERATOR = "skip"
CANDIDATE_OPERATORS = T_OPERATORS + S_OPERATORS + (IDENTITY_OPERATOR,)

# Edge validation accepts the paper's candidates plus any operator name that
# was registered afterwards (Section 3.1.1's "easily accommodate additional
# operators").  repro.operators.register_operator keeps this in sync.
KNOWN_OPERATOR_NAMES: set[str] = set(CANDIDATE_OPERATORS)

MAX_INCOMING_EDGES = 2


def register_operator_name(name: str) -> None:
    """Allow ``name`` to appear on architecture edges."""
    if not name:
        raise ValueError("operator names must be non-empty")
    KNOWN_OPERATOR_NAMES.add(name)


@dataclass(frozen=True, order=True)
class Edge:
    """A directed, operator-labelled edge of an ST-block DAG."""

    source: int
    target: int
    op: str

    def __post_init__(self) -> None:
        if self.source >= self.target:
            raise ValueError(f"edges must be forward (i < j): {self}")
        if self.source < 0:
            raise ValueError(f"negative node index: {self}")
        if self.op not in KNOWN_OPERATOR_NAMES:
            raise ValueError(
                f"unknown operator {self.op!r}; "
                f"known: {sorted(KNOWN_OPERATOR_NAMES)}"
            )


@dataclass(frozen=True)
class Architecture:
    """An ST-block DAG: ``num_nodes`` latent nodes plus labelled edges."""

    num_nodes: int
    edges: tuple[Edge, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges", tuple(sorted(self.edges)))
        self.validate()

    # ------------------------------------------------------------------
    # Validity (the topological-connection rules)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("an ST-block needs at least two nodes")
        seen_pairs: set[tuple[int, int]] = set()
        incoming: dict[int, int] = {}
        for edge in self.edges:
            if edge.target >= self.num_nodes:
                raise ValueError(f"edge {edge} exceeds num_nodes={self.num_nodes}")
            pair = (edge.source, edge.target)
            if pair in seen_pairs:
                raise ValueError(f"duplicate edge between nodes {pair}")
            seen_pairs.add(pair)
            incoming[edge.target] = incoming.get(edge.target, 0) + 1
        for node in range(1, self.num_nodes):
            count = incoming.get(node, 0)
            if count == 0:
                raise ValueError(f"node {node} has no incoming edge")
            if count > MAX_INCOMING_EDGES:
                raise ValueError(
                    f"node {node} has {count} incoming edges "
                    f"(max {MAX_INCOMING_EDGES})"
                )
        if not self._all_reachable():
            raise ValueError("not every node is reachable from the input node")

    def _all_reachable(self) -> bool:
        reachable = {0}
        for edge in self.edges:  # edges sorted by (source, target): one pass works
            if edge.source in reachable:
                reachable.add(edge.target)
        return len(reachable) == self.num_nodes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def operator_counts(self) -> dict[str, int]:
        counts = {op: 0 for op in CANDIDATE_OPERATORS}
        for edge in self.edges:
            counts[edge.op] += 1
        return counts

    def has_spatial_operator(self) -> bool:
        return any(edge.op in S_OPERATORS for edge in self.edges)

    def has_temporal_operator(self) -> bool:
        return any(edge.op in T_OPERATORS for edge in self.edges)

    def incoming_edges(self, node: int) -> list[Edge]:
        return [edge for edge in self.edges if edge.target == node]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "edges": [(e.source, e.target, e.op) for e in self.edges],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Architecture":
        return cls(
            num_nodes=d["num_nodes"],
            edges=tuple(Edge(s, t, op) for s, t, op in d["edges"]),
        )

    def __str__(self) -> str:
        body = ", ".join(f"{e.source}-[{e.op}]->{e.target}" for e in self.edges)
        return f"Arch(C={self.num_nodes}: {body})"


def sample_architecture(
    num_nodes: int, rng: np.random.Generator, operators=CANDIDATE_OPERATORS
) -> Architecture:
    """Sample a valid random ST-block DAG with ``num_nodes`` nodes.

    Each non-input node receives one mandatory predecessor (guaranteeing
    reachability) and, with probability 1/2, a second one — mirroring the
    1–2 incoming edges retained by supernet derivation.
    """
    edges: list[Edge] = []
    for target in range(1, num_nodes):
        sources = {int(rng.integers(0, target))}
        if target > 1 and rng.random() < 0.5:
            sources.add(int(rng.integers(0, target)))
        for source in sorted(sources):
            op = str(rng.choice(operators))
            edges.append(Edge(source, target, op))
    return Architecture(num_nodes=num_nodes, edges=tuple(edges))
