"""Arch-hyper pairs: the elements of the joint search space (Section 3.1).

An :class:`ArchHyper` couples an ST-block :class:`Architecture` with a
:class:`HyperParameters` setting.  It is the unit that the comparator ranks,
the evolutionary algorithm evolves, and the forecaster builder consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .arch import Architecture
from .hyperparams import HyperParameters


@dataclass(frozen=True)
class ArchHyper:
    """A point in the joint architecture-hyperparameter search space."""

    arch: Architecture
    hyper: HyperParameters

    def __post_init__(self) -> None:
        if self.arch.num_nodes != self.hyper.num_nodes:
            raise ValueError(
                f"architecture has {self.arch.num_nodes} nodes but the "
                f"hyperparameters specify C={self.hyper.num_nodes}"
            )

    def is_searchable(self) -> bool:
        """The search-strategy filter of Section 3.3.

        Arch-hypers lacking either spatial or temporal operators forecast
        poorly and are removed before ranking.
        """
        return self.arch.has_spatial_operator() and self.arch.has_temporal_operator()

    # ------------------------------------------------------------------
    # Identity and serialization
    # ------------------------------------------------------------------
    def key(self) -> str:
        """A stable, hashable identity string (used for dedup and caching)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def to_dict(self) -> dict:
        return {"arch": self.arch.to_dict(), "hyper": self.hyper.to_dict()}

    @classmethod
    def from_dict(cls, d: dict) -> "ArchHyper":
        return cls(
            arch=Architecture.from_dict(d["arch"]),
            hyper=HyperParameters.from_dict(d["hyper"]),
        )

    def __str__(self) -> str:
        return f"ArchHyper({self.hyper} | {self.arch})"
