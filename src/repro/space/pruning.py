"""Task-adaptive search-space pruning (the paper's future-work direction).

Section 6 notes that the manually designed joint search space "may miss some
flexibility" and proposes exploring *automated* search-space construction per
task.  This module implements the natural first step: given proxy-measured
samples on (tasks similar to) the target task, shrink the space to the
operators and hyperparameter values that appear in the top-performing
quantile, so subsequent search spends its budget in the promising region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arch import S_OPERATORS, T_OPERATORS
from .archhyper import ArchHyper
from .hyperparams import HyperSpace
from .sampling import JointSearchSpace


@dataclass(frozen=True)
class PruningConfig:
    """Keep what the best ``quantile`` of measured samples uses."""

    quantile: float = 0.5
    min_operators: int = 3  # never prune below one S, one T, and identity
    min_values_per_hyper: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.quantile <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {self.quantile}")


def _top_samples(
    measured: list[tuple[ArchHyper, float]], quantile: float
) -> list[ArchHyper]:
    scores = np.array([score for _, score in measured])
    cutoff = np.quantile(scores, quantile)
    return [ah for ah, score in measured if score <= cutoff]


def prune_space(
    space: JointSearchSpace,
    measured: list[tuple[ArchHyper, float]],
    config: PruningConfig = PruningConfig(),
) -> JointSearchSpace:
    """Shrink ``space`` to the region populated by the best measured samples.

    ``measured`` pairs arch-hypers with error scores (lower better).  The
    pruned space always remains *searchable*: at least one spatial and one
    temporal operator are kept, and every hyperparameter keeps at least
    ``min_values_per_hyper`` values.
    """
    if len(measured) < 2:
        raise ValueError("pruning needs at least two measured samples")
    top = _top_samples(measured, config.quantile)

    used_operators = {edge.op for ah in top for edge in ah.arch.edges}
    keep_ops = [op for op in space.operators if op in used_operators]
    # Guarantee searchability of the pruned space.
    if not any(op in S_OPERATORS for op in keep_ops):
        keep_ops.extend(op for op in space.operators if op in S_OPERATORS)
    if not any(op in T_OPERATORS for op in keep_ops):
        keep_ops.extend(op for op in space.operators if op in T_OPERATORS)
    keep_ops = tuple(dict.fromkeys(keep_ops))  # dedupe, keep order

    old = space.hyper_space.as_dict()
    kept_values: dict[str, tuple[int, ...]] = {}
    for key, values in old.items():
        used = {ah.hyper.to_dict()[key] for ah in top}
        kept = tuple(v for v in values if v in used)
        if len(kept) < config.min_values_per_hyper:
            kept = values
        kept_values[key] = kept
    pruned_hyper = HyperSpace(
        num_blocks=kept_values["B"],
        num_nodes=kept_values["C"],
        hidden_dims=kept_values["H"],
        output_dims=kept_values["I"],
        output_modes=kept_values["U"],
        dropout=kept_values["delta"],
    )
    return JointSearchSpace(hyper_space=pruned_hyper, operators=keep_ops)


def space_reduction(original: JointSearchSpace, pruned: JointSearchSpace) -> float:
    """Fraction of hyperparameter-space cardinality removed by pruning."""
    before = original.hyper_space.cardinality
    after = pruned.hyper_space.cardinality
    return 1.0 - after / before
