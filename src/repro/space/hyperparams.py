"""The hyperparameter search space (paper Table 2).

Structural hyperparameters (B, C, H, I, U) shape the ST-backbone; the
training hyperparameter δ toggles dropout.  A concrete choice is a
:class:`HyperParameters` value, representable as the r=6-dimensional vector
``[B, C, H, I, U, δ]`` used by the "Hyper" node encoding of Section 3.1.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np


@dataclass(frozen=True)
class HyperSpace:
    """Candidate values for each hyperparameter.

    Defaults are the paper's Table 2.  Benchmarks running on CPU instantiate
    a scaled-down variant (see ``repro.experiments.config``); the space
    semantics are identical.
    """

    num_blocks: tuple[int, ...] = (2, 4, 6)  # B
    num_nodes: tuple[int, ...] = (5, 7)  # C
    hidden_dims: tuple[int, ...] = (32, 48, 64)  # H
    output_dims: tuple[int, ...] = (64, 128, 256)  # I
    output_modes: tuple[int, ...] = (0, 1)  # U
    dropout: tuple[int, ...] = (0, 1)  # δ

    def __post_init__(self) -> None:
        for name, values in self.as_dict().items():
            if not values:
                raise ValueError(f"hyperparameter {name} has no candidate values")

    def as_dict(self) -> dict[str, tuple[int, ...]]:
        return {
            "B": self.num_blocks,
            "C": self.num_nodes,
            "H": self.hidden_dims,
            "I": self.output_dims,
            "U": self.output_modes,
            "delta": self.dropout,
        }

    @property
    def cardinality(self) -> int:
        """Number of distinct hyperparameter vectors in the space."""
        return int(np.prod([len(v) for v in self.as_dict().values()]))

    def sample(self, rng: np.random.Generator) -> "HyperParameters":
        """Draw one hyperparameter setting uniformly at random."""
        return HyperParameters(
            num_blocks=int(rng.choice(self.num_blocks)),
            num_nodes=int(rng.choice(self.num_nodes)),
            hidden_dim=int(rng.choice(self.hidden_dims)),
            output_dim=int(rng.choice(self.output_dims)),
            output_mode=int(rng.choice(self.output_modes)),
            dropout=int(rng.choice(self.dropout)),
        )

    def enumerate(self):
        """Iterate every hyperparameter vector in the space."""
        for b, c, h, i, u, d in product(
            self.num_blocks,
            self.num_nodes,
            self.hidden_dims,
            self.output_dims,
            self.output_modes,
            self.dropout,
        ):
            yield HyperParameters(b, c, h, i, u, d)

    def contains(self, hp: "HyperParameters") -> bool:
        return (
            hp.num_blocks in self.num_blocks
            and hp.num_nodes in self.num_nodes
            and hp.hidden_dim in self.hidden_dims
            and hp.output_dim in self.output_dims
            and hp.output_mode in self.output_modes
            and hp.dropout in self.dropout
        )

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-component min/max, used for min-max normalization (Eq. 7)."""
        values = list(self.as_dict().values())
        lows = np.array([min(v) for v in values], dtype=np.float32)
        highs = np.array([max(v) for v in values], dtype=np.float32)
        return lows, highs


@dataclass(frozen=True)
class HyperParameters:
    """One concrete hyperparameter setting, the r=6 vector of the paper."""

    num_blocks: int  # B: ST-blocks in the backbone
    num_nodes: int  # C: nodes per ST-block
    hidden_dim: int  # H: S/T-operator hidden dimension
    output_dim: int  # I: output-module dimension
    output_mode: int  # U: 0 = last node, 1 = sum of intermediate nodes
    dropout: int  # δ: 1 = use dropout while training

    def __post_init__(self) -> None:
        if self.num_blocks < 1 or self.num_nodes < 2:
            raise ValueError(f"degenerate hyperparameters: {self}")
        if self.output_mode not in (0, 1) or self.dropout not in (0, 1):
            raise ValueError(f"U and δ must be binary: {self}")

    def to_vector(self) -> np.ndarray:
        """The paper's ``[B, C, H, I, U, δ]`` feature vector."""
        return np.array(
            [
                self.num_blocks,
                self.num_nodes,
                self.hidden_dim,
                self.output_dim,
                self.output_mode,
                self.dropout,
            ],
            dtype=np.float32,
        )

    def normalized_vector(self, space: HyperSpace) -> np.ndarray:
        """Min-max normalized vector (Eq. 7)."""
        lows, highs = space.bounds()
        span = np.where(highs > lows, highs - lows, 1.0)
        return (self.to_vector() - lows) / span

    def to_dict(self) -> dict[str, int]:
        return {
            "B": self.num_blocks,
            "C": self.num_nodes,
            "H": self.hidden_dim,
            "I": self.output_dim,
            "U": self.output_mode,
            "delta": self.dropout,
        }

    @classmethod
    def from_dict(cls, d: dict[str, int]) -> "HyperParameters":
        return cls(d["B"], d["C"], d["H"], d["I"], d["U"], d["delta"])

    def __str__(self) -> str:
        return (
            f"B={self.num_blocks}, C={self.num_nodes}, H={self.hidden_dim}, "
            f"I={self.output_dim}, U={self.output_mode}, δ={self.dropout}"
        )
