"""Attention layers.

Provides standard multi-head self/cross attention over ``(B, L, D)`` inputs
and the Informer-style *ProbSparse* variant, which restricts full attention
to the top-``u`` most "active" queries (measured by the max-minus-mean score
sparsity heuristic of Zhou et al., AAAI 2021) and fills the remaining rows
with the mean of the values.  ProbSparse is what the paper's INF-T and INF-S
operators build on.
"""

from __future__ import annotations

import math

import numpy as np

from ..autodiff import Tensor, concat, matmul, no_grad, softmax
from . import init
from .dropout import Dropout
from .linear import Linear
from .module import Module


def scaled_dot_product_attention(
    q: Tensor, k: Tensor, v: Tensor, mask: np.ndarray | None = None
) -> Tensor:
    """Attention over the second-to-last axis; shapes (..., L, D)."""
    scale = 1.0 / math.sqrt(q.shape[-1])
    scores = matmul(q, k.transpose(*range(k.ndim - 2), k.ndim - 1, k.ndim - 2)) * scale
    if mask is not None:
        scores = scores + np.where(mask, 0.0, -1e9).astype(np.float32)
    return matmul(softmax(scores, axis=-1), v)


class MultiHeadAttention(Module):
    """Standard multi-head attention over (B, L, D) tensors."""

    def __init__(
        self,
        dim: int,
        num_heads: int = 4,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = init.resolve_rng(rng)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, seed=int(rng.integers(2**31)))

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, _, length, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)

    def forward(
        self,
        query: Tensor,
        key: Tensor | None = None,
        value: Tensor | None = None,
        mask: np.ndarray | None = None,
    ) -> Tensor:
        key = query if key is None else key
        value = key if value is None else value
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))
        attended = scaled_dot_product_attention(q, k, v, mask=mask)
        return self.dropout(self.out_proj(self._merge_heads(attended)))


class ProbSparseAttention(Module):
    """Informer's ProbSparse self-attention over (B, L, D) tensors.

    Only the ``u = ceil(factor * ln L)`` queries with the largest sparsity
    measurement ``max_j(score_ij) - mean_j(score_ij)`` attend over all keys;
    the remaining rows output the mean of the values, matching the Informer
    formulation.  For short sequences (``u >= L``) this reduces to full
    attention, which keeps tiny CPU-scale models exact.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 4,
        factor: float = 2.0,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = init.resolve_rng(rng)
        self.factor = factor
        self.inner = MultiHeadAttention(dim, num_heads, dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[1]
        u = max(1, int(math.ceil(self.factor * math.log(max(length, 2)))))
        if u >= length:
            return self.inner(x)
        # Score query activity on detached data; selection is not differentiable.
        with no_grad(), np.errstate(over="ignore", invalid="ignore"):
            q = self.inner._split_heads(self.inner.q_proj(x.detach()))
            k = self.inner._split_heads(self.inner.k_proj(x.detach()))
            scores = np.matmul(q.data, np.swapaxes(k.data, -1, -2))
            # Guard the selection heuristic: extreme inputs can overflow the
            # raw scores, and a NaN/Inf sparsity would make argpartition
            # nondeterministic.  The heuristic only picks rows, so clamping
            # to finite values keeps selection well-defined without touching
            # the differentiable path.
            scores = np.nan_to_num(scores, copy=False)
            sparsity = scores.max(axis=-1) - scores.mean(axis=-1)  # (B, H, L)
            activity = sparsity.mean(axis=1)  # (B, L): head-averaged
        # Use one shared top-u set per batch element (batch-major gather).
        top = np.argpartition(-activity, u - 1, axis=-1)[:, :u]  # (B, u)
        top = np.sort(top, axis=-1)
        batch_index = np.arange(x.shape[0])[:, None]
        active = x[batch_index, top]  # (B, u, D)
        attended_active = self.inner(active, x, x)  # (B, u, D)
        # Lazy rows: mean of values, the Informer fallback.
        v = self.inner.v_proj(x)
        fallback = self.inner.out_proj(v.mean(axis=1, keepdims=True))
        filler = concat([fallback] * length, axis=1)  # (B, L, D)
        scatter = np.zeros((x.shape[0], length, 1), dtype=np.float32)
        scatter[batch_index, top] = 1.0
        spread = _scatter_rows(attended_active, top, length)
        return spread * scatter + filler * (1.0 - scatter)


def _scatter_rows(values: Tensor, index: np.ndarray, length: int) -> Tensor:
    """Place rows of ``values`` (B, u, D) at ``index`` (B, u) in (B, L, D)."""
    from ..autodiff.tensor import make_op

    batch, u, dim = values.shape
    out = np.zeros((batch, length, dim), dtype=values.data.dtype)
    batch_index = np.arange(batch)[:, None]
    out[batch_index, index] = values.data

    def backward(grad):
        return (grad[batch_index, index],)

    return make_op(out, (values,), backward)
