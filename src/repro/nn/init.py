"""Parameter initializers.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is fully deterministic under a seed — a requirement for the
reproducibility experiments.

Layers accept ``rng=None`` for convenience; :func:`resolve_rng` turns that
into the documented default stream (seed ``DEFAULT_INIT_SEED``) in one
place, so "unseeded" layer construction is explicit, reproducible, and
greppable rather than an inline ``np.random.default_rng(0)`` scattered per
constructor.
"""

from __future__ import annotations

import numpy as np

from ..autodiff.tensor import DEFAULT_DTYPE

# The seed behind every ``rng=None`` layer construction.  Explicitly seeded
# experiments should pass their own generator (usually via
# ``repro.utils.seeding.derive_rng``) instead of relying on this.
DEFAULT_INIT_SEED = 0


def resolve_rng(rng: np.random.Generator | None) -> np.random.Generator:
    """Pass an explicit generator through; ``None`` becomes a fresh
    seed-``DEFAULT_INIT_SEED`` generator (the documented layer default)."""
    return rng if rng is not None else np.random.default_rng(DEFAULT_INIT_SEED)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def kaiming_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """He uniform initialization suited to ReLU nonlinearities."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """Zero-mean Gaussian initialization with the given standard deviation."""
    return (rng.standard_normal(shape) * std).astype(DEFAULT_DTYPE)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-ones initialization (normalization gains)."""
    return np.ones(shape, dtype=DEFAULT_DTYPE)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer shapes must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out
