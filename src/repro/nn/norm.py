"""Normalization layers."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, mean, sqrt, variance
from . import init
from .module import Module, Parameter


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, normalized_size: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones((normalized_size,)))
        self.beta = Parameter(init.zeros((normalized_size,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = mean(x, axis=-1, keepdims=True)
        var = variance(x, axis=-1, keepdims=True)
        normalized = (x - mu) / sqrt(var + self.eps)
        return normalized * self.gamma + self.beta


class ChannelNorm2d(Module):
    """Normalize the channel axis of a (B, C, N, T) tensor.

    This plays the role of Graph WaveNet's BatchNorm2d between ST-block
    layers: it stabilizes the scale of latent representations while staying
    batch-size independent (important for the tiny batches used on CPU).
    """

    def __init__(self, channels: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones((channels,)))
        self.beta = Parameter(init.zeros((channels,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = mean(x, axis=1, keepdims=True)
        var = variance(x, axis=1, keepdims=True)
        normalized = (x - mu) / sqrt(var + self.eps)
        shape = (1, -1, 1, 1)
        return normalized * self.gamma.reshape(shape) + self.beta.reshape(shape)
