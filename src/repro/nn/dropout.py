"""Dropout regularization."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, dropout_mask
from .module import Module


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode or when ``rate == 0``.

    The layer owns its own ``numpy.random.Generator`` so dropout noise is
    reproducible under a seed and independent of global random state.
    """

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        return dropout_mask(x, self.rate, self._rng)
