"""Fully-connected layers."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, matmul
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W^T + b`` applied over the last axis of ``x``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = init.resolve_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, (out_features, in_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = matmul(x, self.weight.transpose())
        if self.bias is not None:
            out = out + self.bias
        return out


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between layers."""

    def __init__(
        self,
        sizes: list[int],
        rng: np.random.Generator | None = None,
        activate_final: bool = False,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        rng = init.resolve_rng(rng)
        from .module import ModuleList

        self.layers = ModuleList(
            Linear(sizes[i], sizes[i + 1], rng=rng) for i in range(len(sizes) - 1)
        )
        self.activate_final = activate_final

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < last or self.activate_final:
                x = x.relu()
        return x
