"""Loss functions.

The CTS forecasting models train with MAE (the paper's training objective);
the comparators train with binary cross-entropy on pairwise labels.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, absolute, as_tensor, clip, log, mean, sigmoid


def mae_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error, the paper's forecasting training objective."""
    target = as_tensor(target)
    return mean(absolute(prediction - target))


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target)
    diff = prediction - target
    return mean(diff * diff)


def masked_mae_loss(prediction: Tensor, target, null_value: float = 0.0) -> Tensor:
    """MAE ignoring positions equal to ``null_value`` (missing sensor data)."""
    target_data = np.asarray(as_tensor(target).data)
    mask = (target_data != null_value).astype(np.float32)
    denom = max(float(mask.sum()), 1.0)
    weighted = absolute(prediction - target) * Tensor(mask)
    return weighted.sum() / denom


def bce_with_logits(logits: Tensor, labels) -> Tensor:
    """Numerically safe binary cross-entropy on raw logits."""
    probs = clip(sigmoid(logits), 1e-7, 1.0 - 1e-7)
    labels = as_tensor(labels)
    return -mean(labels * log(probs) + (1.0 - labels) * log(1.0 - probs))


def hinge_rank_loss(score_a: Tensor, score_b: Tensor, margin: float = 0.1) -> Tensor:
    """Margin ranking loss used by the ranking-quality ablation."""
    from ..autodiff import maximum

    return mean(maximum(margin - (score_a - score_b), 0.0))
