"""Loss functions.

The CTS forecasting models train with MAE (the paper's training objective);
the comparators train with binary cross-entropy on pairwise labels.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, absolute, as_tensor, mean
from ..autodiff.fused import fused_kernels_enabled, mean_absolute_error
from ..autodiff.tensor import make_op


def mae_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error, the paper's forecasting training objective."""
    target = as_tensor(target)
    if fused_kernels_enabled():
        return mean_absolute_error(prediction, target)
    # Unfused chain: bitwise-identical; kept for anomaly-mode provenance and
    # the $REPRO_REFERENCE_KERNELS benchmark baseline.
    return mean(absolute(prediction - target))


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target)
    diff = prediction - target
    return mean(diff * diff)


def masked_mae_loss(
    prediction: Tensor,
    target,
    mask: np.ndarray | None = None,
    null_value: float | None = None,
) -> Tensor:
    """MAE over *observed* target positions only.

    ``mask`` is an explicit boolean observation array (broadcastable to the
    target, ``True`` = score this position) — the form every mask-aware
    caller should use.  ``null_value`` is the deprecated legacy sentinel: it
    drops positions whose target *equals* the sentinel, which silently
    discards legitimate zero readings (ubiquitous after standardization).
    It is kept only for callers that cannot produce a mask; passing neither
    falls back to ``null_value=0.0`` with a :class:`DeprecationWarning`.
    An all-masked target yields a zero loss (denominator clamps at 1).
    """
    if mask is not None and null_value is not None:
        raise ValueError("pass either mask or null_value, not both")
    target_data = np.asarray(as_tensor(target).data)
    if mask is not None:
        mask = np.broadcast_to(np.asarray(mask), target_data.shape)
        weights = mask.astype(np.float32)
    else:
        if null_value is None:
            import warnings

            warnings.warn(
                "masked_mae_loss without an explicit mask falls back to the "
                "null_value=0.0 sentinel, which drops legitimate zero "
                "targets; pass mask= (preferred) or null_value= explicitly",
                DeprecationWarning,
                stacklevel=2,
            )
            null_value = 0.0
        weights = (target_data != null_value).astype(np.float32)
    denom = max(float(weights.sum()), 1.0)
    weighted = absolute(prediction - target) * Tensor(weights)
    return weighted.sum() / denom


def bce_with_logits(logits: Tensor, labels) -> Tensor:
    """Binary cross-entropy on raw logits, in the log-sigmoid formulation.

    Computes ``mean(max(x, 0) - x*y + log1p(exp(-|x|)))``, which is exact
    and finite for every finite logit: ``exp(-|x|)`` never overflows and
    ``log1p`` never sees zero, unlike the clipped ``log(sigmoid(x))`` form
    this replaces (which saturated — zero gradient — beyond the clip range
    and biased the loss near it).  The gradient is the textbook
    ``sigmoid(x) - y``.
    """
    logits = as_tensor(logits)
    labels = as_tensor(labels)
    x, y = logits.data, labels.data
    out = np.maximum(x, 0.0) - x * y + np.log1p(np.exp(-np.abs(x)))

    def bce_backward(grad):
        positive = x >= 0
        e = np.exp(np.where(positive, -x, x))
        sig = np.where(positive, 1.0 / (1.0 + e), e / (1.0 + e))
        return grad * (sig - y), grad * (-x)

    return mean(make_op(out, (logits, labels), bce_backward))


def hinge_rank_loss(score_a: Tensor, score_b: Tensor, margin: float = 0.1) -> Tensor:
    """Margin ranking loss used by the ranking-quality ablation."""
    from ..autodiff import maximum

    return mean(maximum(margin - (score_a - score_b), 0.0))
