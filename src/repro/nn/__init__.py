"""Neural-network layer library built on :mod:`repro.autodiff`."""

from .module import Module, ModuleList, Parameter, Sequential
from .linear import Linear, MLP
from .conv import CausalConv2d, Conv1d, PointwiseConv2d, conv1d, conv2d_1xk
from .norm import ChannelNorm2d, LayerNorm
from .dropout import Dropout
from .attention import (
    MultiHeadAttention,
    ProbSparseAttention,
    scaled_dot_product_attention,
)
from .loss import (
    bce_with_logits,
    hinge_rank_loss,
    mae_loss,
    masked_mae_loss,
    mse_loss,
)
from . import init

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "MLP",
    "CausalConv2d",
    "Conv1d",
    "PointwiseConv2d",
    "conv1d",
    "conv2d_1xk",
    "ChannelNorm2d",
    "LayerNorm",
    "Dropout",
    "MultiHeadAttention",
    "ProbSparseAttention",
    "scaled_dot_product_attention",
    "bce_with_logits",
    "hinge_rank_loss",
    "mae_loss",
    "masked_mae_loss",
    "mse_loss",
    "init",
]
