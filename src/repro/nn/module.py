"""Module system for the neural substrate.

:class:`Module` mirrors the relevant parts of ``torch.nn.Module``: parameter
registration by attribute assignment, recursive traversal, train/eval modes,
and state-dict (de)serialization.  :class:`Parameter` is a ``Tensor`` with
``requires_grad=True`` that modules recognise during traversal.
"""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from ..autodiff import Tensor
from ..autodiff.anomaly import anomaly_enabled, current_module_path, module_scope
from ..obs.profile import profiling_enabled, record_forward


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its submodules."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, recursing into children."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every submodule, depth first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters (a proxy for model capacity)."""
        return int(np.sum([p.size for p in self.parameters()], dtype=np.int64))

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy all parameter arrays keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict`; strict name/shape check."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.shape}, got {value.shape}"
                )
            param.data = value.astype(param.data.dtype, copy=True)

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        if profiling_enabled():
            # Same module_scope stamping as anomaly mode, so a profiled
            # forward is attributed to its full path (AHC/GIN/Linear).  The
            # timing never feeds back into computation.
            with module_scope(type(self).__name__):
                path = current_module_path()
                started = time.perf_counter()
                try:
                    return self.forward(*args, **kwargs)
                finally:
                    record_forward(path, time.perf_counter() - started)
        if anomaly_enabled():
            # Record the module chain so a NonFiniteError can name the
            # creating module path, not just the raw op.
            with module_scope(type(self).__name__):
                return self.forward(*args, **kwargs)
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """Hold submodules in a list, registering each for traversal."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        """Add ``module`` to the list and register it for traversal."""
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
