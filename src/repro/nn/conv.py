"""Convolution layers.

CTS forecasting models in this library follow the Graph WaveNet tensor layout
``(batch, channels, num_nodes, time)``.  Temporal convolutions therefore use
kernels of shape ``(1, K)`` with dilation along the time axis and *causal*
left-padding so that position ``t`` never sees the future.

Two kernel implementations coexist (see ``docs/performance.md``):

* the **im2col path** (default): :func:`im2col_conv` gathers the dilated
  taps with ``np.lib.stride_tricks.sliding_window_view`` into one
  ``(B, C·K, S)`` matrix and runs a *single* gemm per conv — with a col2im
  scatter for the input gradient — instead of a Python loop of ``K``
  per-tap matmuls; :func:`channel_mix` is the 1x1 special case (no gather
  at all, just a reshaped gemm),
* the **reference path**: the original per-tap loop composed from autodiff
  primitives, selected by ``$REPRO_REFERENCE_KERNELS``.  It is the oracle
  the equivalence tests compare against and the honest "before" measured by
  ``benchmarks/bench_train_step.py``.

Both paths reuse pooled ``out=`` buffers when a
:class:`~repro.autodiff.pool.BufferPool` is active.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..autodiff import Tensor, matmul, pad
from ..autodiff.fused import reference_kernels
from ..autodiff.pool import take_buffer
from ..autodiff.tensor import _needs_grad, as_tensor, make_op
from . import init
from .module import Module, Parameter


# ---------------------------------------------------------------------------
# im2col primitives (single-gemm forward, col2im-scatter backward)
# ---------------------------------------------------------------------------


def _empty(shape: tuple[int, ...], dtype) -> np.ndarray:
    buffer = take_buffer(shape, dtype)
    return buffer if buffer is not None else np.empty(shape, dtype)


def im2col_conv(
    x, weight, dilation: int = 1, left: int = 0, right: int = 0
) -> Tensor:
    """Convolve ``x (B, C_in, *spatial, T)`` with ``weight (C_out, C_in, K)``
    along the trailing time axis, zero-padding ``left``/``right`` steps.

    Forward: dilated taps are gathered through a zero-copy
    ``sliding_window_view`` into an im2col matrix ``(B, C_in·K, S·T_out)``
    (one vectorized copy) and contracted with the ``(C_out, C_in·K)``
    reshaped weight in a single gemm.  Backward: the weight gradient is one
    ``tensordot`` against the retained im2col matrix; the input gradient is
    one gemm followed by a col2im scatter-add over the ``K`` taps.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    xd, wd = x.data, weight.data
    kernel = wd.shape[-1]
    receptive = (kernel - 1) * dilation
    if left or right:
        padded = xd.shape[:-1] + (xd.shape[-1] + left + right,)
        xp = _empty(padded, xd.dtype)
        if left:
            xp[..., :left] = 0
        if right:
            xp[..., padded[-1] - right :] = 0
        xp[..., left : padded[-1] - right] = xd
    else:
        xp = xd
    batch, cin = xp.shape[0], xp.shape[1]
    spatial = xp.shape[2:-1]  # () for 1-D convs, (N,) for the CTS layout
    tpad = xp.shape[-1]
    tout = tpad - receptive
    cout = wd.shape[0]
    dtype = np.result_type(xd, wd)
    flat = int(np.prod(spatial, dtype=np.int64)) * tout

    # (B, C, *spatial, T_out, K) strided view of the dilated taps — no copy.
    taps = sliding_window_view(xp, receptive + 1, axis=-1)[..., ::dilation]
    cols = _empty((batch, cin * kernel, flat), dtype)
    np.copyto(
        cols.reshape((batch, cin, kernel) + spatial + (tout,)),
        np.moveaxis(taps, -1, 2),
    )
    w2 = wd.reshape(cout, cin * kernel)
    out3 = np.matmul(w2, cols, out=take_buffer((batch, cout, flat), dtype))
    out = out3.reshape((batch, cout) + spatial + (tout,))

    def backward(grad):
        g3 = grad.reshape(batch, cout, flat)
        gx = gw = None
        if _needs_grad(weight):
            # Batched gemm + reduce beats tensordot here: tensordot must
            # materialize transposed copies of both operands before its
            # single gemm, and the im2col matrix is the largest array in
            # the layer.
            gw = np.matmul(g3, cols.transpose(0, 2, 1)).sum(axis=0)
            gw = gw.reshape(wd.shape)
        if _needs_grad(x):
            gdtype = np.result_type(w2, g3)
            gcols = np.matmul(
                w2.transpose(), g3, out=take_buffer((batch, cin * kernel, flat), gdtype)
            )
            g5 = gcols.reshape((batch, cin, kernel) + spatial + (tout,))
            gxp = _empty((batch, cin) + spatial + (tpad,), gdtype)
            gxp.fill(0.0)
            for k in range(kernel):
                start = k * dilation
                gxp[..., start : start + tout] += g5[:, :, k]
            gx = gxp[..., left : tpad - right] if (left or right) else gxp
        return gx, gw

    return make_op(out, (x, weight), backward)


def channel_mix(x, weight) -> Tensor:
    """1x1 convolution ``(C_out, C_in)`` over ``x (B, C_in, *spatial)``.

    The im2col degenerate case: no tap gather, just one gemm against the
    channel axis through a free reshape — replacing the reference path's
    transpose → matmul → transpose round trip.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    xd, wd = x.data, weight.data
    batch, cin = xd.shape[0], xd.shape[1]
    spatial = xd.shape[2:]
    flat = int(np.prod(spatial, dtype=np.int64))
    cout = wd.shape[0]
    dtype = np.result_type(xd, wd)
    x3 = xd.reshape(batch, cin, flat)
    out3 = np.matmul(wd, x3, out=take_buffer((batch, cout, flat), dtype))
    out = out3.reshape((batch, cout) + spatial)

    def backward(grad):
        g3 = grad.reshape(batch, cout, flat)
        gx = gw = None
        if _needs_grad(weight):
            gw = np.matmul(g3, x3.transpose(0, 2, 1)).sum(axis=0)
        if _needs_grad(x):
            gdtype = np.result_type(wd, g3)
            gx3 = np.matmul(
                wd.transpose(), g3, out=take_buffer((batch, cin, flat), gdtype)
            )
            gx = gx3.reshape(xd.shape)
        return gx, gw

    return make_op(out, (x, weight), backward)


# ---------------------------------------------------------------------------
# Reference kernels: the original per-tap autodiff-primitive composition
# ---------------------------------------------------------------------------


def _mix_channels(x: Tensor, weight: Tensor) -> Tensor:
    """Apply a (C_out, C_in) channel mix to ``x`` of shape (B, C_in, N, T)."""
    moved = x.transpose(0, 2, 3, 1)  # (B, N, T, C_in)
    mixed = matmul(moved, weight.transpose())  # (B, N, T, C_out)
    return mixed.transpose(0, 3, 1, 2)


def _conv2d_1xk_reference(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    dilation: int,
    causal: bool,
) -> Tensor:
    kernel = weight.shape[-1]
    receptive = (kernel - 1) * dilation
    if causal:
        x = pad(x, ((0, 0), (0, 0), (0, 0), (receptive, 0)))
    time = x.shape[-1] - receptive
    out = None
    for k in range(kernel):
        start = k * dilation
        window = x[:, :, :, start : start + time]
        term = _mix_channels(window, weight[:, :, k])
        out = term if out is None else out + term
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    return out


def _conv1d_reference(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    dilation: int,
    left: int,
    right: int,
) -> Tensor:
    kernel = weight.shape[-1]
    receptive = (kernel - 1) * dilation
    x = pad(x, ((0, 0), (0, 0), (left, right)))
    time = x.shape[-1] - receptive
    out = None
    for k in range(kernel):
        start = k * dilation
        window = x[:, :, start : start + time]  # (B, C_in, T)
        moved = window.transpose(0, 2, 1)  # (B, T, C_in)
        term = matmul(moved, weight[:, :, k].transpose()).transpose(0, 2, 1)
        out = term if out is None else out + term
    if bias is not None:
        out = out + bias.reshape(1, -1, 1)
    return out


# ---------------------------------------------------------------------------
# Public functional convolutions
# ---------------------------------------------------------------------------


def conv2d_1xk(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    dilation: int = 1,
    causal: bool = True,
) -> Tensor:
    """Convolve ``x`` (B, C_in, N, T) with ``weight`` (C_out, C_in, K) along T.

    With ``causal=True`` the output at time ``t`` depends only on inputs at
    times ``<= t`` and the output length equals the input length.
    """
    if reference_kernels():
        return _conv2d_1xk_reference(x, weight, bias, dilation, causal)
    weight = as_tensor(weight)
    receptive = (weight.shape[-1] - 1) * dilation
    out = im2col_conv(x, weight, dilation, left=receptive if causal else 0)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    return out


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    dilation: int = 1,
    padding: str = "same",
) -> Tensor:
    """Convolve ``x`` (B, C_in, T) with ``weight`` (C_out, C_in, K) along T.

    ``padding`` is ``"same"`` (centered zero padding) or ``"causal"``.
    """
    weight = as_tensor(weight)
    kernel = weight.shape[-1]
    receptive = (kernel - 1) * dilation
    if padding == "causal":
        left, right = receptive, 0
    elif padding == "same":
        left = receptive // 2
        right = receptive - left
    else:
        raise ValueError(f"unknown padding mode: {padding!r}")
    if reference_kernels():
        return _conv1d_reference(x, weight, bias, dilation, left, right)
    out = im2col_conv(x, weight, dilation, left=left, right=right)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1)
    return out


# ---------------------------------------------------------------------------
# Layer modules
# ---------------------------------------------------------------------------


class CausalConv2d(Module):
    """Dilated causal temporal convolution over (B, C, N, T) tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = init.resolve_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.weight = Parameter(
            init.xavier_uniform(rng, (out_channels, in_channels, kernel_size))
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d_1xk(x, self.weight, self.bias, dilation=self.dilation)


class PointwiseConv2d(Module):
    """1x1 convolution: a per-position channel mix over (B, C, N, T)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = init.resolve_rng(rng)
        self.weight = Parameter(init.xavier_uniform(rng, (out_channels, in_channels)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if reference_kernels():
            out = _mix_channels(x, self.weight)
        else:
            out = channel_mix(x, self.weight)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return out


class Conv1d(Module):
    """Dilated 1-D convolution over (B, C, T) tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        dilation: int = 1,
        padding: str = "same",
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = init.resolve_rng(rng)
        self.padding = padding
        self.dilation = dilation
        self.weight = Parameter(
            init.xavier_uniform(rng, (out_channels, in_channels, kernel_size))
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv1d(x, self.weight, self.bias, self.dilation, self.padding)
