"""Convolution layers.

CTS forecasting models in this library follow the Graph WaveNet tensor layout
``(batch, channels, num_nodes, time)``.  Temporal convolutions therefore use
kernels of shape ``(1, K)`` with dilation along the time axis and *causal*
left-padding so that position ``t`` never sees the future.

The convolutions are composed from autodiff primitives (pad, slice, matmul),
which keeps their backward passes automatically correct.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, matmul, pad
from . import init
from .module import Module, Parameter


def _mix_channels(x: Tensor, weight: Tensor) -> Tensor:
    """Apply a (C_out, C_in) channel mix to ``x`` of shape (B, C_in, N, T)."""
    moved = x.transpose(0, 2, 3, 1)  # (B, N, T, C_in)
    mixed = matmul(moved, weight.transpose())  # (B, N, T, C_out)
    return mixed.transpose(0, 3, 1, 2)


def conv2d_1xk(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    dilation: int = 1,
    causal: bool = True,
) -> Tensor:
    """Convolve ``x`` (B, C_in, N, T) with ``weight`` (C_out, C_in, K) along T.

    With ``causal=True`` the output at time ``t`` depends only on inputs at
    times ``<= t`` and the output length equals the input length.
    """
    kernel = weight.shape[-1]
    receptive = (kernel - 1) * dilation
    if causal:
        x = pad(x, ((0, 0), (0, 0), (0, 0), (receptive, 0)))
    time = x.shape[-1] - receptive
    out = None
    for k in range(kernel):
        start = k * dilation
        window = x[:, :, :, start : start + time]
        term = _mix_channels(window, weight[:, :, k])
        out = term if out is None else out + term
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    return out


class CausalConv2d(Module):
    """Dilated causal temporal convolution over (B, C, N, T) tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.weight = Parameter(
            init.xavier_uniform(rng, (out_channels, in_channels, kernel_size))
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d_1xk(x, self.weight, self.bias, dilation=self.dilation)


class PointwiseConv2d(Module):
    """1x1 convolution: a per-position channel mix over (B, C, N, T)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = Parameter(init.xavier_uniform(rng, (out_channels, in_channels)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = _mix_channels(x, self.weight)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return out


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    dilation: int = 1,
    padding: str = "same",
) -> Tensor:
    """Convolve ``x`` (B, C_in, T) with ``weight`` (C_out, C_in, K) along T.

    ``padding`` is ``"same"`` (centered zero padding) or ``"causal"``.
    """
    kernel = weight.shape[-1]
    receptive = (kernel - 1) * dilation
    if padding == "causal":
        left, right = receptive, 0
    elif padding == "same":
        left = receptive // 2
        right = receptive - left
    else:
        raise ValueError(f"unknown padding mode: {padding!r}")
    x = pad(x, ((0, 0), (0, 0), (left, right)))
    time = x.shape[-1] - receptive
    out = None
    for k in range(kernel):
        start = k * dilation
        window = x[:, :, start : start + time]  # (B, C_in, T)
        moved = window.transpose(0, 2, 1)  # (B, T, C_in)
        term = matmul(moved, weight[:, :, k].transpose()).transpose(0, 2, 1)
        out = term if out is None else out + term
    if bias is not None:
        out = out + bias.reshape(1, -1, 1)
    return out


class Conv1d(Module):
    """Dilated 1-D convolution over (B, C, T) tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        dilation: int = 1,
        padding: str = "same",
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.padding = padding
        self.dilation = dilation
        self.weight = Parameter(
            init.xavier_uniform(rng, (out_channels, in_channels, kernel_size))
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv1d(x, self.weight, self.bias, self.dilation, self.padding)
