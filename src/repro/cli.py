"""Command-line interface.

Subcommands:

* ``datasets`` — list the registered benchmark datasets and their sizes,
* ``sample`` — print random arch-hypers from the joint search space,
* ``train`` — train one sampled/fixed arch-hyper on a dataset and report
  test metrics,
* ``search`` — run the zero-shot AutoCTS++ search on a target dataset
  (pre-training the T-AHC first if it is not cached),
* ``autocts`` — run the fully-supervised AutoCTS+ search (per-task AHC),
* ``serve`` — run the search service: an HTTP API plus worker daemons over
  a persistent sqlite job registry (see ``docs/service.md``),
* ``submit`` — submit a job to a running service and optionally wait,
* ``trace`` — render a ``--trace`` JSONL file as a per-stage rollup, span
  tree, and per-candidate timeline.

Run ``python -m repro.cli <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from .utils.validation import ConfigError


def _configure_observability(args: argparse.Namespace) -> str | None:
    """Install the run's tracer/heartbeat/profiling from flags and env.

    ``--trace PATH`` wins over ``$REPRO_TRACE``; heartbeats are on unless
    ``--quiet``; ``--profile`` seeds the process default (and, via the env,
    pool workers).  Returns the active trace path, if any.
    """
    from .obs import TRACE_ENV, configure_heartbeat, configure_tracing

    trace_path = getattr(args, "trace", None) or os.environ.get(TRACE_ENV) or None
    configure_tracing(trace_path)
    configure_heartbeat(enabled=not getattr(args, "quiet", False))
    if getattr(args, "profile", False):
        from .obs import set_profiling_default

        set_profiling_default(True)
    return trace_path


def _finish_observability(args: argparse.Namespace, trace_path: str | None) -> None:
    """Close the trace file and print the consolidated metrics snapshot."""
    from .obs import configure_tracing, render_metrics

    configure_tracing(None)  # closes the active file tracer, if any
    if not getattr(args, "quiet", False):
        rendered = render_metrics()
        if rendered:
            print("== metrics ==")
            print(rendered)
    if trace_path:
        print(f"trace written to {trace_path} (render: repro trace report {trace_path})")


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .data import get_spec, list_datasets
    from .data.datasets import DIRTY_DATASETS, SOURCE_DATASETS

    print(
        f"{'name':<23} {'role':<7} {'N':>4} {'T':>6}   {'paper N':>7} "
        f"{'paper T':>8}   corruption"
    )
    for name in list_datasets():
        spec = get_spec(name)
        if name in DIRTY_DATASETS:
            role = "dirty"
        elif name in SOURCE_DATASETS:
            role = "source"
        else:
            role = "target"
        dirty = (
            f"{spec.corruption}@{spec.severity:g} ({spec.imputation})"
            if spec.corruption
            else "-"
        )
        print(
            f"{name:<23} {role:<7} {spec.n_series:>4} {spec.n_steps:>6}   "
            f"{spec.paper_n_series:>7} {spec.paper_n_steps:>8}   {dirty}"
        )
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    from .space import JointSearchSpace

    space = JointSearchSpace()
    rng = np.random.default_rng(args.seed)
    for i, ah in enumerate(space.sample_batch(args.count, rng)):
        print(f"[{i}] {ah.hyper}")
        print(f"    {ah.arch}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .core import TrainConfig, build_forecaster, evaluate_forecaster, train_forecaster
    from .data import get_dataset
    from .space import JointSearchSpace
    from .tasks import Task

    data = get_dataset(args.dataset, seed=args.seed)
    if args.corruption:
        from .data import corrupt_dataset

        data = corrupt_dataset(
            data,
            args.corruption,
            severity=args.severity,
            seed=args.seed,
            imputation=args.imputation,
        )
        observed = 1.0 if data.mask is None else float(data.mask.mean())
        print(
            f"injected {args.corruption}@{args.severity:g} "
            f"({1 - observed:.1%} of entries untrusted, imputed via "
            f"{args.imputation})"
        )
    task = Task(
        data, p=args.p, q=args.q, single_step=args.single_step,
        max_train_windows=args.max_windows,
    )
    ah = JointSearchSpace().sample(np.random.default_rng(args.seed))
    print(f"task {task.name}; arch-hyper: {ah.hyper}")
    model = build_forecaster(ah, data, task.horizon, seed=args.seed)
    result = train_forecaster(
        model, task.prepared.train, task.prepared.val,
        TrainConfig(epochs=args.epochs, batch_size=args.batch_size),
    )
    scores = evaluate_forecaster(model, task.prepared.test, inverse=task.prepared.inverse)
    print(f"best val MAE {result.best_val_mae:.4f} (epoch {result.best_epoch})")
    print(f"test MAE={scores.mae:.4f} RMSE={scores.rmse:.4f} MAPE={scores.mape:.2%}")
    if args.save:
        from .io import save_forecaster

        save_forecaster(model, args.save)
        print(f"saved model to {args.save}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from .autodiff import set_anomaly_default
    from .experiments import SCALES, pretrain_variant, target_task
    from .runtime import (
        configure_default_evaluator,
        default_checkpoint_dir,
        resolve_fidelity_schedule,
    )
    from .service import Engine

    # Fail on a malformed --fidelity-schedule before any heavy work starts.
    resolve_fidelity_schedule(args.fidelity_schedule)
    if args.anomaly_mode:
        # Also exported via $REPRO_ANOMALY so pool workers inherit the mode.
        set_anomaly_default(True)
    trace_path = _configure_observability(args)
    scale = SCALES[args.scale]
    evaluator = configure_default_evaluator(
        workers=args.workers,
        cache_enabled=not args.no_eval_cache,
        max_retries=args.max_retries,
        eval_timeout=args.eval_timeout,
        divergence_policy=args.divergence_policy,
    )
    # Progress checkpoints are always written (a crash costs at most one unit
    # of work); --resume controls whether existing ones are picked up.
    checkpoint_dir = default_checkpoint_dir()
    if args.resume:
        print(f"resuming from checkpoints under {checkpoint_dir} (if any)")
    artifacts = pretrain_variant(
        scale,
        "full",
        seed=args.seed,
        evaluator=evaluator,
        checkpoint_dir=checkpoint_dir,
        resume=args.resume,
        fidelity_schedule=args.fidelity_schedule,
        label_policy=args.fidelity_label_policy,
        warm_dir=args.warm_dir,
    )
    setting = scale.setting(args.setting)
    task = target_task(scale, args.dataset, setting, seed=args.seed)
    # The same Engine facade the service daemon runs behind, so the CLI and
    # the HTTP API cannot drift apart (bitwise-identical rankings).
    engine = Engine(artifacts, scale, checkpoint_dir=checkpoint_dir)
    print(f"zero-shot search on {task.name}...")
    result = engine.search_task(task, seed=args.seed, resume=args.resume)
    print(f"searched: {result.best.hyper}")
    print(f"          {result.best.arch}")
    print(
        f"phases: embed {result.timings.embedding:.1f}s, "
        f"rank {result.timings.ranking:.1f}s, train {result.timings.training:.1f}s"
    )
    scores = result.best_scores
    print(f"test MAE={scores.mae:.4f} RMSE={scores.rmse:.4f} MAPE={scores.mape:.2%}")
    print(evaluator.stats.report())
    _finish_observability(args, trace_path)
    return 0


def _cmd_autocts(args: argparse.Namespace) -> int:
    from .experiments import SCALES, target_task
    from .runtime import configure_default_evaluator, resolve_fidelity_schedule
    from .search import AutoCTSPlusConfig, AutoCTSPlusSearch, EvolutionConfig
    from .space import JointSearchSpace
    from .tasks import ProxyConfig

    # Fail on a malformed --fidelity-schedule before any heavy work starts.
    resolve_fidelity_schedule(args.fidelity_schedule)
    trace_path = _configure_observability(args)
    scale = SCALES[args.scale]
    evaluator = configure_default_evaluator(
        workers=args.workers, cache_enabled=not args.no_eval_cache
    )
    setting = scale.setting(args.setting)
    task = target_task(scale, args.dataset, setting, seed=args.seed)
    space = JointSearchSpace(hyper_space=scale.hyper_space)
    config = AutoCTSPlusConfig(
        n_measured_samples=args.samples,
        ahc_epochs=args.ahc_epochs,
        ahc_embed_dim=args.ahc_embed_dim,
        ahc_gin_layers=args.ahc_gin_layers,
        ahc_hidden_dim=args.ahc_hidden_dim,
        evolution=EvolutionConfig(
            initial_samples=scale.initial_samples,
            population_size=scale.population_size,
            generations=scale.generations,
            offspring_per_generation=scale.population_size,
            top_k=scale.top_k,
        ),
        final_train_epochs=scale.final_train_epochs,
        batch_size=scale.batch_size,
        seed=args.seed,
        proxy=ProxyConfig(epochs=scale.proxy_epochs, batch_size=scale.batch_size),
        fidelity_schedule=args.fidelity_schedule,
        fidelity_label_policy=args.fidelity_label_policy,
        warm_dir=args.warm_dir,
    )
    print(
        f"AutoCTS+ on {task.name} "
        f"(AHC: embed {config.ahc_embed_dim}, {config.ahc_gin_layers} GIN "
        f"layers, hidden {config.ahc_hidden_dim})..."
    )
    search = AutoCTSPlusSearch(space, config, evaluator=evaluator)
    result = search.search(task)
    print(f"measured {len(result.measured)} arch-hypers with the proxy")
    print(f"AHC loss {result.ahc_losses[0]:.3f} -> {result.ahc_losses[-1]:.3f}")
    print(f"searched: {result.best.hyper}")
    print(f"          {result.best.arch}")
    scores = result.best_scores
    print(f"test MAE={scores.mae:.4f} RMSE={scores.rmse:.4f} MAPE={scores.mape:.2%}")
    print(evaluator.stats.report())
    _finish_observability(args, trace_path)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import render_report

    print(render_report(args.path, max_depth=args.max_depth, job=args.job))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the search service: HTTP API + worker daemon(s), one process."""
    import time

    from .experiments import SCALES, pretrain_variant
    from .obs import default_span_buffer
    from .runtime import default_checkpoint_dir
    from .service import Daemon, Engine, MetricsSampler, ServiceAPI, ServiceDB
    from .service.daemon import resolve_metrics_interval

    # Validate before the (slow) pretrain so a bad knob fails fast.
    metrics_interval = resolve_metrics_interval(args.metrics_interval)
    trace_path = _configure_observability(args)
    scale = SCALES[args.scale]
    print(f"pre-training '{args.variant}' artifacts at scale '{scale.name}'...")
    artifacts = pretrain_variant(scale, args.variant, seed=args.seed)
    engine = Engine(
        artifacts,
        scale,
        checkpoint_dir=default_checkpoint_dir(),
        artifact_dir=args.artifact_dir,
        cache_enabled=not args.no_eval_cache,
    )
    db = ServiceDB(args.db)
    buffer = default_span_buffer()
    daemons = [
        Daemon(db, engine, span_buffer=buffer).start(recover=(index == 0))
        for index in range(args.daemons)
    ]
    api = ServiceAPI(
        db, engine, host=args.host, port=args.port, span_buffer=buffer
    ).start()
    sampler = MetricsSampler(db, interval=metrics_interval, source=api.address)
    sampler.start()
    print(f"engine {engine.fingerprint[:16]} (registry: {db.path})")
    print(f"serving on {api.address} ({args.daemons} worker daemon(s))")
    if sampler.enabled:
        print(f"metrics history sampled every {sampler.interval:g}s (GET /metrics/history)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down...")
    finally:
        sampler.stop()
        api.stop()
        for daemon in daemons:
            daemon.stop()
        _finish_observability(args, trace_path)
    return 0


def _service_url(args: argparse.Namespace) -> str:
    url = args.url or os.environ.get("REPRO_SERVICE_URL") or "http://127.0.0.1:8737"
    return url.rstrip("/")


def _http_json(url: str, payload=None, tenant: str | None = None):
    """POST (or GET when ``payload`` is None) JSON; returns (status, body)."""
    import json
    import urllib.error
    import urllib.request

    headers = {"Content-Type": "application/json"}
    if tenant:
        headers["X-Repro-Tenant"] = tenant
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            return exc.code, json.loads(exc.read())
        except Exception:
            return exc.code, {"error": str(exc)}


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running service; optionally wait for the result."""
    import json
    import time

    base = _service_url(args)
    if args.values_file:
        with open(args.values_file) as handle:
            task_spec = json.load(handle)
        task_spec.setdefault("name", args.dataset)
    else:
        task_spec = {"dataset": args.dataset, "seed": args.seed}
    task_spec.update(p=args.p, q=args.q)
    if args.imputation:
        # Only meaningful for inline payloads: lets the service repair
        # NaN/null entries (otherwise rejected with a 422) and record them
        # in the task's observation mask.
        task_spec["imputation"] = args.imputation
    payload = {
        "kind": args.kind,
        "task": task_spec,
        "options": json.loads(args.options) if args.options else {},
        "runtime": json.loads(args.runtime) if args.runtime else {},
    }
    if args.sync:
        if args.kind != "rank":
            print("--sync only supports kind 'rank'", file=sys.stderr)
            return 2
        status, body = _http_json(base + "/rank", payload, tenant=args.tenant)
        print(json.dumps(body, indent=2))
        return 0 if status == 200 else 1
    status, body = _http_json(base + "/jobs", payload, tenant=args.tenant)
    if status not in (200, 202):
        print(json.dumps(body, indent=2), file=sys.stderr)
        return 1
    job = body["job"]
    print(
        f"job {job['id']} [{job['status']}] "
        f"fingerprint {job['fingerprint'][:16]}"
        + (" (deduped)" if body.get("deduped") else "")
    )
    if not args.wait:
        return 0
    while True:
        status, body = _http_json(base + f"/jobs/{job['id']}")
        if status != 200:
            print(json.dumps(body, indent=2), file=sys.stderr)
            return 1
        state = body["job"]["status"]
        if state == "done":
            print(json.dumps(body.get("result"), indent=2))
            return 0
        if state == "failed":
            print(f"job failed: {body['job'].get('error')}", file=sys.stderr)
            return 1
        time.sleep(args.poll)


def _add_fidelity_args(parser: argparse.ArgumentParser) -> None:
    """The successive-halving proxy-collection flags (see docs/fidelity.md)."""
    parser.add_argument(
        "--fidelity-schedule",
        default=None,
        metavar="ETA:RUNGS:MIN",
        help="successive-halving schedule for proxy collection as "
        "'eta:rungs:min-epochs', e.g. '3:3:1' (default: "
        "$REPRO_FIDELITY_SCHEDULE or off — flat full-fidelity evaluation, "
        "bitwise-identical to not passing the flag)",
    )
    parser.add_argument(
        "--fidelity-label-policy",
        default=None,
        choices=("survivors", "tagged"),
        help="which fidelity-tagged scores become comparator labels: "
        "'survivors' (default) uses only full-fidelity measurements, "
        "'tagged' uses every rung's scores "
        "(default: $REPRO_FIDELITY_LABEL_POLICY or survivors)",
    )
    parser.add_argument(
        "--warm-dir",
        default=None,
        metavar="DIR",
        help="directory for warm-start training snapshots so promoted "
        "candidates resume instead of retraining "
        "(default: $REPRO_FIDELITY_WARM_DIR or cold restarts)",
    )


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    """The shared telemetry flags of the long-running subcommands."""
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL span trace of the run to PATH "
        "(default: $REPRO_TRACE or off); render with 'repro trace report'",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress heartbeat progress lines and the final metrics snapshot",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable profiling hooks: per-module forward timing and autodiff "
        "op counts in the metrics snapshot (slower; timing never changes "
        "scores)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list benchmark datasets").set_defaults(
        func=_cmd_datasets
    )

    sample = sub.add_parser("sample", help="sample arch-hypers")
    sample.add_argument("--count", type=int, default=3)
    sample.add_argument("--seed", type=int, default=0)
    sample.set_defaults(func=_cmd_sample)

    train = sub.add_parser("train", help="train one arch-hyper on a dataset")
    train.add_argument("dataset")
    train.add_argument("--p", type=int, default=6)
    train.add_argument("--q", type=int, default=6)
    train.add_argument("--single-step", action="store_true")
    train.add_argument("--epochs", type=int, default=5)
    train.add_argument("--batch-size", type=int, default=64)
    train.add_argument("--max-windows", type=int, default=256)
    train.add_argument(
        "--corruption",
        default=None,
        help="inject a seeded corruption profile before training "
        "(e.g. block_missing; see repro.data.corruption)",
    )
    train.add_argument(
        "--severity",
        type=float,
        default=0.3,
        help="corruption severity in (0, 1] for --corruption",
    )
    train.add_argument(
        "--imputation",
        default="mean",
        choices=("mean", "ffill", "linear"),
        help="imputation policy repairing entries dropped by --corruption",
    )
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--save", default=None, help="directory to save the model")
    train.set_defaults(func=_cmd_train)

    search = sub.add_parser("search", help="zero-shot AutoCTS++ search")
    search.add_argument("dataset")
    search.add_argument("--setting", default="P-12/Q-12")
    search.add_argument("--scale", default="tiny", choices=("tiny", "smoke", "dirty"))
    search.add_argument("--seed", type=int, default=0)
    search.add_argument(
        "--workers",
        type=int,
        default=None,
        help="proxy-evaluation worker processes (default: $REPRO_WORKERS or 1)",
    )
    search.add_argument(
        "--no-eval-cache",
        action="store_true",
        help="disable the on-disk proxy-evaluation score cache",
    )
    search.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from its progress checkpoints "
        "(bitwise-identical to an uninterrupted run)",
    )
    search.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retries per failed proxy evaluation "
        "(default: $REPRO_MAX_RETRIES or fail fast)",
    )
    search.add_argument(
        "--eval-timeout",
        type=float,
        default=None,
        help="per-evaluation timeout in seconds "
        "(default: $REPRO_EVAL_TIMEOUT or no timeout)",
    )
    search.add_argument(
        "--anomaly-mode",
        action="store_true",
        help="enable autodiff anomaly detection: the first non-finite value "
        "raises a NonFiniteError naming the originating op (slower; for "
        "debugging divergence)",
    )
    search.add_argument(
        "--divergence-policy",
        choices=("sentinel", "raise"),
        default=None,
        help="what a diverged candidate becomes: 'sentinel' (default) scores "
        "it with the deterministic worst-case sentinel and keeps searching; "
        "'raise' aborts with a DivergenceError "
        "(default: $REPRO_DIVERGENCE_POLICY or sentinel)",
    )
    _add_fidelity_args(search)
    _add_observability_args(search)
    search.set_defaults(func=_cmd_search)

    autocts = sub.add_parser(
        "autocts", help="fully-supervised AutoCTS+ search (per-task AHC)"
    )
    autocts.add_argument("dataset")
    autocts.add_argument("--setting", default="P-12/Q-12")
    autocts.add_argument("--scale", default="tiny", choices=("tiny", "smoke", "dirty"))
    autocts.add_argument("--seed", type=int, default=0)
    autocts.add_argument(
        "--samples",
        type=int,
        default=8,
        help="arch-hypers measured with the proxy to train the AHC",
    )
    autocts.add_argument("--ahc-epochs", type=int, default=40)
    autocts.add_argument(
        "--ahc-embed-dim",
        type=int,
        default=32,
        help="GIN embedding width of the per-task comparator",
    )
    autocts.add_argument(
        "--ahc-gin-layers",
        type=int,
        default=3,
        help="GIN message-passing layers of the per-task comparator",
    )
    autocts.add_argument(
        "--ahc-hidden-dim",
        type=int,
        default=32,
        help="classifier hidden width of the per-task comparator",
    )
    autocts.add_argument(
        "--workers",
        type=int,
        default=None,
        help="proxy-evaluation worker processes (default: $REPRO_WORKERS or 1)",
    )
    autocts.add_argument(
        "--no-eval-cache",
        action="store_true",
        help="disable the on-disk proxy-evaluation score cache",
    )
    _add_fidelity_args(autocts)
    _add_observability_args(autocts)
    autocts.set_defaults(func=_cmd_autocts)

    serve = sub.add_parser(
        "serve", help="run the search service (HTTP API + worker daemon)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8737,
        help="listen port (0 binds an ephemeral port)",
    )
    serve.add_argument("--scale", default="smoke", choices=("tiny", "smoke", "dirty"))
    serve.add_argument(
        "--variant", default="full", help="pre-trained T-AHC variant to serve"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--db",
        default=None,
        help="registry sqlite path (default: $REPRO_SERVICE_DB or "
        "benchmarks/.service/registry.sqlite)",
    )
    serve.add_argument(
        "--daemons", type=int, default=1, help="worker daemon threads"
    )
    serve.add_argument(
        "--artifact-dir",
        default=None,
        help="directory for trained-forecaster artifacts from 'train' jobs",
    )
    serve.add_argument(
        "--no-eval-cache",
        action="store_true",
        help="disable the on-disk proxy-evaluation score cache",
    )
    serve.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds between persisted metrics-history snapshots "
        "(default: $REPRO_METRICS_INTERVAL or 30; 0 disables the sampler)",
    )
    _add_observability_args(serve)
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="submit a job to a running service")
    submit.add_argument("dataset", help="registered dataset name for the task")
    submit.add_argument(
        "--kind", default="rank", choices=("rank", "collect", "train")
    )
    submit.add_argument("--p", type=int, default=6)
    submit.add_argument("--q", type=int, default=6)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--values-file",
        default=None,
        metavar="JSON",
        help="ship an inline task from a JSON file with 'values' (N,T,F "
        "nested lists) and 'adjacency' instead of a registered dataset; "
        "the positional dataset argument becomes the task name",
    )
    submit.add_argument(
        "--imputation",
        default=None,
        choices=("mean", "ffill", "linear"),
        help="imputation policy for NaN/null entries in an inline payload "
        "(without it, dirty payloads are rejected with a 422)",
    )
    submit.add_argument(
        "--url",
        default=None,
        help="service base URL (default: $REPRO_SERVICE_URL or "
        "http://127.0.0.1:8737)",
    )
    submit.add_argument("--tenant", default=None, help="tenant identity header")
    submit.add_argument(
        "--options",
        default=None,
        metavar="JSON",
        help="job options as a JSON object (e.g. '{\"top_k\": 2}')",
    )
    submit.add_argument(
        "--runtime",
        default=None,
        metavar="JSON",
        help="per-job runtime overrides as a JSON object "
        "(e.g. '{\"divergence_policy\": \"raise\"}')",
    )
    submit.add_argument(
        "--sync",
        action="store_true",
        help="use the synchronous POST /rank path (kind 'rank' only)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll the job until it finishes and print the result",
    )
    submit.add_argument(
        "--poll", type=float, default=0.5, help="poll interval for --wait"
    )
    submit.set_defaults(func=_cmd_submit)

    trace = sub.add_parser("trace", help="inspect a --trace JSONL file")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    report = trace_sub.add_parser(
        "report", help="per-stage rollup, span tree, and candidate timeline"
    )
    report.add_argument("path", help="trace file written by --trace/$REPRO_TRACE")
    report.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="truncate the span tree below this depth",
    )
    report.add_argument(
        "--job",
        default=None,
        metavar="ID",
        help="only spans stamped with this correlation id (a service job id "
        "or req-<n> request id)",
    )
    report.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        # Bad numerics or a malformed --fidelity-schedule spec: render the
        # typed message like an argparse error instead of a traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
