"""Task embedding: TS2Vec preliminary embeddings + Set-Transformer pooling."""

from .set_transformer import MAB, PMA, SAB, SetPool
from .task_encoder import (
    MeanPoolTaskEncoder,
    MLPEmbedder,
    PreliminaryEmbedder,
    TaskEncoder,
    build_preliminary_embedder,
    preliminary_task_embedding,
)
from .ts2vec import TS2Vec, TS2VecConfig, TS2VecEncoder, hierarchical_contrastive_loss

__all__ = [
    "MAB",
    "PMA",
    "SAB",
    "SetPool",
    "MeanPoolTaskEncoder",
    "MLPEmbedder",
    "PreliminaryEmbedder",
    "TaskEncoder",
    "build_preliminary_embedder",
    "preliminary_task_embedding",
    "TS2Vec",
    "TS2VecConfig",
    "TS2VecEncoder",
    "hierarchical_contrastive_loss",
]
