"""TS2Vec: universal time series representations via hierarchical contrastive
learning (Yue et al., AAAI 2022), used here as the preliminary task embedder
of Section 3.2.2.

The encoder is an input projection followed by a stack of dilated 1-D
convolution blocks with GELU activations and residual connections.  Training
contrasts two randomly cropped, timestamp-masked *context views* of the same
series, with both **temporal** and **instance-wise** contrastive terms applied
hierarchically (losses are re-computed after each temporal max-pooling level).

The class also provides :meth:`encode_windows`, the interface task encoders
consume: a batch of task windows ``(num, N, S, F)`` mapped to per-timestep
embeddings ``(num, N, S, F')``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor, amax, log_softmax, no_grad
from ..nn import init
from ..nn.conv import Conv1d
from ..nn.linear import Linear
from ..nn.module import Module, ModuleList
from ..optim import Adam
from ..utils.seeding import derive_rng


class DilatedConvBlock(Module):
    """Residual block: GELU -> dilated conv -> GELU -> dilated conv."""

    def __init__(self, channels: int, dilation: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv1 = Conv1d(channels, channels, kernel_size=3, dilation=dilation, rng=rng)
        self.conv2 = Conv1d(channels, channels, kernel_size=3, dilation=dilation, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        from ..autodiff import gelu

        hidden = self.conv1(gelu(x))
        return x + self.conv2(gelu(hidden))


class TS2VecEncoder(Module):
    """Maps ``(B, S, F)`` series to per-timestep representations ``(B, S, F')``."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 16,
        output_dim: int = 16,
        depth: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = init.resolve_rng(rng)
        self.input_proj = Linear(input_dim, hidden_dim, rng=rng)
        self.blocks = ModuleList(
            DilatedConvBlock(hidden_dim, dilation=2**i, rng=rng) for i in range(depth)
        )
        self.output_proj = Linear(hidden_dim, output_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.input_proj(x).transpose(0, 2, 1)  # (B, C, S)
        for block in self.blocks:
            hidden = block(hidden)
        return self.output_proj(hidden.transpose(0, 2, 1))  # (B, S, F')


def _temporal_contrast(z1: Tensor, z2: Tensor) -> Tensor:
    """Contrast timestamps within each instance (TS2Vec Eq. 2)."""
    batch, time, _ = z1.shape
    if time <= 1:
        return Tensor(np.zeros(()))
    from ..autodiff import concat, matmul

    z = concat([z1, z2], axis=1)  # (B, 2T, C)
    sim = matmul(z, z.transpose(0, 2, 1))  # (B, 2T, 2T)
    # Remove self-similarity from the softmax by masking the diagonal.
    eye = np.eye(2 * time, dtype=np.float32) * 1e9
    logits = log_softmax(sim - Tensor(eye[None]), axis=-1)
    # Positive pairs: (t, t + T) and (t + T, t).
    index_a = np.arange(time)
    total = logits[:, index_a, index_a + time].sum() + logits[:, index_a + time, index_a].sum()
    return -total / (2.0 * batch * time)


def _instance_contrast(z1: Tensor, z2: Tensor) -> Tensor:
    """Contrast instances at each timestamp (TS2Vec Eq. 3)."""
    batch, time, _ = z1.shape
    if batch <= 1:
        return Tensor(np.zeros(()))
    from ..autodiff import concat, matmul

    z = concat([z1, z2], axis=0)  # (2B, T, C)
    zt = z.transpose(1, 0, 2)  # (T, 2B, C)
    sim = matmul(zt, zt.transpose(0, 2, 1))  # (T, 2B, 2B)
    eye = np.eye(2 * batch, dtype=np.float32) * 1e9
    logits = log_softmax(sim - Tensor(eye[None]), axis=-1)
    index_b = np.arange(batch)
    total = logits[:, index_b, index_b + batch].sum() + logits[:, index_b + batch, index_b].sum()
    return -total / (2.0 * batch * time)


def _max_pool_time(z: Tensor) -> Tensor:
    """Halve the time axis with kernel-2 max pooling (hierarchy step)."""
    batch, time, channels = z.shape
    even = time - (time % 2)
    trimmed = z[:, :even, :]
    paired = trimmed.reshape(batch, even // 2, 2, channels)
    return amax(paired, axis=2)


def hierarchical_contrastive_loss(z1: Tensor, z2: Tensor) -> Tensor:
    """TS2Vec's hierarchical loss: temporal + instance terms at every scale."""
    loss = _temporal_contrast(z1, z2) + _instance_contrast(z1, z2)
    levels = 1
    while z1.shape[1] > 1:
        z1, z2 = _max_pool_time(z1), _max_pool_time(z2)
        loss = loss + _temporal_contrast(z1, z2) + _instance_contrast(z1, z2)
        levels += 1
    return loss / levels


@dataclass(frozen=True)
class TS2VecConfig:
    hidden_dim: int = 16
    output_dim: int = 16
    depth: int = 3
    lr: float = 1e-3
    batch_size: int = 8
    epochs: int = 5
    mask_rate: float = 0.15
    min_crop: int = 4


class TS2Vec:
    """Self-supervised preliminary embedder for CTS forecasting tasks."""

    def __init__(self, input_dim: int, config: TS2VecConfig = TS2VecConfig(), seed: int = 0):
        self.config = config
        self.input_dim = input_dim
        self._rng = derive_rng(seed, "ts2vec")
        self.encoder = TS2VecEncoder(
            input_dim,
            hidden_dim=config.hidden_dim,
            output_dim=config.output_dim,
            depth=config.depth,
            rng=derive_rng(seed, "ts2vec-init"),
        )

    @property
    def output_dim(self) -> int:
        return self.config.output_dim

    # ------------------------------------------------------------------
    # Training (contrastive)
    # ------------------------------------------------------------------
    def fit(self, series: np.ndarray) -> list[float]:
        """Contrastively pre-train on ``series`` of shape ``(num, S, F)``.

        Returns the per-epoch loss history.
        """
        if series.ndim != 3 or series.shape[-1] != self.input_dim:
            raise ValueError(
                f"series must be (num, S, {self.input_dim}), got {series.shape}"
            )
        config = self.config
        optimizer = Adam(self.encoder.parameters(), lr=config.lr)
        history: list[float] = []
        for _ in range(config.epochs):
            order = self._rng.permutation(len(series))
            epoch_losses = []
            for start in range(0, len(order), config.batch_size):
                batch = series[order[start : start + config.batch_size]]
                if len(batch) < 2:
                    continue
                loss = self._contrastive_step(batch)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            history.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)
        return history

    def _contrastive_step(self, batch: np.ndarray) -> Tensor:
        time = batch.shape[1]
        crop = int(
            self._rng.integers(min(self.config.min_crop, time), time + 1)
        )
        # Two overlapping crops of the same length; the overlap is where the
        # two context views must agree.
        max_offset = time - crop
        o1 = int(self._rng.integers(0, max_offset + 1))
        o2 = int(self._rng.integers(0, max_offset + 1))
        view1 = self._mask(batch[:, o1 : o1 + crop])
        view2 = self._mask(batch[:, o2 : o2 + crop])
        z1 = self.encoder(Tensor(view1))
        z2 = self.encoder(Tensor(view2))
        # Align the overlapping region of the two crops.
        lo, hi = max(o1, o2), min(o1, o2) + crop
        if hi - lo < 1:
            return hierarchical_contrastive_loss(z1, z2)
        z1_overlap = z1[:, lo - o1 : hi - o1, :]
        z2_overlap = z2[:, lo - o2 : hi - o2, :]
        return hierarchical_contrastive_loss(z1_overlap, z2_overlap)

    def _mask(self, values: np.ndarray) -> np.ndarray:
        """Timestamp masking augmentation."""
        masked = values.copy()
        drop = self._rng.random(values.shape[:2]) < self.config.mask_rate
        masked[drop] = 0.0
        return masked

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def encode(self, series: np.ndarray) -> np.ndarray:
        """Embed ``(num, S, F)`` series to ``(num, S, F')`` representations."""
        was_training = self.encoder.training
        self.encoder.eval()
        with no_grad():
            out = self.encoder(Tensor(series.astype(np.float32))).numpy()
        self.encoder.train(was_training)
        return out

    def encode_windows(self, windows: np.ndarray) -> np.ndarray:
        """Embed task windows ``(num, N, S, F)`` to ``(num, N, S, F')`` (Eq. 9)."""
        num, n_nodes, span, features = windows.shape
        flat = windows.reshape(num * n_nodes, span, features)
        encoded = self.encode(flat)
        return encoded.reshape(num, n_nodes, span, self.output_dim)
