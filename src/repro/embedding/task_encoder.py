"""Task embedding learning module (paper Section 3.2.2, Figure 4).

Pipeline for embedding a task ``T = (D, P, Q)``:

1. cut ``D`` into S = P + Q windows ``{D_i}`` and embed them with a
   *preliminary embedder* (TS2Vec, or an MLP for the ablation) — Eq. 9,
2. average over the N series — Eq. 10,
3. **IntraSetPool**: pool each window's S time steps to one vector — Eq. 11,
4. **InterSetPool**: pool the set of window vectors into the final task
   embedding ``E'`` — Eq. 12.

Steps 3–4 are trained end-to-end with the T-AHC so the embedding space is
*performance-ranking aware*; steps 1–2 are parameter-free at T-AHC training
time and may be precomputed per task.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..autodiff import Tensor, no_grad
from ..nn.linear import MLP
from ..nn.module import Module
from ..utils.seeding import derive_rng
from .set_transformer import SetPool
from .ts2vec import TS2Vec, TS2VecConfig


class PreliminaryEmbedder(Protocol):
    """Anything that maps task windows (num, N, S, F) -> (num, N, S, F')."""

    output_dim: int

    def encode_windows(self, windows: np.ndarray) -> np.ndarray: ...


class MLPEmbedder:
    """The "w/o TS2Vec" ablation: a per-timestep MLP replaces TS2Vec.

    It has the same interface and output width but ignores temporal context,
    which is exactly the deficiency the ablation exposes.
    """

    def __init__(self, input_dim: int, output_dim: int = 16, seed: int = 0) -> None:
        self.input_dim = input_dim
        self.output_dim = output_dim
        self._mlp = MLP([input_dim, output_dim, output_dim], rng=derive_rng(seed, "mlp-embed"))

    def fit(self, series: np.ndarray) -> list[float]:
        """No self-supervised stage; kept for interface parity."""
        return []

    def encode_windows(self, windows: np.ndarray) -> np.ndarray:
        self._mlp.eval()
        with no_grad():
            out = self._mlp(Tensor(windows.astype(np.float32))).numpy()
        return out


def preliminary_task_embedding(
    embedder: PreliminaryEmbedder, windows: np.ndarray
) -> np.ndarray:
    """Eqs. 9–10: embed windows and average over the N series.

    ``windows``: (num, N, S, F) -> returns (num, S, F').
    """
    encoded = embedder.encode_windows(windows)
    return encoded.mean(axis=1)


class TaskEncoder(Module):
    """The trainable two-stacked Set-Transformer head (Eqs. 11–12)."""

    def __init__(
        self,
        input_dim: int,
        intra_dim: int = 32,
        output_dim: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.output_dim = output_dim
        rng = derive_rng(seed, "task-encoder")
        self.intra = SetPool(input_dim, intra_dim, rng=rng)  # over time steps
        self.inter = SetPool(intra_dim, output_dim, rng=rng)  # over windows

    def forward(self, preliminary: np.ndarray | Tensor) -> Tensor:
        """Encode one task's preliminary embedding (num_windows, S, F') -> (F2,)."""
        windows = preliminary if isinstance(preliminary, Tensor) else Tensor(preliminary)
        per_window = self.intra(windows)  # (num_windows, F1)
        pooled = self.inter(per_window.reshape(1, *per_window.shape))  # (1, F2)
        return pooled.reshape(self.output_dim)


class MeanPoolTaskEncoder(Module):
    """The "w/o Set-Transformer" ablation: plain mean pooling + projection."""

    def __init__(self, input_dim: int, output_dim: int = 16, seed: int = 0) -> None:
        super().__init__()
        self.output_dim = output_dim
        self.project = MLP([input_dim, output_dim], rng=derive_rng(seed, "meanpool"))

    def forward(self, preliminary: np.ndarray | Tensor) -> Tensor:
        windows = preliminary if isinstance(preliminary, Tensor) else Tensor(preliminary)
        pooled = windows.mean(axis=0).mean(axis=0)  # (F',)
        return self.project(pooled.reshape(1, -1)).reshape(self.output_dim)


def build_preliminary_embedder(
    kind: str,
    input_dim: int,
    output_dim: int = 16,
    seed: int = 0,
    ts2vec_config: TS2VecConfig | None = None,
) -> PreliminaryEmbedder:
    """Factory for the preliminary embedding stage: ``"ts2vec"`` or ``"mlp"``."""
    if kind == "ts2vec":
        config = ts2vec_config or TS2VecConfig(output_dim=output_dim)
        return TS2Vec(input_dim, config=config, seed=seed)
    if kind == "mlp":
        return MLPEmbedder(input_dim, output_dim=output_dim, seed=seed)
    raise ValueError(f"unknown preliminary embedder {kind!r}")
