"""Set-Transformer blocks (Lee et al., ICML 2019).

The task embedding learning module stacks two of these attention-based
pooling layers — *IntraSetPool* over the time axis of each window and
*InterSetPool* over the set of windows (paper Eqs. 11–12).  Each layer is a
self-attention block (SAB) followed by pooling-by-multihead-attention (PMA)
with a learned seed vector, so the pooling itself is parameterized and
permutation-invariant.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat
from ..nn import init
from ..nn.attention import MultiHeadAttention
from ..nn.linear import Linear
from ..nn.module import Module, Parameter
from ..nn.norm import LayerNorm


class MAB(Module):
    """Multihead Attention Block: ``MAB(X, Y) = LN(H + FF(H))``, H = LN(X + Att(X, Y))."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.attention = MultiHeadAttention(dim, num_heads=num_heads, rng=rng)
        self.ff = Linear(dim, dim, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)

    def forward(self, x: Tensor, y: Tensor) -> Tensor:
        hidden = self.norm1(x + self.attention(x, y, y))
        return self.norm2(hidden + self.ff(hidden).relu())


class SAB(Module):
    """Set Attention Block: self-attention among set elements."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.mab = MAB(dim, num_heads, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.mab(x, x)


class PMA(Module):
    """Pooling by Multihead Attention with ``k`` learned seed vectors."""

    def __init__(
        self, dim: int, num_heads: int, num_seeds: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.seed = Parameter(init.xavier_uniform(rng, (num_seeds, dim)))
        self.mab = MAB(dim, num_heads, rng)

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        seeds = concat([self.seed.reshape(1, *self.seed.shape)] * batch, axis=0)
        return self.mab(seeds, x)


class SetPool(Module):
    """One Set-Transformer pooling layer: project -> SAB -> PMA -> vector.

    Maps a set ``(batch, set_size, in_dim)`` to one vector ``(batch, out_dim)``
    per batch element, invariant to the ordering of set elements.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_heads: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = init.resolve_rng(rng)
        heads = num_heads if out_dim % num_heads == 0 else 1
        self.project = Linear(in_dim, out_dim, rng=rng)
        self.sab = SAB(out_dim, heads, rng)
        self.pma = PMA(out_dim, heads, num_seeds=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        projected = self.project(x)
        pooled = self.pma(self.sab(projected))  # (batch, 1, out_dim)
        return pooled.reshape(pooled.shape[0], pooled.shape[2])
