"""Search strategies: evolutionary + Round-Robin + zero-shot (Algorithm 2)."""

from ..comparator.scoring import RankingEngine, RankingStats, sanitize_win_matrix
from .autocts_plus import AutoCTSPlusConfig, AutoCTSPlusResult, AutoCTSPlusSearch
from .baselines import (
    SearchTrace,
    comparator_rank_search,
    grid_search_hyper,
    random_search,
)
from .evolutionary import (
    CompareFn,
    EvolutionConfig,
    EvolutionResult,
    EvolutionarySearch,
)
from .round_robin import round_robin_ranking, round_robin_top_k, win_counts
from .zero_shot import PhaseTimings, ZeroShotConfig, ZeroShotResult, ZeroShotSearch

__all__ = [
    "AutoCTSPlusConfig",
    "AutoCTSPlusResult",
    "AutoCTSPlusSearch",
    "SearchTrace",
    "comparator_rank_search",
    "grid_search_hyper",
    "random_search",
    "CompareFn",
    "RankingEngine",
    "RankingStats",
    "sanitize_win_matrix",
    "EvolutionConfig",
    "EvolutionResult",
    "EvolutionarySearch",
    "round_robin_ranking",
    "round_robin_top_k",
    "win_counts",
    "PhaseTimings",
    "ZeroShotConfig",
    "ZeroShotResult",
    "ZeroShotSearch",
]
