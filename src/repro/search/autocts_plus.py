"""The fully-supervised AutoCTS+ search pipeline (the SIGMOD 2023 method).

Unlike the zero-shot AutoCTS++ (Algorithm 2), AutoCTS+ searches *per task*:

1. sample M arch-hypers from the joint space and measure each with the
   early-validation proxy R' (Eq. 22) on the target task,
2. train a task-specific :class:`~repro.comparator.ahc.AHC` on dynamically
   generated pairs of the measured samples,
3. run the comparator-guided evolutionary search and Round-Robin top-K,
4. fully train the top-K candidates and keep the best on validation.

This is the framework AutoCTS++ generalizes: same joint search space, same
comparator idea, but the comparator must be re-trained (and samples
re-collected) for every new task.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..comparator.ahc import AHC
from ..comparator.pairing import dynamic_pairs, has_comparable_pair, pair_index_arrays
from ..comparator.scoring import RankingEngine
from ..core.health import DivergenceError
from ..core.model import build_forecaster
from ..core.trainer import TrainConfig, evaluate_forecaster, train_forecaster
from ..metrics import ForecastScores
from ..nn.loss import bce_with_logits
from ..obs.heartbeat import heartbeat
from ..obs.trace import span
from ..optim import Adam
from typing import TYPE_CHECKING

from ..space.archhyper import ArchHyper
from ..space.encoding import encode_batch
from ..space.sampling import JointSearchSpace
from ..tasks.proxy import ProxyConfig
from ..tasks.task import Task
from ..utils.seeding import derive_rng
from .evolutionary import EvolutionConfig, EvolutionarySearch

if TYPE_CHECKING:
    from ..runtime import Checkpoint, ProxyEvaluator


@dataclass(frozen=True)
class AutoCTSPlusConfig:
    """Knobs of the fully-supervised pipeline."""

    n_measured_samples: int = 12  # paper: hundreds (GPU-scale)
    ahc_epochs: int = 40
    pairs_per_epoch: int = 32
    ahc_lr: float = 1e-3
    # Capacity of the per-task comparator (CLI: --ahc-embed-dim etc.).
    ahc_embed_dim: int = 32
    ahc_gin_layers: int = 3
    ahc_hidden_dim: int = 32
    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    final_train_epochs: int = 10
    batch_size: int = 64
    seed: int = 0
    proxy: ProxyConfig = field(default_factory=ProxyConfig)
    # Successive-halving proxy collection (see docs/fidelity.md).  ``None``
    # keeps the flat, bitwise-identical single-rung path.
    fidelity_schedule: str | None = None
    fidelity_label_policy: str | None = None
    warm_dir: str | None = None


@dataclass
class AutoCTSPlusResult:
    best: ArchHyper
    best_scores: ForecastScores
    top_candidates: list[ArchHyper]
    measured: list[tuple[ArchHyper, float]]
    ahc_losses: list[float]


class AutoCTSPlusSearch:
    """Per-task joint architecture-hyperparameter search with an AHC."""

    def __init__(
        self,
        space: JointSearchSpace | None = None,
        config: AutoCTSPlusConfig | None = None,
        evaluator: "ProxyEvaluator | None" = None,
        checkpoint_dir: Path | str | None = None,
    ) -> None:
        self.space = space or JointSearchSpace()
        self.config = config if config is not None else AutoCTSPlusConfig()
        self.evaluator = evaluator
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        # Populated by collect_samples when a fidelity schedule culled some
        # candidates early; None on the flat path (every score is eligible).
        self._label_eligible: np.ndarray | None = None

    def _checkpoint(self, stage: str, kind: str) -> "Checkpoint | None":
        """The per-stage progress checkpoint, or ``None`` when not enabled."""
        if self.checkpoint_dir is None:
            return None
        from ..runtime import Checkpoint

        return Checkpoint(
            self.checkpoint_dir / f"autocts-{stage}-seed{self.config.seed}.ckpt",
            kind=kind,
        )

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def collect_samples(self, task: Task) -> list[tuple[ArchHyper, float]]:
        """Stage 1: measure random arch-hypers with the proxy on the task.

        With a ``fidelity_schedule`` configured, the pool runs through the
        successive-halving rungs instead of a flat full-fidelity sweep; under
        the default ``survivors`` label policy only full-fidelity scores are
        eligible as comparator training labels (culled candidates keep their
        last partial score, tagged via ``_label_eligible``).
        """
        from ..runtime import (
            EvalProgress,
            get_default_evaluator,
            resolve_fidelity_schedule,
            resolve_label_policy,
        )

        rng = derive_rng(self.config.seed, "autocts+-collect")
        candidates = self.space.sample_batch(self.config.n_measured_samples, rng)
        evaluator = self.evaluator or get_default_evaluator()
        checkpoint = self._checkpoint("collect", "eval-progress")
        progress = EvalProgress(checkpoint) if checkpoint is not None else None
        schedule = resolve_fidelity_schedule(self.config.fidelity_schedule)
        with span("collect", task=task.name, candidates=len(candidates)):
            if schedule is None:
                scores = evaluator.evaluate_pairs(
                    [(ah, task) for ah in candidates],
                    self.config.proxy,
                    progress=progress,
                )
                self._label_eligible = None
            else:
                result = evaluator.evaluate_rungs(
                    [(ah, task) for ah in candidates],
                    self.config.proxy,
                    schedule=schedule,
                    progress=progress,
                    warm_dir=self.config.warm_dir,
                )
                scores = result.scores
                policy = resolve_label_policy(self.config.fidelity_label_policy)
                self._label_eligible = (
                    np.asarray(result.full_fidelity_mask(), dtype=bool)
                    if policy == "survivors"
                    else None
                )
        if not has_comparable_pair(np.asarray(scores), self._label_eligible):
            raise DivergenceError(
                f"every measured candidate diverged on task {task.name!r}; "
                "no comparator training signal exists (try a smaller lr range "
                "or inspect the task data for non-finite values)"
            )
        return list(zip(candidates, scores))

    def train_comparator(
        self, measured: list[tuple[ArchHyper, float]]
    ) -> tuple[AHC, list[float]]:
        """Stage 2: fit a task-specific AHC on dynamically generated pairs.

        Epoch state (weights, Adam moments, RNG stream, loss history) is
        checkpointed when a ``checkpoint_dir`` is configured, so an
        interrupted fit resumes bitwise-identically.
        """
        config = self.config
        arch_hypers = [ah for ah, _ in measured]
        scores = np.array([score for _, score in measured])
        eligible = self._label_eligible
        encodings = encode_batch(arch_hypers, self.space.hyper_space)
        ahc = AHC(
            embed_dim=config.ahc_embed_dim,
            gin_layers=config.ahc_gin_layers,
            hidden_dim=config.ahc_hidden_dim,
            seed=config.seed,
        )
        optimizer = Adam(ahc.parameters(), lr=config.ahc_lr)
        rng = derive_rng(config.seed, "autocts+-ahc")
        losses: list[float] = []
        start_epoch = 0
        checkpoint = self._checkpoint("ahc", "ahc-train")
        if checkpoint is not None:
            # The scores digest ties the checkpoint to this exact measured set.
            checkpoint.meta = {
                "epochs": config.ahc_epochs,
                "pairs": config.pairs_per_epoch,
                "lr": config.ahc_lr,
                "seed": config.seed,
                "scores_sha256": hashlib.sha256(
                    np.ascontiguousarray(scores).tobytes()
                ).hexdigest(),
            }
            if eligible is not None:
                # Only present under a fidelity label policy that masks some
                # scores — keeps flat-path checkpoint metadata byte-identical
                # while refusing to resume across policy changes.
                checkpoint.meta["eligible_sha256"] = hashlib.sha256(
                    np.ascontiguousarray(eligible).tobytes()
                ).hexdigest()
            state = checkpoint.load()
            if state is not None:
                ahc.load_state_dict(state["model"])
                optimizer.load_state_dict(state["optimizer"])
                rng.bit_generator.state = state["rng"]
                losses = list(state["losses"])
                start_epoch = int(state["epoch"])
        with span(
            "train-comparator", epochs=config.ahc_epochs, samples=len(measured)
        ) as handle:
            for epoch in range(start_epoch, config.ahc_epochs):
                pairs = dynamic_pairs(
                    scores, rng, config.pairs_per_epoch, eligible=eligible
                )
                index_a, index_b, labels = pair_index_arrays(pairs)
                # Encode-once: one GIN forward over the measured pool, pair
                # sides gathered from the shared embedding batch.
                embeddings = ahc.embed(encodings)
                logits = ahc.score_pairs(embeddings[index_a], embeddings[index_b])
                loss = bce_with_logits(logits, labels)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
                if checkpoint is not None:
                    checkpoint.save(
                        {
                            "epoch": epoch + 1,
                            "model": ahc.state_dict(),
                            "optimizer": optimizer.state_dict(),
                            "rng": rng.bit_generator.state,
                            "losses": list(losses),
                        }
                    )
                heartbeat(
                    "ahc-train",
                    lambda: (
                        f"AHC epoch {epoch + 1}/{config.ahc_epochs}; "
                        f"loss {losses[-1]:.4f}"
                    ),
                )
            if losses:
                handle.set(final_loss=losses[-1])
        return ahc, losses

    def rank(self, ahc: AHC) -> list[ArchHyper]:
        """Stage 3: comparator-guided evolutionary search.

        The trained AHC is wrapped in an encode-once :class:`RankingEngine`
        so survivors keep their embeddings across generations (the AHC's
        weights are frozen for the whole stage, which is what makes the
        cache sound).
        """
        engine = RankingEngine(ahc, space=self.space.hyper_space)
        search = EvolutionarySearch(
            self.space, engine, self.config.evolution, seed=self.config.seed
        )
        return search.run(
            checkpoint=self._checkpoint("evolution", "evolution")
        ).top_candidates

    def train_final(
        self, task: Task, candidates: list[ArchHyper]
    ) -> tuple[ArchHyper, ForecastScores]:
        """Stage 4: fully train the top-K, keep the validation winner.

        A candidate that diverges during final training (or lands on a
        non-finite validation score) is dropped from contention instead of
        crashing the pipeline; if *every* candidate diverges, a
        :class:`~repro.core.health.DivergenceError` propagates.
        """
        config = self.config
        prepared = task.prepared
        best_val = float("inf")
        best: tuple[ArchHyper, ForecastScores] | None = None
        with span("final-train", task=task.name, candidates=len(candidates)):
            for position, candidate in enumerate(candidates):
                with span(
                    "final-candidate", candidate=candidate.key(), index=position
                ) as handle:
                    model = build_forecaster(
                        candidate, task.data, task.horizon, seed=config.seed
                    )
                    try:
                        train_forecaster(
                            model,
                            prepared.train,
                            prepared.val,
                            TrainConfig(
                                epochs=config.final_train_epochs,
                                batch_size=config.batch_size,
                                patience=max(3, config.final_train_epochs // 3),
                                seed=config.seed,
                            ),
                        )
                    except DivergenceError:
                        handle.set(diverged=True)
                        continue  # diverged candidate: automatic loser
                    val = evaluate_forecaster(model, prepared.val, config.batch_size)
                    primary = val.primary(single_step=task.single_step)
                    handle.set(val=float(primary))
                    if np.isfinite(primary) and primary < best_val:
                        best_val = primary
                        test = evaluate_forecaster(
                            model,
                            prepared.test,
                            config.batch_size,
                            inverse=prepared.inverse,
                        )
                        best = (candidate, test)
                heartbeat(
                    "final-train",
                    lambda: (
                        f"final training {position + 1}/{len(candidates)} "
                        f"candidates; best val "
                        + (f"{best_val:.4f}" if best is not None else "n/a")
                    ),
                )
        if best is None:
            raise DivergenceError(
                f"all {len(candidates)} final candidates diverged on task "
                f"{task.name!r}"
            )
        return best

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def search(self, task: Task) -> AutoCTSPlusResult:
        with span("search", method="autocts+", task=task.name) as handle:
            measured = self.collect_samples(task)
            ahc, losses = self.train_comparator(measured)
            top = self.rank(ahc)
            best, scores = self.train_final(task, top)
            handle.set(best=best.key())
        return AutoCTSPlusResult(
            best=best,
            best_scores=scores,
            top_candidates=top,
            measured=measured,
            ahc_losses=losses,
        )
