"""The fully-supervised AutoCTS+ search pipeline (the SIGMOD 2023 method).

Unlike the zero-shot AutoCTS++ (Algorithm 2), AutoCTS+ searches *per task*:

1. sample M arch-hypers from the joint space and measure each with the
   early-validation proxy R' (Eq. 22) on the target task,
2. train a task-specific :class:`~repro.comparator.ahc.AHC` on dynamically
   generated pairs of the measured samples,
3. run the comparator-guided evolutionary search and Round-Robin top-K,
4. fully train the top-K candidates and keep the best on validation.

This is the framework AutoCTS++ generalizes: same joint search space, same
comparator idea, but the comparator must be re-trained (and samples
re-collected) for every new task.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..comparator.ahc import AHC
from ..comparator.pairing import dynamic_pairs, pair_index_arrays
from ..core.model import build_forecaster
from ..core.trainer import TrainConfig, evaluate_forecaster, train_forecaster
from ..metrics import ForecastScores
from ..nn.loss import bce_with_logits
from ..optim import Adam
from typing import TYPE_CHECKING

from ..space.archhyper import ArchHyper
from ..space.encoding import encode_batch
from ..space.sampling import JointSearchSpace
from ..tasks.proxy import ProxyConfig
from ..tasks.task import Task
from ..utils.seeding import derive_rng
from .evolutionary import EvolutionConfig, EvolutionarySearch

if TYPE_CHECKING:
    from ..runtime import ProxyEvaluator


@dataclass(frozen=True)
class AutoCTSPlusConfig:
    """Knobs of the fully-supervised pipeline."""

    n_measured_samples: int = 12  # paper: hundreds (GPU-scale)
    ahc_epochs: int = 40
    pairs_per_epoch: int = 32
    ahc_lr: float = 1e-3
    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    final_train_epochs: int = 10
    batch_size: int = 64
    seed: int = 0
    proxy: ProxyConfig = field(default_factory=ProxyConfig)


@dataclass
class AutoCTSPlusResult:
    best: ArchHyper
    best_scores: ForecastScores
    top_candidates: list[ArchHyper]
    measured: list[tuple[ArchHyper, float]]
    ahc_losses: list[float]


class AutoCTSPlusSearch:
    """Per-task joint architecture-hyperparameter search with an AHC."""

    def __init__(
        self,
        space: JointSearchSpace | None = None,
        config: AutoCTSPlusConfig = AutoCTSPlusConfig(),
        evaluator: "ProxyEvaluator | None" = None,
    ) -> None:
        self.space = space or JointSearchSpace()
        self.config = config
        self.evaluator = evaluator

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def collect_samples(self, task: Task) -> list[tuple[ArchHyper, float]]:
        """Stage 1: measure random arch-hypers with the proxy on the task."""
        from ..runtime import get_default_evaluator

        rng = derive_rng(self.config.seed, "autocts+-collect")
        candidates = self.space.sample_batch(self.config.n_measured_samples, rng)
        evaluator = self.evaluator or get_default_evaluator()
        scores = evaluator.evaluate_many(candidates, task, self.config.proxy)
        return list(zip(candidates, scores))

    def train_comparator(
        self, measured: list[tuple[ArchHyper, float]]
    ) -> tuple[AHC, list[float]]:
        """Stage 2: fit a task-specific AHC on dynamically generated pairs."""
        config = self.config
        arch_hypers = [ah for ah, _ in measured]
        scores = np.array([score for _, score in measured])
        encodings = encode_batch(arch_hypers, self.space.hyper_space)
        ahc = AHC(embed_dim=32, gin_layers=3, hidden_dim=32, seed=config.seed)
        optimizer = Adam(ahc.parameters(), lr=config.ahc_lr)
        rng = derive_rng(config.seed, "autocts+-ahc")
        losses: list[float] = []
        for _ in range(config.ahc_epochs):
            pairs = dynamic_pairs(scores, rng, config.pairs_per_epoch)
            index_a, index_b, labels = pair_index_arrays(pairs)
            logits = ahc(
                tuple(a[index_a] for a in encodings),
                tuple(a[index_b] for a in encodings),
            )
            loss = bce_with_logits(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        return ahc, losses

    def rank(self, ahc: AHC) -> list[ArchHyper]:
        """Stage 3: comparator-guided evolutionary search."""

        def compare(candidates: list[ArchHyper]) -> np.ndarray:
            return ahc.predict_wins(candidates, self.space.hyper_space)

        search = EvolutionarySearch(
            self.space, compare, self.config.evolution, seed=self.config.seed
        )
        return search.run().top_candidates

    def train_final(
        self, task: Task, candidates: list[ArchHyper]
    ) -> tuple[ArchHyper, ForecastScores]:
        """Stage 4: fully train the top-K, keep the validation winner."""
        config = self.config
        prepared = task.prepared
        best_val = float("inf")
        best: tuple[ArchHyper, ForecastScores] | None = None
        for candidate in candidates:
            model = build_forecaster(candidate, task.data, task.horizon, seed=config.seed)
            train_forecaster(
                model,
                prepared.train,
                prepared.val,
                TrainConfig(
                    epochs=config.final_train_epochs,
                    batch_size=config.batch_size,
                    patience=max(3, config.final_train_epochs // 3),
                    seed=config.seed,
                ),
            )
            val = evaluate_forecaster(model, prepared.val, config.batch_size)
            primary = val.primary(single_step=task.single_step)
            if primary < best_val:
                best_val = primary
                test = evaluate_forecaster(
                    model, prepared.test, config.batch_size, inverse=prepared.inverse
                )
                best = (candidate, test)
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def search(self, task: Task) -> AutoCTSPlusResult:
        measured = self.collect_samples(task)
        ahc, losses = self.train_comparator(measured)
        top = self.rank(ahc)
        best, scores = self.train_final(task, top)
        return AutoCTSPlusResult(
            best=best,
            best_scores=scores,
            top_candidates=top,
            measured=measured,
            ahc_losses=losses,
        )
