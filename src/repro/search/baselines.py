"""Search baselines: random search, hyperparameter grid search, one-shot ranking.

* :func:`random_search` — train ``n`` random candidates with the proxy, keep
  the best; the budget-matched sanity baseline for the EA ablation.
* :func:`grid_search_hyper` — the paper's treatment of manual baselines under
  new forecasting settings: grid-search the hidden dimension H and output
  dimension I (2 x 2 in the paper) around a fixed architecture.
* :func:`comparator_rank_search` — one-shot comparator ranking without
  evolution (the two-stage-pruning shape of surrogate-ranking NAS): sample a
  pool, rank it with the encode-once :class:`RankingEngine`, Round-Robin
  select the top-K.  The EA-vs-pure-ranking ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import TYPE_CHECKING

import numpy as np

from ..comparator.scoring import RankingEngine
from ..core.health import DivergenceError
from ..space.archhyper import ArchHyper
from ..space.sampling import JointSearchSpace
from ..tasks.proxy import ProxyConfig, SENTINEL_SCORE, is_sentinel_score
from ..tasks.task import Task
from .round_robin import round_robin_top_k

if TYPE_CHECKING:
    from ..runtime import ProxyEvaluator


@dataclass
class SearchTrace:
    candidates: list[ArchHyper]
    scores: list[float]

    def __post_init__(self) -> None:
        # Non-finite scores (possible when scores come from a custom eval
        # path rather than the evaluator) are clamped to the deterministic
        # sentinel so argmin below can never pick a NaN.
        self.scores = [
            float(s) if np.isfinite(s) else SENTINEL_SCORE for s in self.scores
        ]

    @property
    def diverged(self) -> int:
        """How many candidates carry the diverged-sentinel score."""
        return sum(1 for s in self.scores if is_sentinel_score(s))

    @property
    def best(self) -> ArchHyper:
        if self.diverged == len(self.scores):
            raise DivergenceError(
                f"all {len(self.scores)} candidates diverged; no best exists"
            )
        return self.candidates[int(np.argmin(self.scores))]

    @property
    def best_score(self) -> float:
        return float(np.min(self.scores))


def random_search(
    task: Task,
    space: JointSearchSpace,
    n_candidates: int,
    proxy: ProxyConfig | None = None,
    seed: int = 0,
    evaluator: "ProxyEvaluator | None" = None,
) -> SearchTrace:
    """Evaluate ``n_candidates`` random arch-hypers with the proxy."""
    from ..runtime import get_default_evaluator

    proxy = proxy if proxy is not None else ProxyConfig()
    rng = np.random.default_rng(seed)
    candidates = space.sample_batch(n_candidates, rng)
    scores = (evaluator or get_default_evaluator()).evaluate_many(
        candidates, task, proxy
    )
    return SearchTrace(candidates=candidates, scores=scores)


def comparator_rank_search(
    engine: RankingEngine,
    space: JointSearchSpace,
    n_candidates: int,
    top_k: int = 3,
    seed: int = 0,
) -> list[ArchHyper]:
    """Rank one random pool with the comparator, no evolution (top-K out).

    ``engine`` wraps a trained AHC/T-AHC; ranking the pool costs
    ``n_candidates`` encoder forwards (fewer when the engine has already
    embedded some of them).
    """
    if n_candidates < 1:
        raise ValueError("n_candidates must be >= 1")
    rng = np.random.default_rng(seed)
    candidates = space.sample_batch(n_candidates, rng)
    wins = engine(candidates)
    return [candidates[i] for i in round_robin_top_k(wins, min(top_k, n_candidates))]


def grid_search_hyper(
    base: ArchHyper,
    task: Task,
    hidden_dims: tuple[int, ...],
    output_dims: tuple[int, ...],
    proxy: ProxyConfig | None = None,
    evaluator: "ProxyEvaluator | None" = None,
) -> SearchTrace:
    """Sweep H x I around a fixed architecture (the baselines' grid search)."""
    from ..runtime import get_default_evaluator

    proxy = proxy if proxy is not None else ProxyConfig()
    candidates = [
        ArchHyper(
            arch=base.arch,
            hyper=dc_replace(base.hyper, hidden_dim=h, output_dim=i),
        )
        for h in hidden_dims
        for i in output_dims
    ]
    scores = (evaluator or get_default_evaluator()).evaluate_many(
        candidates, task, proxy
    )
    return SearchTrace(candidates=candidates, scores=scores)
