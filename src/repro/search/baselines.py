"""Non-comparator search baselines: random search and hyperparameter grid search.

* :func:`random_search` — train ``n`` random candidates with the proxy, keep
  the best; the budget-matched sanity baseline for the EA ablation.
* :func:`grid_search_hyper` — the paper's treatment of manual baselines under
  new forecasting settings: grid-search the hidden dimension H and output
  dimension I (2 x 2 in the paper) around a fixed architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from ..space.archhyper import ArchHyper
from ..space.sampling import JointSearchSpace
from ..tasks.proxy import ProxyConfig, measure_arch_hyper
from ..tasks.task import Task


@dataclass
class SearchTrace:
    candidates: list[ArchHyper]
    scores: list[float]

    @property
    def best(self) -> ArchHyper:
        return self.candidates[int(np.argmin(self.scores))]

    @property
    def best_score(self) -> float:
        return float(np.min(self.scores))


def random_search(
    task: Task,
    space: JointSearchSpace,
    n_candidates: int,
    proxy: ProxyConfig = ProxyConfig(),
    seed: int = 0,
) -> SearchTrace:
    """Evaluate ``n_candidates`` random arch-hypers with the proxy."""
    rng = np.random.default_rng(seed)
    candidates = space.sample_batch(n_candidates, rng)
    scores = [measure_arch_hyper(ah, task, proxy) for ah in candidates]
    return SearchTrace(candidates=candidates, scores=scores)


def grid_search_hyper(
    base: ArchHyper,
    task: Task,
    hidden_dims: tuple[int, ...],
    output_dims: tuple[int, ...],
    proxy: ProxyConfig = ProxyConfig(),
) -> SearchTrace:
    """Sweep H x I around a fixed architecture (the baselines' grid search)."""
    candidates = [
        ArchHyper(
            arch=base.arch,
            hyper=dc_replace(base.hyper, hidden_dim=h, output_dim=i),
        )
        for h in hidden_dims
        for i in output_dims
    ]
    scores = [measure_arch_hyper(ah, task, proxy) for ah in candidates]
    return SearchTrace(candidates=candidates, scores=scores)
