"""Evolutionary search over the joint space guided by a comparator.

The heuristic search of Section 3.3: an initial population is the top-``kp``
of ``K_s`` random samples (ranked with the comparator); each generation
produces offspring by crossover (probability ``p1``) and mutation
(probability ``p2``); the comparator removes inferior individuals to keep the
population at ``kp``; and the final answer is the Round-Robin top-``K``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..comparator.scoring import sanitize_win_matrix
from ..obs.heartbeat import heartbeat
from ..obs.trace import span
from ..space.archhyper import ArchHyper
from ..space.sampling import JointSearchSpace
from .round_robin import round_robin_top_k

if TYPE_CHECKING:
    from ..runtime import Checkpoint

# A compare function maps a candidate list to an (n, n) win matrix.  A
# RankingEngine satisfies this protocol directly — and is the preferred
# implementation, since it embeds each unique candidate once and keeps
# population survivors cached across generations.
CompareFn = Callable[[list[ArchHyper]], np.ndarray]


@dataclass(frozen=True)
class EvolutionConfig:
    """EA knobs; defaults follow the paper (Section 4.1.4)."""

    initial_samples: int = 300  # K_s (paper: 300,000 at GPU scale)
    population_size: int = 10  # k_p
    generations: int = 5
    offspring_per_generation: int = 10
    crossover_prob: float = 0.8  # p1
    mutation_prob: float = 0.2  # p2
    top_k: int = 3  # final Round-Robin selection

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.initial_samples < self.population_size:
            raise ValueError("initial_samples must be >= population_size")
        if not (0 <= self.crossover_prob <= 1 and 0 <= self.mutation_prob <= 1):
            raise ValueError("probabilities must lie in [0, 1]")


@dataclass
class EvolutionResult:
    top_candidates: list[ArchHyper]
    final_population: list[ArchHyper]
    comparisons: int


class EvolutionarySearch:
    """Comparator-guided genetic search over arch-hypers."""

    def __init__(
        self,
        space: JointSearchSpace,
        compare: CompareFn,
        config: EvolutionConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.compare = compare
        self.config = config if config is not None else EvolutionConfig()
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.comparisons = 0

    def _rank(self, candidates: list[ArchHyper], k: int) -> list[ArchHyper]:
        with span("rank", candidates=len(candidates), k=k):
            wins = self.compare(candidates)
            self.comparisons += len(candidates) * (len(candidates) - 1)
            # The guard is centralized in repro.comparator.scoring (a no-op for
            # RankingEngine output, which is sanitized at the source; it
            # protects Round-Robin from NaNs produced by custom CompareFns).
            wins = sanitize_win_matrix(wins)
            return [candidates[i] for i in round_robin_top_k(wins, k)]

    def _offspring(self, population: list[ArchHyper]) -> ArchHyper:
        rng = self._rng
        if len(population) >= 2 and rng.random() < self.config.crossover_prob:
            pair = rng.choice(len(population), size=2, replace=False)
            child = self.space.crossover(population[pair[0]], population[pair[1]], rng)
        else:
            child = population[int(rng.integers(len(population)))]
        if rng.random() < self.config.mutation_prob:
            child = self.space.mutate(child, rng)
        return child

    def run(
        self,
        initial: list[ArchHyper] | None = None,
        checkpoint: "Checkpoint | None" = None,
    ) -> EvolutionResult:
        """Run the full search; ``initial`` overrides the K_s random sample.

        With a ``checkpoint``, the population, RNG stream, and comparison
        counter are persisted after the initial ranking and after every
        generation; an interrupted search resumes at the next generation and
        selects a bitwise-identical winner.
        """
        config = self.config
        if checkpoint is not None:
            checkpoint.meta = {"config": asdict(config), "seed": self.seed}
        started = time.monotonic()
        with span(
            "evolution",
            generations=config.generations,
            population=config.population_size,
        ):
            population, start_generation = self._restore(checkpoint)
            if population is None:
                if initial is None:
                    initial = self.space.sample_batch(
                        config.initial_samples, self._rng
                    )
                population = self._rank(initial, config.population_size)
                self._save(checkpoint, 0, population)
            for generation in range(start_generation, config.generations):
                with span("generation", index=generation):
                    seen = {ah.key() for ah in population}
                    offspring: list[ArchHyper] = []
                    while len(offspring) < config.offspring_per_generation:
                        child = self._offspring(population)
                        if child.key() not in seen:
                            seen.add(child.key())
                            offspring.append(child)
                    population = self._rank(
                        population + offspring, config.population_size
                    )
                self._save(checkpoint, generation + 1, population)
                heartbeat(
                    "evolution",
                    lambda: (
                        f"evolution {time.monotonic() - started:.0f}s elapsed; "
                        f"generation {generation + 1}/{config.generations}; "
                        f"{self.comparisons} comparisons"
                    ),
                )
            top = self._rank(population, min(config.top_k, len(population)))
        return EvolutionResult(
            top_candidates=top,
            final_population=population,
            comparisons=self.comparisons,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _restore(
        self, checkpoint: "Checkpoint | None"
    ) -> tuple[list[ArchHyper] | None, int]:
        if checkpoint is None:
            return None, 0
        state = checkpoint.load()
        if state is None:
            return None, 0
        self._rng.bit_generator.state = state["rng"]
        self.comparisons = int(state["comparisons"])
        population = [ArchHyper.from_dict(d) for d in state["population"]]
        return population, int(state["generation"])

    def _save(
        self,
        checkpoint: "Checkpoint | None",
        generation: int,
        population: list[ArchHyper],
    ) -> None:
        if checkpoint is None:
            return
        checkpoint.save(
            {
                "generation": generation,
                "population": [ah.to_dict() for ah in population],
                "rng": self._rng.bit_generator.state,
                "comparisons": self.comparisons,
            }
        )
