"""Evolutionary search over the joint space guided by a comparator.

The heuristic search of Section 3.3: an initial population is the top-``kp``
of ``K_s`` random samples (ranked with the comparator); each generation
produces offspring by crossover (probability ``p1``) and mutation
(probability ``p2``); the comparator removes inferior individuals to keep the
population at ``kp``; and the final answer is the Round-Robin top-``K``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..space.archhyper import ArchHyper
from ..space.sampling import JointSearchSpace
from .round_robin import round_robin_top_k

# A compare function maps a candidate list to an (n, n) win matrix.
CompareFn = Callable[[list[ArchHyper]], np.ndarray]


@dataclass(frozen=True)
class EvolutionConfig:
    """EA knobs; defaults follow the paper (Section 4.1.4)."""

    initial_samples: int = 300  # K_s (paper: 300,000 at GPU scale)
    population_size: int = 10  # k_p
    generations: int = 5
    offspring_per_generation: int = 10
    crossover_prob: float = 0.8  # p1
    mutation_prob: float = 0.2  # p2
    top_k: int = 3  # final Round-Robin selection

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.initial_samples < self.population_size:
            raise ValueError("initial_samples must be >= population_size")
        if not (0 <= self.crossover_prob <= 1 and 0 <= self.mutation_prob <= 1):
            raise ValueError("probabilities must lie in [0, 1]")


@dataclass
class EvolutionResult:
    top_candidates: list[ArchHyper]
    final_population: list[ArchHyper]
    comparisons: int


class EvolutionarySearch:
    """Comparator-guided genetic search over arch-hypers."""

    def __init__(
        self,
        space: JointSearchSpace,
        compare: CompareFn,
        config: EvolutionConfig = EvolutionConfig(),
        seed: int = 0,
    ) -> None:
        self.space = space
        self.compare = compare
        self.config = config
        self._rng = np.random.default_rng(seed)
        self.comparisons = 0

    def _rank(self, candidates: list[ArchHyper], k: int) -> list[ArchHyper]:
        wins = self.compare(candidates)
        self.comparisons += len(candidates) * (len(candidates) - 1)
        return [candidates[i] for i in round_robin_top_k(wins, k)]

    def _offspring(self, population: list[ArchHyper]) -> ArchHyper:
        rng = self._rng
        if len(population) >= 2 and rng.random() < self.config.crossover_prob:
            pair = rng.choice(len(population), size=2, replace=False)
            child = self.space.crossover(population[pair[0]], population[pair[1]], rng)
        else:
            child = population[int(rng.integers(len(population)))]
        if rng.random() < self.config.mutation_prob:
            child = self.space.mutate(child, rng)
        return child

    def run(self, initial: list[ArchHyper] | None = None) -> EvolutionResult:
        """Run the full search; ``initial`` overrides the K_s random sample."""
        config = self.config
        if initial is None:
            initial = self.space.sample_batch(config.initial_samples, self._rng)
        population = self._rank(initial, config.population_size)
        for _ in range(config.generations):
            seen = {ah.key() for ah in population}
            offspring: list[ArchHyper] = []
            while len(offspring) < config.offspring_per_generation:
                child = self._offspring(population)
                if child.key() not in seen:
                    seen.add(child.key())
                    offspring.append(child)
            population = self._rank(population + offspring, config.population_size)
        top = self._rank(population, min(config.top_k, len(population)))
        return EvolutionResult(
            top_candidates=top,
            final_population=population,
            comparisons=self.comparisons,
        )
