"""Zero-shot search for unseen tasks (paper Algorithm 2).

Given a pre-trained T-AHC, a preliminary embedder (TS2Vec), and an unseen
task ``T = (D, P, Q)``:

1. **Embed** — compute the task's preliminary embedding in minutes,
2. **Rank** — evolutionary search over the joint space with the T-AHC as the
   fitness comparator, Round-Robin selecting the top-K candidates,
3. **Train** — fully train the top-K candidates on the task's training split
   and return the one with the best validation accuracy.

Each phase is timed separately; Figure 7 of the paper reports exactly these
three phase runtimes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..comparator.scoring import RankingEngine
from ..comparator.tahc import TAHC
from ..core.health import DivergenceError
from ..core.model import build_forecaster
from ..core.trainer import TrainConfig, evaluate_forecaster, train_forecaster
from ..embedding.task_encoder import PreliminaryEmbedder, preliminary_task_embedding
from ..metrics import ForecastScores
from ..obs.trace import span
from ..space.archhyper import ArchHyper
from ..space.sampling import JointSearchSpace
from ..tasks.task import Task
from .evolutionary import EvolutionConfig, EvolutionarySearch

if TYPE_CHECKING:
    from ..runtime import Checkpoint


@dataclass(frozen=True)
class ZeroShotConfig:
    """Knobs of Algorithm 2."""

    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    final_train_epochs: int = 10
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 1e-4
    seed: int = 0
    embedding_windows: int = 8


@dataclass
class PhaseTimings:
    """Wall-clock seconds of the three phases (paper Figure 7)."""

    embedding: float = 0.0
    ranking: float = 0.0
    training: float = 0.0

    @property
    def search(self) -> float:
        """The paper's 'search time': embedding + ranking."""
        return self.embedding + self.ranking


@dataclass
class ZeroShotResult:
    best: ArchHyper
    best_scores: ForecastScores
    top_candidates: list[ArchHyper]
    candidate_scores: list[float]
    timings: PhaseTimings
    comparisons: int


class ZeroShotSearch:
    """End-to-end zero-shot model search for unseen CTS forecasting tasks."""

    def __init__(
        self,
        model: TAHC,
        embedder: PreliminaryEmbedder,
        space: JointSearchSpace | None = None,
        config: ZeroShotConfig = ZeroShotConfig(),
    ) -> None:
        self.model = model
        self.embedder = embedder
        self.space = space or JointSearchSpace()
        self.config = config

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def embed_task(self, task: Task) -> np.ndarray:
        """Phase 1: the preliminary embedding of the unseen task."""
        windows = task.embedding_windows(self.config.embedding_windows)
        return preliminary_task_embedding(self.embedder, windows)

    def rank(
        self,
        preliminary: np.ndarray,
        initial: list[ArchHyper] | None = None,
        checkpoint: "Checkpoint | None" = None,
        engine: RankingEngine | None = None,
    ) -> tuple[list[ArchHyper], int]:
        """Phase 2: evolutionary ranking under the task-conditioned T-AHC.

        The comparator is wrapped in a :class:`RankingEngine` scoped to this
        call: the refined task embedding E' is computed once for the whole
        evolution (not once per generation), and population survivors keep
        their GIN embeddings cached across generations.  A caller may hand
        in its own ``engine`` (the service layer keeps one per task so
        candidate embeddings are encoded once *across requests*, not just
        across generations); cached embeddings are bitwise-identical to
        fresh ones, so the ranking is unchanged.
        """
        if engine is None:
            engine = RankingEngine(
                self.model, preliminary=preliminary, space=self.space.hyper_space
            )
        search = EvolutionarySearch(
            self.space, engine, self.config.evolution, seed=self.config.seed
        )
        result = search.run(initial, checkpoint=checkpoint)
        return result.top_candidates, result.comparisons

    def train_final(
        self, task: Task, candidates: list[ArchHyper]
    ) -> tuple[ArchHyper, ForecastScores, list[float]]:
        """Phase 3: fully train top-K candidates, keep the best on validation.

        A candidate that diverges in final training (or produces a non-finite
        validation score) records the deterministic sentinel score and is
        dropped from contention.  If every candidate diverges, a
        :class:`~repro.core.health.DivergenceError` propagates.
        """
        from ..tasks.proxy import SENTINEL_SCORE

        prepared = task.prepared
        config = self.config
        best_val = float("inf")
        best: tuple[ArchHyper, ForecastScores] | None = None
        val_scores: list[float] = []
        for candidate in candidates:
            model = build_forecaster(
                candidate, task.data, task.horizon, seed=config.seed
            )
            try:
                train_forecaster(
                    model,
                    prepared.train,
                    prepared.val,
                    TrainConfig(
                        epochs=config.final_train_epochs,
                        batch_size=config.batch_size,
                        lr=config.lr,
                        weight_decay=config.weight_decay,
                        patience=max(3, config.final_train_epochs // 3),
                        seed=config.seed,
                    ),
                )
            except DivergenceError:
                val_scores.append(SENTINEL_SCORE)
                continue  # diverged candidate: automatic loser
            val = evaluate_forecaster(model, prepared.val, config.batch_size)
            val_primary = val.primary(single_step=task.single_step)
            if not np.isfinite(val_primary):
                val_scores.append(SENTINEL_SCORE)
                continue
            val_scores.append(val_primary)
            if val_primary < best_val:
                best_val = val_primary
                test = evaluate_forecaster(
                    model, prepared.test, config.batch_size, inverse=prepared.inverse
                )
                best = (candidate, test)
        if best is None:
            raise DivergenceError(
                f"all {len(candidates)} final candidates diverged on task "
                f"{task.name!r}"
            )
        return best[0], best[1], val_scores

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def search(
        self,
        task: Task,
        initial: list[ArchHyper] | None = None,
        ranking_checkpoint: "Checkpoint | None" = None,
    ) -> ZeroShotResult:
        """Run Algorithm 2 end to end on an unseen task."""
        timings = PhaseTimings()
        with span("search", method="zero-shot", task=task.name) as handle:
            start = time.perf_counter()
            with span("embedding", task=task.name):
                preliminary = self.embed_task(task)
            timings.embedding = time.perf_counter() - start

            start = time.perf_counter()
            with span("ranking", task=task.name):
                top, comparisons = self.rank(
                    preliminary, initial, checkpoint=ranking_checkpoint
                )
            timings.ranking = time.perf_counter() - start

            start = time.perf_counter()
            with span("training", task=task.name, candidates=len(top)):
                best, scores, candidate_scores = self.train_final(task, top)
            timings.training = time.perf_counter() - start
            handle.set(best=best.key(), comparisons=comparisons)

        return ZeroShotResult(
            best=best,
            best_scores=scores,
            top_candidates=top,
            candidate_scores=candidate_scores,
            timings=timings,
            comparisons=comparisons,
        )
