"""Round-Robin top-K selection (paper Section 3.3).

A neural comparator does not guarantee transitivity, so sorting algorithms
that rely on it are unsafe.  Round-Robin counts, for each candidate, the
number of pairwise wins against all others and keeps the K biggest winners —
correct regardless of transitivity.
"""

from __future__ import annotations

import numpy as np


def win_counts(win_matrix: np.ndarray) -> np.ndarray:
    """Number of wins per candidate from an (n, n) 0/1 win matrix."""
    matrix = np.asarray(win_matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"win matrix must be square, got {matrix.shape}")
    return matrix.sum(axis=1)


def round_robin_top_k(win_matrix: np.ndarray, k: int) -> list[int]:
    """Indices of the top-``k`` candidates by win count (stable order)."""
    counts = win_counts(win_matrix)
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, len(counts))
    # Stable sort on negative counts: ties keep the original sampling order.
    order = np.argsort(-counts, kind="stable")
    return [int(i) for i in order[:k]]


def round_robin_ranking(win_matrix: np.ndarray) -> list[int]:
    """Full ranking (best first) by win counts."""
    return round_robin_top_k(win_matrix, len(win_matrix))
