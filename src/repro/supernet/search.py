"""Supernet-based architecture search (the AutoCTS/AutoSTG approach).

First-order DARTS-style bi-level optimization: operator weights descend the
training loss while the architecture parameters ``alpha`` descend the
validation loss, alternating per epoch; the discrete architecture is derived
at the end.  This is the fully-supervised, per-task, architecture-only
predecessor that AutoCTS++'s zero-shot joint search replaces — and the
benchmark :mod:`bench_ablation_supernet_cost` quantifies why (cost per new
task).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Tensor
from ..data.graph import transition_matrix
from ..data.windows import iterate_batches
from ..nn.loss import mae_loss
from ..optim import Adam, clip_grad_norm
from ..space.arch import Architecture, CANDIDATE_OPERATORS
from ..tasks.task import Task
from ..utils.seeding import derive_rng
from .supernet import SuperNetForecaster


@dataclass(frozen=True)
class SupernetConfig:
    """Knobs of the supernet search (predefined hyperparameters!).

    Note what the paper criticizes: ``num_nodes`` and ``hidden_dim`` must be
    fixed *before* searching — the supernet cannot search hyperparameters.
    """

    num_nodes: int = 4
    hidden_dim: int = 16
    num_blocks: int = 1
    epochs: int = 5
    batch_size: int = 64
    weight_lr: float = 1e-3
    alpha_lr: float = 3e-3
    grad_clip: float = 5.0
    seed: int = 0


@dataclass
class SupernetSearchResult:
    architecture: Architecture
    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)


def supernet_search(
    task: Task,
    config: SupernetConfig = SupernetConfig(),
    operators: tuple[str, ...] = CANDIDATE_OPERATORS,
) -> SupernetSearchResult:
    """Train a supernet on ``task`` and derive the discrete ST-block."""
    prepared = task.prepared
    data = task.data
    supports = [transition_matrix(data.adjacency), transition_matrix(data.adjacency.T)]
    model = SuperNetForecaster(
        num_nodes=config.num_nodes,
        n_series=data.n_series,
        n_features=data.n_features,
        horizon=task.horizon,
        hidden_dim=config.hidden_dim,
        num_blocks=config.num_blocks,
        supports=supports,
        operators=operators,
        seed=config.seed,
    )
    weight_optimizer = Adam(model.operator_parameters(), lr=config.weight_lr)
    alpha_optimizer = Adam(model.architecture_parameters(), lr=config.alpha_lr)
    rng = derive_rng(config.seed, "supernet-search")
    result = SupernetSearchResult(architecture=model.derive_architecture())

    val_batches = list(iterate_batches(prepared.val, config.batch_size))
    for epoch in range(config.epochs):
        # Interleave: weights on training batches, alphas on validation
        # batches (first-order approximation of the bi-level problem).
        train_losses = []
        val_cycle = 0
        for x, y in iterate_batches(prepared.train, config.batch_size, rng=rng):
            weight_optimizer.zero_grad()
            loss = mae_loss(model(Tensor(x)), y)
            loss.backward()
            clip_grad_norm(weight_optimizer.parameters, config.grad_clip)
            weight_optimizer.step()
            train_losses.append(loss.item())

            vx, vy = val_batches[val_cycle % len(val_batches)]
            val_cycle += 1
            alpha_optimizer.zero_grad()
            val_loss = mae_loss(model(Tensor(vx)), vy)
            val_loss.backward()
            alpha_optimizer.step()
        result.train_losses.append(float(np.mean(train_losses)))
        with_val = [
            mae_loss(model(Tensor(vx)), vy).item() for vx, vy in val_batches[:4]
        ]
        result.val_losses.append(float(np.mean(with_val)))

    result.architecture = model.derive_architecture()
    return result
