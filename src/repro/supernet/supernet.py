"""The supernet: a fully-connected DAG of mixed operations (Fig. 1a, Eq. 5–6).

Every forward node pair ``(h_i, h_j)``, ``i < j``, carries one
:class:`MixedOperation`; each node is the sum of its incoming mixed edges
(Eq. 6).  After training, :meth:`SuperNet.derive_architecture` keeps, per
node, the (at most two) incoming edges whose dominant operators have the
largest weights — the derivation rule of AutoCTS/AutoSTG — yielding a
discrete :class:`~repro.space.arch.Architecture`.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..nn.conv import PointwiseConv2d
from ..nn.module import Module, ModuleList
from ..operators import OperatorContext
from ..space.arch import Architecture, CANDIDATE_OPERATORS, Edge, MAX_INCOMING_EDGES
from ..utils.seeding import derive_rng


class SuperNet(Module):
    """One supernet ST-block over ``num_nodes`` latent nodes."""

    def __init__(
        self,
        num_nodes: int,
        context: OperatorContext,
        operators: tuple[str, ...] = CANDIDATE_OPERATORS,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if num_nodes < 2:
            raise ValueError("a supernet needs at least two nodes")
        from .mixed import MixedOperation

        self.num_nodes = num_nodes
        rng = derive_rng(seed, "supernet")
        self.pairs: list[tuple[int, int]] = [
            (i, j) for j in range(1, num_nodes) for i in range(j)
        ]
        self.mixed = ModuleList(
            MixedOperation(context, operators, rng) for _ in self.pairs
        )

    def forward(self, x: Tensor) -> Tensor:
        nodes: list[Tensor | None] = [x] + [None] * (self.num_nodes - 1)
        for (source, target), mixed in zip(self.pairs, self.mixed):
            term = mixed(nodes[source])
            current = nodes[target]
            nodes[target] = term if current is None else current + term
        return nodes[-1]

    # ------------------------------------------------------------------
    # Architecture parameters vs. operator weights
    # ------------------------------------------------------------------
    def architecture_parameters(self):
        """The alpha vectors (trained on validation data in DARTS style)."""
        return [mixed.alpha for mixed in self.mixed]

    def operator_parameters(self):
        """All parameters except the alphas."""
        alphas = {id(a) for a in self.architecture_parameters()}
        return [p for p in self.parameters() if id(p) not in alphas]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def derive_architecture(self) -> Architecture:
        """Discretize: keep the strongest <=2 incoming edges per node."""
        best: dict[int, list[tuple[float, int, str]]] = {
            node: [] for node in range(1, self.num_nodes)
        }
        for (source, target), mixed in zip(self.pairs, self.mixed):
            name, weight = mixed.strongest()
            best[target].append((weight, source, name))
        edges: list[Edge] = []
        for target, incoming in best.items():
            incoming.sort(reverse=True)
            for weight, source, name in incoming[:MAX_INCOMING_EDGES]:
                edges.append(Edge(source, target, name))
        return Architecture(num_nodes=self.num_nodes, edges=tuple(edges))


class SuperNetForecaster(Module):
    """A forecasting model whose ST-backbone is a stack of supernets."""

    def __init__(
        self,
        num_nodes: int,
        n_series: int,
        n_features: int,
        horizon: int,
        hidden_dim: int = 16,
        num_blocks: int = 1,
        supports: list[np.ndarray] | None = None,
        operators: tuple[str, ...] = CANDIDATE_OPERATORS,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = derive_rng(seed, "supernet-model")
        context = OperatorContext(
            hidden_dim=hidden_dim,
            n_nodes=n_series,
            supports=supports or [],
            rng=rng,
        )
        self.horizon = horizon
        self.n_features = n_features
        self.input_proj = PointwiseConv2d(n_features, hidden_dim, rng=rng)
        self.blocks = ModuleList(
            SuperNet(num_nodes, context, operators, seed=seed + block)
            for block in range(num_blocks)
        )
        self.out_head = PointwiseConv2d(hidden_dim, horizon * n_features, rng=rng)

    def forward(self, x) -> Tensor:
        from ..autodiff import as_tensor

        x = as_tensor(x)
        batch, _, n_nodes, _ = x.shape
        latent = self.input_proj(x.transpose(0, 3, 2, 1))
        for block in self.blocks:
            latent = latent + block(latent)
        projected = self.out_head(latent[:, :, :, -1:].relu())
        return (
            projected.reshape(batch, self.horizon, self.n_features, n_nodes)
            .transpose(0, 1, 3, 2)
        )

    def architecture_parameters(self):
        params = []
        for block in self.blocks:
            params.extend(block.architecture_parameters())
        return params

    def operator_parameters(self):
        alphas = {id(a) for a in self.architecture_parameters()}
        return [p for p in self.parameters() if id(p) not in alphas]

    def derive_architecture(self) -> Architecture:
        """Derive from the first block (blocks share the discovered cell)."""
        return self.blocks[0].derive_architecture()
