"""Supernet-based architecture search (the predecessor approach, Fig. 1a)."""

from .mixed import MixedOperation
from .search import SupernetConfig, SupernetSearchResult, supernet_search
from .supernet import SuperNet, SuperNetForecaster

__all__ = [
    "MixedOperation",
    "SupernetConfig",
    "SupernetSearchResult",
    "supernet_search",
    "SuperNet",
    "SuperNetForecaster",
]
