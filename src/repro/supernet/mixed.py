"""Mixed operations for supernet-based (DARTS-style) architecture search.

Implements Eq. 5 of the paper: the transformation between two supernet nodes
is the softmax-weighted sum of *all* candidate operators, with the weights
``alpha`` learned jointly with the operator parameters.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, softmax
from ..nn import init
from ..nn.module import Module, ModuleList, Parameter
from ..operators import OperatorContext, build_operator


class MixedOperation(Module):
    """softmax(alpha)-weighted sum of every candidate operator (Eq. 5)."""

    def __init__(
        self,
        context: OperatorContext,
        operators: tuple[str, ...],
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if len(operators) < 2:
            raise ValueError("a mixed operation needs at least two candidates")
        self.operator_names = tuple(operators)
        self.candidates = ModuleList(build_operator(name, context) for name in operators)
        self.alpha = Parameter(init.normal(rng, (len(operators),), std=0.01))

    def weights(self) -> Tensor:
        return softmax(self.alpha, axis=0)

    def forward(self, x: Tensor) -> Tensor:
        weights = self.weights()
        out = None
        for index, operator in enumerate(self.candidates):
            term = operator(x) * weights[index : index + 1].reshape(1, 1, 1, 1)
            out = term if out is None else out + term
        return out

    def strongest(self) -> tuple[str, float]:
        """The dominant operator and its softmax weight (for derivation)."""
        weights = self.weights().numpy()
        index = int(np.argmax(weights))
        return self.operator_names[index], float(weights[index])
