"""Render a trace file: per-stage rollup, span tree, candidate timeline.

The consumer of ``--trace`` output is ``repro trace report``, which answers
the three questions the ISSUE's motivation names: *where did wall-clock go*
(the per-stage rollup), *what did the run actually do* (the reconstructed
span tree, pool-worker evaluations attributed to their batch), and *what
happened to candidate X* (the per-candidate timeline with retry attempts
and divergence flags).

Traces are versioned (:data:`~repro.obs.trace.TRACE_SCHEMA_VERSION`);
records from a newer major schema are rejected loudly rather than
misrendered, and unparseable lines (a run killed mid-write) are skipped
with a count so a truncated trace still reports.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

from .trace import TRACE_SCHEMA_VERSION


@dataclass
class Trace:
    """A parsed trace file."""

    meta: dict | None
    spans: list[dict]
    skipped_lines: int = 0

    @property
    def schema(self) -> int:
        return int(self.meta.get("schema", 1)) if self.meta else 1


@dataclass
class StageStats:
    """Rollup of every span sharing one name."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0
    errors: int = 0
    durations: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile of the recorded durations (nearest-rank).

        Offline rollups keep every duration, so unlike the live registry's
        log-bucketed :class:`~repro.obs.metrics.Histogram` these quantiles
        are exact, not bucket upper bounds.
        """
        if not self.durations:
            return 0.0
        ordered = sorted(self.durations)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.quantile(0.5)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


def load_trace(path: str | os.PathLike) -> Trace:
    """Parse a JSONL trace, tolerating truncated lines, rejecting future schemas."""
    meta: dict | None = None
    spans: list[dict] = []
    skipped = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            version = int(record.get("v", 1))
            if version > TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"trace record schema v{version} is newer than supported "
                    f"v{TRACE_SCHEMA_VERSION}; upgrade repro to read this trace"
                )
            kind = record.get("kind")
            if kind == "trace":
                meta = record
            elif kind == "span":
                spans.append(record)
            else:
                skipped += 1
    return Trace(meta=meta, spans=spans, skipped_lines=skipped)


def stage_rollup(spans: list[dict]) -> dict[str, StageStats]:
    """Aggregate span durations by name (insertion-ordered by first use)."""
    rollup: dict[str, StageStats] = {}
    for record in spans:
        stats = rollup.setdefault(record["name"], StageStats())
        duration = float(record.get("dur", 0.0))
        stats.count += 1
        stats.total += duration
        stats.max = max(stats.max, duration)
        stats.durations.append(duration)
        if "error" in record.get("attrs", {}):
            stats.errors += 1
    return rollup


def build_tree(spans: list[dict]) -> tuple[list[dict], dict[str, list[dict]]]:
    """Return (roots, children-by-parent-id), each level ordered by wall start.

    Spans whose parent never closed (a crashed run) are promoted to roots so
    the tree always accounts for every record.
    """
    by_id = {record["id"]: record for record in spans}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for record in spans:
        parent = record.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    order = lambda record: record.get("wall0", 0.0)  # noqa: E731
    roots.sort(key=order)
    for siblings in children.values():
        siblings.sort(key=order)
    return roots, children


_TREE_ATTRS = (
    "task",
    "method",
    "candidate",
    "index",
    "pairs",
    "evaluated",
    "candidates",
    "attempt",
    "diverged",
    "error",
    # fidelity-rung spans (successive-halving proxy collection)
    "rung",
    "epochs",
    "promoted",
    "culled",
)


def _shorten(value, limit: int = 48) -> str:
    """Candidate keys are full ArchHyper JSON; keep display lines readable."""
    text = str(value)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _describe(record: dict) -> str:
    attrs = record.get("attrs", {})
    shown = [f"{key}={_shorten(attrs[key])}" for key in _TREE_ATTRS if key in attrs]
    suffix = f" [{', '.join(shown)}]" if shown else ""
    return f"{record['name']} {float(record.get('dur', 0.0)):.3f}s{suffix}"


def render_tree(
    roots: list[dict],
    children: dict[str, list[dict]],
    max_depth: int | None = None,
    max_children: int = 40,
) -> str:
    """Indented span tree; sibling overflow beyond ``max_children`` is elided."""
    lines: list[str] = []

    def walk(record: dict, depth: int) -> None:
        lines.append("  " * depth + _describe(record))
        if max_depth is not None and depth + 1 > max_depth:
            return
        kids = children.get(record["id"], [])
        for child in kids[:max_children]:
            walk(child, depth + 1)
        if len(kids) > max_children:
            lines.append("  " * (depth + 1) + f"... {len(kids) - max_children} more")

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def render_rollup(rollup: dict[str, StageStats]) -> str:
    """The per-stage time/count table, widest totals first."""
    header = (
        f"{'stage':<18} {'count':>6} {'total s':>9} {'mean s':>9} "
        f"{'p50 s':>9} {'p99 s':>9} {'max s':>9} {'errors':>7}"
    )
    lines = [header, "-" * len(header)]
    for name, stats in sorted(rollup.items(), key=lambda kv: -kv[1].total):
        lines.append(
            f"{name:<18} {stats.count:>6} {stats.total:>9.3f} "
            f"{stats.mean:>9.3f} {stats.p50:>9.3f} {stats.p99:>9.3f} "
            f"{stats.max:>9.3f} {stats.errors:>7}"
        )
    return "\n".join(lines)


def candidate_timeline(spans: list[dict]) -> list[dict]:
    """Per-candidate evaluation events in wall-clock order."""
    events = [
        record
        for record in spans
        if record["name"] == "eval" and "candidate" in record.get("attrs", {})
    ]
    events.sort(key=lambda record: record.get("wall0", 0.0))
    return events


def render_timeline(spans: list[dict], limit: int = 60) -> str:
    events = candidate_timeline(spans)
    if not events:
        return "(no per-candidate eval spans in this trace)"
    origin = events[0].get("wall0", 0.0)
    lines = []
    for record in events[:limit]:
        attrs = record.get("attrs", {})
        offset = record.get("wall0", 0.0) - origin
        flags = []
        if attrs.get("attempt", 1) != 1:
            flags.append(f"attempt {attrs['attempt']}")
        if attrs.get("diverged"):
            flags.append("diverged")
        if "error" in attrs:
            flags.append(f"error {attrs['error']}")
        note = f" ({', '.join(flags)})" if flags else ""
        lines.append(
            f"+{offset:8.3f}s  {float(record.get('dur', 0.0)):7.3f}s  "
            f"task={attrs.get('task', '?')}  "
            f"{_shorten(attrs.get('candidate', '?'), 72)}{note}"
        )
    if len(events) > limit:
        lines.append(f"... {len(events) - limit} more evaluations")
    return "\n".join(lines)


def filter_spans(spans: list[dict], job: str) -> list[dict]:
    """Only the spans stamped with correlation id ``job``."""
    job = str(job)
    return [record for record in spans if record.get("corr") == job]


def render_report(
    path: str | os.PathLike,
    max_depth: int | None = None,
    job: str | None = None,
) -> str:
    """The full ``repro trace report`` output for one trace file.

    With ``job`` set, only spans carrying that correlation id are reported —
    the offline twin of the service's ``GET /jobs/<id>/trace``.
    """
    trace = load_trace(path)
    if job is not None:
        trace = Trace(
            meta=trace.meta,
            spans=filter_spans(trace.spans, job),
            skipped_lines=trace.skipped_lines,
        )
    roots, children = build_tree(trace.spans)
    sections = [
        f"trace {os.fspath(path)}: schema v{trace.schema}, "
        f"{len(trace.spans)} spans"
        + (f" for job {job}" if job is not None else "")
        + (f", {trace.skipped_lines} unparseable line(s) skipped" if trace.skipped_lines else ""),
        "",
        "== per-stage rollup ==",
        render_rollup(stage_rollup(trace.spans)),
        "",
        "== span tree ==",
        render_tree(roots, children, max_depth=max_depth),
        "",
        "== candidate timeline ==",
        render_timeline(trace.spans),
    ]
    return "\n".join(sections)
