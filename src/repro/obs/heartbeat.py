"""Rate-limited heartbeat progress lines for long-running campaigns.

A multi-hour search emits nothing between its start banner and its final
report; a heartbeat is a one-line progress pulse (elapsed time, generation,
eval throughput, cache hit-rate) printed at most once per ``min_interval``
seconds per key.  Heartbeats are **off by default** — the library never
prints unasked — and are enabled by the CLI unless ``--quiet`` is given.

Two properties keep them safe to leave wired into hot loops:

* the first ``beat`` for a key only *arms* the timer, so short runs (tests,
  smoke scales) stay silent even with heartbeats enabled;
* the message is built lazily (``render`` is a callable), so a rate-limited
  or disabled beat costs one dict lookup and a clock read, never string
  formatting.
"""

from __future__ import annotations

import time
from typing import Callable


class Heartbeat:
    """Per-key rate limiter around a line sink (normally ``print``)."""

    def __init__(
        self,
        min_interval: float = 10.0,
        sink: Callable[[str], None] = print,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.min_interval = float(min_interval)
        self.sink = sink
        self.clock = clock
        self._last: dict[str, float] = {}

    def beat(self, key: str, render: Callable[[], str], force: bool = False) -> bool:
        """Emit ``render()`` for ``key`` if its interval elapsed; True if emitted."""
        now = self.clock()
        last = self._last.get(key)
        if last is None:
            self._last[key] = now  # arm: never print on the very first pulse
            return False
        if not force and now - last < self.min_interval:
            return False
        self._last[key] = now
        self.sink(f"[heartbeat] {render()}")
        return True


_enabled = False
_default = Heartbeat()


def configure_heartbeat(
    enabled: bool = True,
    min_interval: float | None = None,
    sink: Callable[[str], None] | None = None,
) -> None:
    """Turn the process-wide heartbeat on/off and tune interval/sink."""
    global _enabled
    _enabled = bool(enabled)
    if min_interval is not None:
        _default.min_interval = float(min_interval)
    if sink is not None:
        _default.sink = sink
    if not enabled:
        _default._last.clear()


def heartbeat_enabled() -> bool:
    return _enabled


def heartbeat(key: str, render: Callable[[], str], force: bool = False) -> bool:
    """Pulse the process-wide heartbeat; no-op (False) when disabled."""
    if not _enabled:
        return False
    return _default.beat(key, render, force=force)


def latency_summary(histogram, unit: str = "s") -> str:
    """Format a histogram's p50/p99 for a heartbeat line or dashboard cell.

    Accepts a live :class:`~repro.obs.metrics.Histogram` or its
    ``snapshot()`` dict; an instrument with no observations renders as
    ``p50=- p99=-`` so heartbeat lines stay fixed-shape.
    """
    if histogram is None:
        p50 = p99 = None
    elif isinstance(histogram, dict):
        p50, p99 = histogram.get("p50"), histogram.get("p99")
    else:
        p50, p99 = histogram.quantile(0.5), histogram.quantile(0.99)
    fmt = lambda v: "-" if v is None else f"{v:.3g}{unit}"  # noqa: E731
    return f"p50={fmt(p50)} p99={fmt(p99)}"
