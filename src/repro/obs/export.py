"""Export surfaces for the metrics registry: Prometheus text + HTML dash.

Two renderers over the same :meth:`MetricsRegistry.snapshot` contract, both
dependency-free (stdlib only) so the service can expose them without
growing the install footprint:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``GET /metrics?format=prom``).  Histograms export their log-bucket
  counts as the cumulative ``_bucket{le="..."}`` series Prometheus expects,
  plus ``_sum``/``_count``, so external scrapers compute the same quantiles
  the in-process :meth:`Histogram.quantile` reports.
* :func:`render_dashboard` — the ``GET /dash`` status page: a single
  self-contained HTML document (no scripts, no external assets, a meta
  refresh for liveness) showing queue depth, worker heartbeats, per-state
  job counts, latency quantiles, cache hit rates, and recent traces.

Both renderers iterate snapshots sorted by metric name (the registry
guarantees the order), so successive scrapes diff cleanly.
"""

from __future__ import annotations

import html
import json

from .metrics import bucket_upper_bound

_PROM_KINDS = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus-legal one."""
    cleaned = "".join(
        ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_" for ch in name
    )
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: dict[str, dict]) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        kind = _PROM_KINDS.get(snap.get("kind"))
        if kind is None:
            continue
        prom = prometheus_name(name)
        lines.append(f"# TYPE {prom} {kind}")
        if kind == "histogram":
            cumulative = 0
            buckets = snap.get("buckets") or {}
            for index in sorted(int(key) for key in buckets):
                cumulative += int(buckets[str(index)])
                le = _format_value(bucket_upper_bound(index))
                lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {int(snap["count"])}')
            lines.append(f"{prom}_sum {_format_value(snap['total'])}")
            lines.append(f"{prom}_count {int(snap['count'])}")
        else:
            lines.append(f"{prom} {_format_value(snap['value'])}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Dashboard
# ---------------------------------------------------------------------------

_DASH_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5rem;
       background: #11151c; color: #d8dee9; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem;
     border-bottom: 1px solid #2e3440; padding-bottom: .25rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { text-align: left; padding: .2rem .8rem .2rem 0; font-size: .85rem; }
th { color: #81a1c1; font-weight: 600; }
tr:nth-child(even) td { background: #161b24; }
.num { text-align: right; } .muted { color: #4c566a; }
.badge { padding: 0 .4rem; border-radius: .3rem; background: #2e3440; }
"""


def _table(headers: list[str], rows: list[list[str]], numeric: set[int]) -> str:
    head = "".join(f"<th>{html.escape(h)}</th>" for h in headers)
    body = []
    for row in rows:
        cells = "".join(
            f'<td class="num">{html.escape(cell)}</td>'
            if i in numeric
            else f"<td>{html.escape(cell)}</td>"
            for i, cell in enumerate(row)
        )
        body.append(f"<tr>{cells}</tr>")
    if not body:
        body.append('<tr><td class="muted">(none)</td></tr>')
    return f"<table><tr>{head}</tr>{''.join(body)}</table>"


def _fmt(value, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def render_dashboard(data: dict, refresh: int = 5) -> str:
    """Render the ``/dash`` status page from a pre-gathered data dict.

    Expected keys (all optional — missing sections render as empty):
    ``title``, ``jobs`` (state → count), ``workers`` (list of
    ``{owner, job, age}``), ``cache`` (label → display string), ``metrics``
    (a registry snapshot; histograms feed the latency table), and
    ``traces`` (recent span records, newest last).
    """
    title = str(data.get("title", "repro service"))
    sections: list[str] = []

    jobs = data.get("jobs") or {}
    depth = sum(int(n) for state, n in jobs.items() if state in ("pending", "running"))
    job_rows = [[state, str(jobs[state])] for state in sorted(jobs)]
    sections.append(
        f"<h2>Jobs <span class=\"badge\">queue depth {depth}</span></h2>"
        + _table(["state", "count"], job_rows, numeric={1})
    )

    worker_rows = [
        [
            str(worker.get("owner", "?")),
            str(worker.get("job") or "idle"),
            f"{float(worker.get('age', 0.0)):.1f}s",
        ]
        for worker in data.get("workers") or []
    ]
    sections.append(
        "<h2>Workers</h2>"
        + _table(["owner", "job", "last beat"], worker_rows, numeric={2})
    )

    metrics = data.get("metrics") or {}
    latency_rows = [
        [
            name,
            str(snap.get("count", 0)),
            _fmt(snap.get("mean")),
            _fmt(snap.get("p50")),
            _fmt(snap.get("p99")),
            _fmt(snap.get("max")),
        ]
        for name, snap in sorted(metrics.items())
        if snap.get("kind") == "histogram"
    ]
    sections.append(
        "<h2>Latency (seconds)</h2>"
        + _table(
            ["metric", "n", "mean", "p50", "p99", "max"],
            latency_rows,
            numeric={1, 2, 3, 4, 5},
        )
    )

    cache_rows = [[label, str(value)] for label, value in sorted((data.get("cache") or {}).items())]
    sections.append(
        "<h2>Caches</h2>" + _table(["cache", "hit rate"], cache_rows, numeric={1})
    )

    trace_rows = []
    for record in reversed(list(data.get("traces") or [])[-40:]):
        attrs = record.get("attrs") or {}
        trace_rows.append(
            [
                str(record.get("name", "?")),
                str(record.get("corr") or "-"),
                f"{float(record.get('dur', 0.0)):.3f}s",
                _shorten_json(attrs),
            ]
        )
    sections.append(
        "<h2>Recent traces</h2>"
        + _table(["span", "job", "dur", "attrs"], trace_rows, numeric={2})
    )

    return (
        "<!doctype html><html><head>"
        f'<meta charset="utf-8"><meta http-equiv="refresh" content="{int(refresh)}">'
        f"<title>{html.escape(title)}</title>"
        f"<style>{_DASH_STYLE}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        + "".join(sections)
        + "</body></html>"
    )


def _shorten_json(attrs: dict, limit: int = 96) -> str:
    text = json.dumps(attrs, default=str, sort_keys=True)
    return text if len(text) <= limit else text[: limit - 1] + "…"
