"""The metrics registry: named counters, gauges, and histograms.

Every layer of the pipeline used to keep its own ad-hoc counters
(``EvalStats``, ``RankingStats``, the health monitor's report, the GIN
encoder's forward accounting).  This module gives them one home: a
:class:`MetricsRegistry` of named instruments with a single
:meth:`~MetricsRegistry.snapshot` API, so "what did this run spend and
where" is one call instead of four object walks.

Design points:

* **Parent propagation** — a registry built with ``parent=`` tees every
  update into the parent's instrument of the same name.  Per-component
  stats objects (one per evaluator, one per ranking engine) keep isolated
  local counts *and* feed the process-wide registry, which is what the
  CLI's consolidated end-of-run snapshot renders.
* **Scopes** — :func:`metrics_scope` pushes a fresh (or given) registry as
  the ambient default on the current thread.  Process-pool evaluation
  workers run each unit of work inside a scope, snapshot the delta, and
  ship it back through the result plumbing; the parent merges it with
  :meth:`MetricsRegistry.merge`, so worker-side counters (health monitor,
  profiling hooks) are not lost at the process boundary.
* **Observability only** — instruments never feed computation.  Updates
  are plain attribute arithmetic (no locks); a lost increment under racing
  threads costs a count, never a score.

Naming convention (see ``docs/observability.md``): dotted lowercase
``component.metric`` — ``eval.misses``, ``rank.embed_hits``,
``health.bad_steps``, ``profile.forward.<Module>.seconds``.
"""

from __future__ import annotations

import contextlib
import math
import threading


class Counter:
    """A monotonically increasing (float-valued) count."""

    kind = "counter"
    __slots__ = ("name", "value", "_parent")

    def __init__(self, name: str, parent: "Counter | None" = None) -> None:
        self.name = name
        self.value = 0.0
        self._parent = parent

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount
        if self._parent is not None:
            self._parent.inc(amount)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge(self, snap: dict) -> None:
        self.inc(float(snap["value"]))


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "value", "_parent")

    def __init__(self, name: str, parent: "Gauge | None" = None) -> None:
        self.name = name
        self.value = 0.0
        self._parent = parent

    def set(self, value: float) -> None:
        self.value = float(value)
        if self._parent is not None:
            self._parent.set(value)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge(self, snap: dict) -> None:
        self.set(float(snap["value"]))


# Log-spaced histogram buckets: 5 per decade, so any latency from
# microseconds to hours lands within ~58% of its true value.  Bucket ``i``
# covers ``(BASE**(i-1), BASE**i]``; the index is a pure function of the
# observed value, so two registries bucketing the same observation always
# agree and bucket counts merge exactly (addition) across processes.
HISTOGRAM_BUCKETS_PER_DECADE = 5
_LOG_BASE = math.log(10.0) / HISTOGRAM_BUCKETS_PER_DECADE
# Values <= 0 (a clamped negative wait, an exact-zero duration) get one
# dedicated bucket below every positive one, with upper bound 0.0.
NONPOSITIVE_BUCKET = -(10**6)
# Exponents clamped so BASE**i never overflows; base**400 ~ 1e80.
_MIN_EXPONENT, _MAX_EXPONENT = -400, 400


def bucket_index(value: float) -> int:
    """The fixed log-bucket index of one observation."""
    if value <= 0.0:
        return NONPOSITIVE_BUCKET
    exponent = math.ceil(math.log(value) / _LOG_BASE - 1e-12)
    return min(max(exponent, _MIN_EXPONENT), _MAX_EXPONENT)


def bucket_upper_bound(index: int) -> float:
    """The inclusive upper bound of bucket ``index``."""
    if index == NONPOSITIVE_BUCKET:
        return 0.0
    return math.exp(index * _LOG_BASE)


class Histogram:
    """Fixed log-bucketed summary of an observed distribution.

    Tracks count/total/min/max plus a sparse map of log-bucket counts, from
    which p50/p90/p99 are estimated (a quantile resolves to its bucket's
    upper bound, clamped to the observed extremes).  Because the bucket of
    an observation is a pure function of its value and every piece of state
    merges exactly (counts add, extremes min/max), any split of an
    observation stream across worker registries yields *identical* merged
    quantiles to a single registry — the property ``tests/test_obs.py``
    asserts with hypothesis and the service's ``/metrics`` endpoints rely
    on when folding worker deltas.
    """

    kind = "histogram"
    QUANTILES = (0.5, 0.9, 0.99)
    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_parent")

    def __init__(self, name: str, parent: "Histogram | None" = None) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}
        self._parent = parent

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if self._parent is not None:
            self._parent.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile from the bucket counts.

        Returns the upper bound of the bucket containing the target rank,
        clamped into ``[min, max]`` — a deterministic function of state
        that merges exactly, so merged registries report bitwise-identical
        quantiles.  ``None`` when nothing was observed.
        """
        if self.count == 0 or self.min is None or self.max is None:
            return None
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                return min(max(bucket_upper_bound(index), self.min), self.max)
        return self.max  # unreachable unless state was merged inconsistently

    def snapshot(self) -> dict:
        snap = {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(index): n for index, n in sorted(self.buckets.items())},
        }
        for q in self.QUANTILES:
            snap[f"p{int(q * 100)}"] = self.quantile(q)
        return snap

    def merge(self, snap: dict) -> None:
        count = int(snap["count"])
        if count == 0:
            return
        self.count += count
        self.total += float(snap["total"])
        for bound, pick in (("min", min), ("max", max)):
            other = snap.get(bound)
            if other is None:
                continue
            ours = getattr(self, bound)
            setattr(self, bound, other if ours is None else pick(ours, other))
        # Older snapshots (pre-bucket traces) simply carry no bucket map;
        # the summary still merges, quantiles degrade to the extremes.
        for key, n in (snap.get("buckets") or {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + int(n)
        if self._parent is not None:
            self._parent.merge(snap)


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """Named instruments with get-or-create access and one snapshot API."""

    def __init__(self, parent: "MetricsRegistry | None" = None) -> None:
        self.parent = parent
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            parent = self.parent._get(name, cls) if self.parent is not None else None
            instrument = cls(name, parent)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {instrument.kind}, not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # ------------------------------------------------------------------
    # Snapshot / merge / render
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """All instruments as plain JSON-safe dicts, sorted by name.

        The sort is by metric *name alone*, never by kind or insertion
        order, so snapshot diffs and every renderer downstream
        (:meth:`render`, the Prometheus exposition in
        :mod:`repro.obs.export`, ``/metrics`` bodies) are stable across
        runs that create instruments in different orders.
        """
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def merge(self, snapshot: dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` (e.g. relayed from a worker) into this
        registry; counts add, gauges overwrite, histograms combine."""
        for name, snap in snapshot.items():
            cls = _KINDS.get(snap.get("kind"))
            if cls is None:
                continue
            self._get(name, cls).merge(snap)

    def reset(self) -> None:
        self._instruments.clear()

    def render(self, prefix: str = "") -> str:
        """A compact text block of every instrument (the end-of-run view)."""
        lines = []
        for name, snap in self.snapshot().items():
            if prefix and not name.startswith(prefix):
                continue
            if snap["kind"] == "histogram":
                bounds = " ".join(
                    f"{bound}={snap[bound]:.4g}" if snap[bound] is not None else f"{bound}=-"
                    for bound in ("min", "max", "p50", "p90", "p99")
                )
                lines.append(
                    f"{name}: n={snap['count']} total={snap['total']:.4g} "
                    f"mean={snap['mean']:.4g} {bounds}"
                )
            else:
                value = snap["value"]
                shown = int(value) if float(value).is_integer() else f"{value:.4g}"
                lines.append(f"{name}: {shown}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Ambient registry: a process-wide default plus thread-local scopes
# ---------------------------------------------------------------------------

_global_registry = MetricsRegistry()
_tls = threading.local()


def _scope_stack() -> list[MetricsRegistry]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def get_registry() -> MetricsRegistry:
    """The ambient registry: innermost :func:`metrics_scope`, else global."""
    stack = _scope_stack()
    return stack[-1] if stack else _global_registry


def global_registry() -> MetricsRegistry:
    """The process-wide registry (the consolidated end-of-run snapshot)."""
    return _global_registry


@contextlib.contextmanager
def metrics_scope(registry: MetricsRegistry | None = None):
    """Make ``registry`` (default: a fresh one) ambient on this thread.

    Used by pool workers to capture per-evaluation metric deltas for relay,
    and by tests to isolate metric assertions from the process-wide state.
    """
    registry = registry if registry is not None else MetricsRegistry()
    stack = _scope_stack()
    stack.append(registry)
    try:
        yield registry
    finally:
        stack.pop()


def render_metrics(prefix: str = "") -> str:
    """Render the consolidated (global) registry as text."""
    return _global_registry.render(prefix)
