"""Opt-in profiling hooks: per-module forward timing, autodiff op counts.

Answering "which module eats the forward pass" or "how many ``matmul``
backwards does one proxy evaluation run" requires hooks *inside*
:meth:`repro.nn.module.Module.__call__` and
:func:`repro.autodiff.tensor.make_op` — the two choke points every forward
and every recorded op already flow through.  Both already branch on the
anomaly-mode flag; profiling reuses the same pattern (one thread-local flag
read when disabled) and the same ``module_scope`` stamping, so a profiled
forward is attributed to its full module path
(``CTSForecaster/STBlock/Linear``), exactly like an anomaly report.

Measurements land in the ambient :mod:`~repro.obs.metrics` registry:

* ``profile.forward.<path>.calls`` / ``.seconds`` — per-module-path forward
  count and cumulative wall time,
* ``profile.ops.<op>.forward`` / ``.backward`` — per-op invocation counts.

Profiling observes timing and counts but never feeds them back into
computation, so enabling it cannot change any score; the only cost is
overhead (one clock read and two counter bumps per module call — expect
roughly 5–15% on module-dense models, see ``docs/observability.md``).
``$REPRO_PROFILE`` seeds the process default so pool workers inherit the
mode from the CLI, mirroring ``$REPRO_ANOMALY``.
"""

from __future__ import annotations

import contextlib
import os
import threading

from .metrics import get_registry

PROFILE_ENV = "REPRO_PROFILE"

_state = threading.local()
_env_default = os.environ.get(PROFILE_ENV, "").strip().lower() in (
    "1",
    "true",
    "on",
    "yes",
)


def profiling_enabled() -> bool:
    """Whether profiling hooks are active on this thread."""
    return getattr(_state, "enabled", _env_default)


def set_profiling_default(enabled: bool) -> None:
    """Set the process-default mode (inherited by threads and, via the
    environment, by process-pool evaluation workers)."""
    global _env_default
    _env_default = bool(enabled)
    os.environ[PROFILE_ENV] = "1" if enabled else "0"


@contextlib.contextmanager
def profile(enabled: bool = True):
    """Enable (or force-disable) profiling hooks for the enclosed region."""
    previous = getattr(_state, "enabled", None)
    _state.enabled = bool(enabled)
    try:
        yield
    finally:
        if previous is None:
            del _state.enabled
        else:
            _state.enabled = previous


def record_forward(module_path: str, seconds: float) -> None:
    """Account one module forward under its ``module_scope`` path."""
    registry = get_registry()
    registry.counter(f"profile.forward.{module_path}.calls").inc()
    registry.counter(f"profile.forward.{module_path}.seconds").inc(seconds)


def record_op(op: str, phase: str) -> None:
    """Account one autodiff op invocation (``phase``: forward/backward)."""
    get_registry().counter(f"profile.ops.{op}.{phase}").inc()
