"""Structured tracing: nested, monotonic-clock spans emitted as JSONL.

A *span* is one timed region of the pipeline — ``search``, ``generation``,
``rank``, ``eval-batch``, ``eval`` — with a name, a duration measured on the
monotonic clock (``time.perf_counter``), a wall-clock start for cross-process
ordering, free-form JSON-safe attributes, and a parent id that nests it into
the run's span tree.  Spans are written one JSON object per line to a
per-run trace file whose first record carries the schema version
(:data:`TRACE_SCHEMA_VERSION`), so a trace written today stays parseable by
tomorrow's ``repro trace report``.

Process-pool workers cannot write to the parent's trace file, and their
monotonic clocks are not comparable to the parent's.  Instead a worker runs
its unit of work under an in-memory :class:`Tracer` (see
:func:`tracer_scope`), returns the collected span records through the
existing result plumbing, and the parent *relays* them —
:meth:`Tracer.relay` grafts the worker's root spans onto the parent's
current span (the evaluation batch), so parallel evaluations appear in the
parent trace exactly where serial ones would.

The central invariant (enforced by ``benchmarks/bench_trace_overhead.py``
and ``tests/test_trace_roundtrip.py``): with tracing disabled the hot paths
are bitwise-inert — :func:`span` costs one ``None`` check — and with it
enabled every score is bitwise-identical to an untraced run, because timing
is observed but never fed back into computation.

Service-mode additions: a *correlation id* (the HTTP request id or queued
job id) made ambient with :func:`correlation_scope` is stamped as ``corr``
on every span emitted inside the scope — including worker-collected spans
at relay time — so ``GET /jobs/<id>/trace`` and
``repro trace report --job`` can isolate one job's spans from the shared
stream.  :class:`SpanBuffer` keeps a bounded in-memory window of recent
records for those endpoints and the ``/dash`` status page.
"""

from __future__ import annotations

import collections
import contextlib
import itertools
import json
import os
import threading
import time
from typing import Callable, IO

TRACE_SCHEMA_VERSION = 1
TRACE_ENV = "REPRO_TRACE"

_TRACER_IDS = itertools.count()


class SpanHandle:
    """The mutable in-flight span yielded by :meth:`Tracer.span`."""

    __slots__ = ("id", "name", "attrs")

    def __init__(self, span_id: str, name: str, attrs: dict) -> None:
        self.id = span_id
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes to the span before it closes."""
        self.attrs.update(attrs)


class _NullSpan:
    """What :func:`span` yields when tracing is disabled: attrs go nowhere."""

    __slots__ = ()
    id = None
    name = ""

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Emit span records to a sink callable (file line or in-memory list).

    Span ids are ``"<pid>.<tracer>.<seq>"`` — unique within a run even when
    worker-collected spans are relayed into the parent's file, and carrying
    no randomness (ids are bookkeeping, never computation).
    """

    def __init__(self, sink: Callable[[dict], None]) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._prefix = f"{os.getpid()}.{next(_TRACER_IDS)}"
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def _stack(self) -> list[SpanHandle]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_span_id(self) -> str | None:
        stack = self._stack()
        return stack[-1].id if stack else None

    @contextlib.contextmanager
    def span(self, name: str, **attrs):
        """Open a nested span; closes (and emits) on exit, even on error."""
        handle = SpanHandle(f"{self._prefix}.{next(self._seq)}", name, dict(attrs))
        stack = self._stack()
        parent = stack[-1].id if stack else None
        stack.append(handle)
        wall0 = time.time()
        t0 = time.perf_counter()
        try:
            yield handle
        except BaseException as exc:
            handle.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            duration = time.perf_counter() - t0
            stack.pop()
            record = {
                "v": TRACE_SCHEMA_VERSION,
                "kind": "span",
                "id": handle.id,
                "parent": parent,
                "name": name,
                "wall0": wall0,
                "dur": duration,
                "pid": os.getpid(),
                "attrs": handle.attrs,
            }
            corr = current_correlation()
            if corr is not None:
                record["corr"] = corr
            self.emit(record)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, record: dict) -> None:
        with self._lock:
            self._sink(record)

    def relay(
        self,
        records: list[dict],
        parent_id: str | None = None,
        root_attrs: dict | None = None,
    ) -> None:
        """Re-emit span records collected elsewhere (a pool worker).

        Root spans (``parent is None``) are grafted under ``parent_id`` and
        annotated with ``root_attrs`` — the attempt number and evaluation
        fingerprint only the parent knows.  Child spans keep their worker-
        local parent links, so the worker's subtree survives intact.

        Workers do not know which job their unit of work belongs to, so the
        ambient correlation id (the relaying thread runs inside the job's
        :func:`correlation_scope`) is stamped onto every relayed span that
        does not already carry one.
        """
        corr = current_correlation()
        for record in records:
            if record.get("kind") == "span":
                is_root = record.get("parent") is None
                if is_root or (corr is not None and "corr" not in record):
                    record = dict(record)
                if is_root:
                    record["parent"] = parent_id
                    if root_attrs:
                        record["attrs"] = {**record.get("attrs", {}), **root_attrs}
                if corr is not None and "corr" not in record:
                    record["corr"] = corr
            self.emit(record)

    def close(self) -> None:
        """Flush/close the sink when it owns a file handle."""
        closer = getattr(self._sink, "close", None)
        if closer is not None:
            closer()


class _FileSink:
    """Append JSON lines to ``path``; JSON-unsafe attrs degrade to strings."""

    def __init__(self, path: str) -> None:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle: IO[str] = open(path, "a", encoding="utf-8")

    def __call__(self, record: dict) -> None:
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def file_tracer(path: str | os.PathLike) -> Tracer:
    """A tracer writing to ``path``, prefixed with a versioned meta record."""
    tracer = Tracer(_FileSink(os.fspath(path)))
    tracer.emit(
        {
            "v": TRACE_SCHEMA_VERSION,
            "kind": "trace",
            "schema": TRACE_SCHEMA_VERSION,
            "created": time.time(),
            "pid": os.getpid(),
        }
    )
    return tracer


# ---------------------------------------------------------------------------
# Ambient tracer: process default plus thread-local scopes
# ---------------------------------------------------------------------------

_default_tracer: Tracer | None = None
_tls = threading.local()


def _scope_stack() -> list[Tracer | None]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def get_tracer() -> Tracer | None:
    """The ambient tracer: innermost :func:`tracer_scope`, else the default.

    A scope may push ``None`` to force tracing *off* for a region.
    """
    stack = _scope_stack()
    return stack[-1] if stack else _default_tracer


def tracing_enabled() -> bool:
    return get_tracer() is not None


def configure_tracing(path: str | os.PathLike | None) -> Tracer | None:
    """Install (or, with ``None``, remove) the process-default file tracer."""
    global _default_tracer
    if _default_tracer is not None:
        _default_tracer.close()
    _default_tracer = file_tracer(path) if path is not None else None
    return _default_tracer


@contextlib.contextmanager
def tracer_scope(tracer: Tracer | None):
    """Make ``tracer`` ambient on this thread (``None`` = force-disabled).

    Pool workers push an in-memory collector here so spans created anywhere
    below (the trainer, the health monitor) land in the relay payload.
    """
    stack = _scope_stack()
    stack.append(tracer)
    try:
        yield tracer
    finally:
        stack.pop()


@contextlib.contextmanager
def span(name: str, **attrs):
    """Open a span on the ambient tracer; a no-op when tracing is disabled.

    The disabled path is one ``None`` check plus yielding a shared null
    handle, which keeps instrumented hot paths bitwise-inert and within the
    <2% overhead budget asserted by ``benchmarks/bench_trace_overhead.py``.
    """
    tracer = get_tracer()
    if tracer is None:
        yield NULL_SPAN
        return
    with tracer.span(name, **attrs) as handle:
        yield handle


def current_span_id() -> str | None:
    tracer = get_tracer()
    return tracer.current_span_id() if tracer is not None else None


# ---------------------------------------------------------------------------
# Correlation ids: tie every span in a request/job to one stamped id
# ---------------------------------------------------------------------------

_corr_tls = threading.local()


def _corr_stack() -> list[str]:
    stack = getattr(_corr_tls, "stack", None)
    if stack is None:
        stack = []
        _corr_tls.stack = stack
    return stack


def current_correlation() -> str | None:
    """The innermost ambient correlation id on this thread, if any."""
    stack = _corr_stack()
    return stack[-1] if stack else None


@contextlib.contextmanager
def correlation_scope(correlation_id: str):
    """Stamp ``correlation_id`` as ``corr`` on every span of this thread.

    The service uses the job id for daemon-executed work (stable across
    requeue, so a recovered job keeps its correlation) and a per-request id
    for synchronous HTTP handlers.  Scopes nest; the innermost wins.
    """
    stack = _corr_stack()
    stack.append(str(correlation_id))
    try:
        yield
    finally:
        stack.pop()


# ---------------------------------------------------------------------------
# Span buffer: a bounded in-memory window of recent records
# ---------------------------------------------------------------------------


class SpanBuffer:
    """Keep the last ``maxlen`` span records for live queries.

    Usable directly as a :class:`Tracer` sink (it is callable), or teed next
    to a file sink via :func:`buffered_tracer`.  Backs ``GET
    /jobs/<id>/trace`` (filter by correlation id) and the dashboard's
    recent-traces panel; bounded so a long-lived service cannot grow without
    limit.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._records: collections.deque[dict] = collections.deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def __call__(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(
        self, correlation: str | None = None, limit: int | None = None
    ) -> list[dict]:
        """Buffered span records, oldest first; optionally one correlation's."""
        with self._lock:
            records = list(self._records)
        if correlation is not None:
            records = [r for r in records if r.get("corr") == str(correlation)]
        if limit is not None and len(records) > limit:
            records = records[-limit:]
        return records

    def clear(self) -> None:
        with self._lock:
            self._records.clear()


_default_span_buffer: SpanBuffer | None = None
_default_span_buffer_lock = threading.Lock()


def default_span_buffer() -> SpanBuffer:
    """The process-wide span buffer, created on first use."""
    global _default_span_buffer
    with _default_span_buffer_lock:
        if _default_span_buffer is None:
            _default_span_buffer = SpanBuffer()
        return _default_span_buffer


def buffered_tracer(buffer: SpanBuffer, base: Tracer | None = None) -> Tracer:
    """A tracer teeing every record into ``buffer`` and, optionally, ``base``.

    The service scopes this tracer around request handling and job execution
    (see :func:`tracer_scope`), so live endpoints see service spans without
    installing a process-default tracer — batch CLI runs and tests keep
    their existing disabled-by-default behavior.
    """
    if base is None:
        return Tracer(buffer)

    def sink(record: dict) -> None:
        buffer(record)
        base.emit(record)

    return Tracer(sink)
