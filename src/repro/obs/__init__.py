"""Unified telemetry: structured tracing, metrics, profiling, heartbeats.

``repro.obs`` is the dependency-free observability layer the rest of the
pipeline reports into (it imports nothing from the rest of ``repro``, so
every layer — autodiff, nn, core, runtime, comparator, search — may import
it without cycles).  Four pieces:

* :mod:`~repro.obs.trace` — nested monotonic-clock spans as versioned
  JSONL, with worker-span relay for process-pool evaluation,
* :mod:`~repro.obs.metrics` — named counters/gauges/histograms with parent
  propagation and one snapshot API (``EvalStats``, ``RankingStats``, and
  the health monitor render from it),
* :mod:`~repro.obs.profile` — opt-in per-module forward timing and
  autodiff op counts, reusing the anomaly mode's ``module_scope`` stamping,
* :mod:`~repro.obs.heartbeat` — rate-limited progress lines for long runs.

Contract: telemetry observes, it never feeds computation.  Disabled, the
hot paths are bitwise-inert; enabled, all scores stay bitwise-identical.
See ``docs/observability.md``.
"""

from __future__ import annotations

from .export import (
    prometheus_name,
    render_dashboard,
    render_prometheus,
)
from .heartbeat import (
    Heartbeat,
    configure_heartbeat,
    heartbeat,
    heartbeat_enabled,
    latency_summary,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper_bound,
    get_registry,
    global_registry,
    metrics_scope,
    render_metrics,
)
from .profile import (
    PROFILE_ENV,
    profile,
    profiling_enabled,
    record_forward,
    record_op,
    set_profiling_default,
)
from .report import (
    StageStats,
    Trace,
    build_tree,
    candidate_timeline,
    filter_spans,
    load_trace,
    render_report,
    render_rollup,
    render_timeline,
    render_tree,
    stage_rollup,
)
from .trace import (
    NULL_SPAN,
    TRACE_ENV,
    TRACE_SCHEMA_VERSION,
    SpanBuffer,
    SpanHandle,
    Tracer,
    buffered_tracer,
    configure_tracing,
    correlation_scope,
    current_correlation,
    current_span_id,
    default_span_buffer,
    file_tracer,
    get_tracer,
    span,
    tracer_scope,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "PROFILE_ENV",
    "SpanBuffer",
    "SpanHandle",
    "StageStats",
    "TRACE_ENV",
    "TRACE_SCHEMA_VERSION",
    "Trace",
    "Tracer",
    "bucket_index",
    "bucket_upper_bound",
    "buffered_tracer",
    "build_tree",
    "candidate_timeline",
    "configure_heartbeat",
    "configure_tracing",
    "correlation_scope",
    "current_correlation",
    "current_span_id",
    "default_span_buffer",
    "file_tracer",
    "filter_spans",
    "get_registry",
    "get_tracer",
    "global_registry",
    "heartbeat",
    "heartbeat_enabled",
    "latency_summary",
    "load_trace",
    "metrics_scope",
    "profile",
    "profiling_enabled",
    "prometheus_name",
    "record_forward",
    "record_op",
    "render_dashboard",
    "render_metrics",
    "render_prometheus",
    "render_report",
    "render_rollup",
    "render_timeline",
    "render_tree",
    "set_profiling_default",
    "span",
    "stage_rollup",
    "tracer_scope",
    "tracing_enabled",
]
