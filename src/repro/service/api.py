"""The HTTP face of the service: a stdlib ``ThreadingHTTPServer``.

No web framework — the repo's no-new-dependencies rule extends to the
service layer, and ``http.server`` plus JSON bodies covers everything the
protocol needs.  Routes:

* ``GET  /health``        — liveness, engine fingerprint, queue counts
* ``GET  /metrics``       — process-wide metrics snapshot
  (``?format=prom`` renders the Prometheus text exposition instead)
* ``GET  /metrics/history`` — persisted sampler snapshots
  (``?since=<ts>&limit=<n>``)
* ``GET  /dash``          — the live HTML status dashboard
* ``POST /jobs``          — enqueue a job (``202``; ``200`` when deduped)
* ``GET  /jobs``          — list jobs (``?status=pending`` filters)
* ``GET  /jobs/<id>``     — one job, with its result inlined once done
* ``GET  /jobs/<id>/trace`` — that job's spans from the shared span buffer
* ``POST /jobs/<id>/requeue`` — send a failed job back to the queue
* ``GET  /results/<fp>``  — a result body by content address
* ``POST /rank``          — *synchronous* zero-shot ranking: the cheap,
  comparator-only path answered in-request; duplicate submissions are
  served from the registry with zero new model forwards

Observability: every request runs under a per-request correlation scope
(synchronous work traced in-request answers to its ``req-<n>`` id), each
endpoint's latency lands in a ``http.<method>_<route>.seconds`` quantile
histogram, and the write routes emit ``http`` spans into the span buffer
shared with the daemons.

Every validation failure is a :class:`~repro.service.protocol.ProtocolError`
rendered as its status (4xx) with a JSON ``{"error": ...}`` body; unexpected
executor failures render as 500 with the exception text.  The server is
threading: a long synchronous ``/rank`` cannot block ``/health``.
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import (
    SpanBuffer,
    buffered_tracer,
    correlation_scope,
    default_span_buffer,
    get_tracer,
    global_registry,
    render_dashboard,
    render_prometheus,
    tracer_scope,
)
from .db import RegistryError, ServiceDB, UnknownJobError
from .engine import Engine
from .jobs import execute_job
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_submit,
    request_fingerprint,
)

logger = logging.getLogger(__name__)

_MAX_BODY_BYTES = 64 * 1024 * 1024  # inline series payloads can be large


class RawResponse:
    """A non-JSON response body (Prometheus text, dashboard HTML)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


def _parse_query(query: str) -> dict[str, str]:
    params: dict[str, str] = {}
    for pair in query.split("&"):
        key, _, value = pair.partition("=")
        if key:
            params[key] = value
    return params


def _cache_rates(snapshot: dict[str, dict]) -> dict[str, str]:
    """Hit rates for every ``<name>.hits``/``<name>.misses`` counter pair."""
    rates: dict[str, str] = {}
    for name, snap in snapshot.items():
        if not name.endswith(".hits") or snap.get("kind") != "counter":
            continue
        prefix = name[: -len(".hits")]
        hits = float(snap.get("value") or 0.0)
        misses = float((snapshot.get(prefix + ".misses") or {}).get("value") or 0.0)
        total = hits + misses
        if total > 0:
            rates[prefix] = f"{hits / total:.0%} ({int(hits)}/{int(total)})"
    return rates


class ServiceAPI:
    """The HTTP server bound to one registry and one engine.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after :meth:`start`) — that is what the e2e tests use to boot isolated
    instances in parallel.
    """

    def __init__(
        self,
        db: ServiceDB,
        engine: Engine,
        host: str = "127.0.0.1",
        port: int = 0,
        span_buffer: SpanBuffer | None = None,
    ) -> None:
        self.db = db
        self.engine = engine
        self.host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        # Shared with the daemons (pass the same buffer to both) so
        # /jobs/<id>/trace sees worker-executed spans, not just API ones.
        self.span_buffer = span_buffer if span_buffer is not None else default_span_buffer()
        self._tracer = buffered_tracer(self.span_buffer, base=get_tracer())
        self._request_ids = itertools.count()
        # Dedup economy only: two identical /rank requests landing together
        # should compute once, not twice (check registry -> execute -> store
        # under one lock).  Thread-safety of ranking itself lives in
        # Engine.rank_task, which serializes every caller — API, daemon, CLI.
        self._rank_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceAPI":
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-api:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    # ------------------------------------------------------------------
    # Route handlers (return (status, body) pairs)
    # ------------------------------------------------------------------
    def handle_health(self) -> tuple[int, dict]:
        return 200, {
            "status": "ok",
            "protocol": PROTOCOL_VERSION,
            "engine": self.engine.fingerprint,
            "jobs": self.db.counts(),
        }

    def handle_metrics(self, params: dict[str, str] | None = None) -> tuple[int, object]:
        snapshot = global_registry().snapshot()
        fmt = (params or {}).get("format", "")
        if fmt == "prom":
            return 200, RawResponse(
                render_prometheus(snapshot), "text/plain; version=0.0.4"
            )
        if fmt and fmt != "json":
            raise ProtocolError(f"unknown metrics format {fmt!r}")
        return 200, {"metrics": snapshot}

    def handle_metrics_history(self, params: dict[str, str]) -> tuple[int, dict]:
        try:
            since = float(params["since"]) if params.get("since") else None
            limit = int(params.get("limit") or 500)
        except ValueError as exc:
            raise ProtocolError(f"bad history query ({exc})") from exc
        if limit <= 0:
            raise ProtocolError(f"limit must be positive, got {limit}")
        return 200, {"history": self.db.metrics_history(since=since, limit=limit)}

    def handle_job_trace(self, job_id: str) -> tuple[int, dict]:
        job = self.db.get_job(job_id)  # 404 via UnknownJobError if absent
        return 200, {
            "job": job["id"],
            "status": job["status"],
            "attempts": job["attempts"],
            "spans": self.span_buffer.records(correlation=job["id"]),
        }

    def handle_dash(self) -> tuple[int, RawResponse]:
        snapshot = global_registry().snapshot()
        now = time.time()
        workers = [
            {
                "owner": job.get("owner") or "?",
                "job": job["id"],
                "age": max(0.0, now - float(job.get("updated") or now)),
            }
            for job in self.db.list_jobs("running")
        ]
        data = {
            "title": f"repro service · {self.host}:{self.port}",
            "jobs": self.db.counts(),
            "workers": workers,
            "metrics": snapshot,
            "cache": _cache_rates(snapshot),
            "traces": self.span_buffer.records(limit=40),
        }
        return 200, RawResponse(render_dashboard(data), "text/html; charset=utf-8")

    def handle_submit(self, payload, tenant: str | None) -> tuple[int, dict]:
        request = parse_submit(payload, tenant=tenant)
        fingerprint = request_fingerprint(request, self.engine.fingerprint)
        job, deduped = self.db.submit_job(
            fingerprint,
            request.kind,
            {
                "task": request.task_spec,
                "options": request.options,
                "runtime": payload.get("runtime") or {},
                "tenant": request.tenant,
            },
            tenant=request.tenant,
        )
        body = {"job": job, "deduped": deduped}
        result = self.db.get_result(fingerprint)
        if result is not None:
            body["result"] = result
        return (200 if deduped else 202), body

    def handle_job(self, job_id: str) -> tuple[int, dict]:
        job = self.db.get_job(job_id)
        body = {"job": job}
        if job["status"] == "done":
            result = self.db.get_result(job["fingerprint"])
            if result is not None:
                body["result"] = result
        return 200, body

    def handle_jobs(self, status: str | None) -> tuple[int, dict]:
        return 200, {"jobs": self.db.list_jobs(status)}

    def handle_requeue(self, job_id: str) -> tuple[int, dict]:
        return 200, {"job": self.db.requeue(job_id)}

    def handle_result(self, fingerprint: str) -> tuple[int, dict]:
        result = self.db.get_result(fingerprint)
        if result is None:
            raise ProtocolError(f"no result for {fingerprint!r}", status=404)
        return 200, {"result": result}

    def handle_rank(self, payload, tenant: str | None) -> tuple[int, dict]:
        """Synchronous zero-shot ranking with registry dedup.

        First submission executes in-request (comparator inference only —
        no forecaster training, so it is fast enough to answer inline) and
        its result is stored content-addressed; every later identical
        submission, from any tenant, is answered from the registry without
        a single model forward.
        """
        if isinstance(payload, dict):
            payload = {**payload, "kind": payload.get("kind", "rank")}
        request = parse_submit(payload, tenant=tenant)
        if request.kind != "rank":
            raise ProtocolError("POST /rank only accepts kind 'rank'")
        fingerprint = request_fingerprint(request, self.engine.fingerprint)
        cached = self.db.get_result(fingerprint)
        if cached is not None:
            return 200, {
                "fingerprint": fingerprint,
                "deduped": True,
                "result": cached,
            }
        with self._rank_lock:
            cached = self.db.get_result(fingerprint)
            if cached is not None:
                return 200, {
                    "fingerprint": fingerprint,
                    "deduped": True,
                    "result": cached,
                }
            result = execute_job(self.engine, request, fingerprint)
        self.db.put_result(fingerprint, "rank", result.body)
        return 200, {
            "fingerprint": fingerprint,
            "deduped": False,
            "result": result.body,
        }


def _make_handler(service: ServiceAPI):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # http.server logs every request to stderr by default; route it
        # through logging so test output stays clean.
        def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
            logger.debug("%s - %s", self.address_string(), fmt % args)

        # --------------------------------------------------------------
        # Plumbing
        # --------------------------------------------------------------
        def _send(self, status: int, body) -> None:
            if isinstance(body, RawResponse):
                data = body.text.encode()
                content_type = body.content_type
            else:
                data = json.dumps(body).encode()
                content_type = "application/json"
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _read_json(self):
            length = int(self.headers.get("Content-Length") or 0)
            if length > _MAX_BODY_BYTES:
                raise ProtocolError("request body too large", status=413)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ProtocolError("empty request body")
            try:
                return json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"invalid JSON body ({exc})") from exc

        def _dispatch(self, method: str) -> None:
            path, _, query = self.path.partition("?")
            parts = [p for p in path.split("/") if p]
            request_id = f"req-{next(service._request_ids)}"
            started = time.perf_counter()
            try:
                # Every request gets a correlation scope, so spans emitted
                # by synchronous in-request work (POST /rank) carry its
                # req-<n> id; the self-observation reads stay span-free.
                with tracer_scope(service._tracer), correlation_scope(request_id):
                    status, body = self._route(method, parts, query)
            except ProtocolError as exc:
                status, body = exc.status, {"error": str(exc)}
            except UnknownJobError as exc:
                status, body = 404, {"error": str(exc)}
            except RegistryError as exc:
                status, body = 500, {"error": str(exc)}
            except Exception as exc:
                logger.exception("unhandled error serving %s %s", method, path)
                status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
            elapsed = time.perf_counter() - started
            registry = global_registry()
            registry.histogram("http.request.seconds").observe(elapsed)
            route = parts[0] if parts else "root"
            registry.histogram(
                f"http.{method.lower()}_{route}.seconds"
            ).observe(elapsed)
            self._send(status, body)

        def _route(self, method: str, parts: list[str], query: str):
            tenant = self.headers.get("X-Repro-Tenant")
            if method == "GET":
                params = _parse_query(query)
                if parts == ["health"]:
                    return service.handle_health()
                if parts == ["metrics"]:
                    return service.handle_metrics(params)
                if parts == ["metrics", "history"]:
                    return service.handle_metrics_history(params)
                if parts == ["dash"]:
                    return service.handle_dash()
                if parts == ["jobs"]:
                    status_filter = params.get("status") or None
                    return service.handle_jobs(status_filter)
                if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
                    return service.handle_job_trace(parts[1])
                if len(parts) == 2 and parts[0] == "jobs":
                    return service.handle_job(parts[1])
                if len(parts) == 2 and parts[0] == "results":
                    return service.handle_result(parts[1])
                raise ProtocolError(f"no such route: GET /{'/'.join(parts)}", 404)
            if method == "POST":
                if parts == ["jobs"]:
                    return service.handle_submit(self._read_json(), tenant)
                if parts == ["rank"]:
                    return service.handle_rank(self._read_json(), tenant)
                if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "requeue":
                    return service.handle_requeue(parts[1])
                raise ProtocolError(f"no such route: POST /{'/'.join(parts)}", 404)
            raise ProtocolError(f"method {method} not allowed", 405)

        def do_GET(self):  # noqa: N802
            self._dispatch("GET")

        def do_POST(self):  # noqa: N802
            self._dispatch("POST")

    return Handler
