"""The :class:`Engine` facade: one code path for the CLI and the daemon.

Before the service existed, the CLI wired pre-trained artifacts, the proxy
evaluator, checkpoints, and the ranking engine together inline in
``_cmd_search``.  The daemon needs the same wiring, and a drift between the
two would silently break the service's core guarantee — that a ranking
served over HTTP is bitwise-identical to the same search run locally.  The
Engine owns that wiring once:

* **rank** — zero-shot candidate ranking (Algorithm 2 phases 1–2) with a
  per-task :class:`~repro.comparator.scoring.RankingEngine` cached across
  requests, so a task asked about twice re-encodes nothing,
* **search** — the full pipeline (rank + final training), which is what
  ``repro search`` runs,
* **collect** — proxy-label sample collection through the
  :class:`~repro.runtime.ProxyEvaluator`, checkpointed and resumable,
* **train** — a fully trained forecaster persisted as an on-disk artifact.

Per-job runtime overrides (see
:class:`~repro.service.protocol.RuntimeOverrides`) are resolved here, at
execution time: an explicit payload value beats the daemon's environment,
which beats the defaults — so two queued jobs can run under different
divergence policies or pool settings without anyone mutating ``os.environ``.

The engine's :attr:`fingerprint` digests its pre-trained weights; request
fingerprints include it so the result registry can never serve a ranking
produced by a different comparator.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..comparator.scoring import RankingEngine
from ..obs import get_registry, span
from ..runtime import (
    Checkpoint,
    EvalCache,
    EvalProgress,
    ProxyEvaluator,
    resolve_retry_policy,
)
from ..space.archhyper import ArchHyper
from ..tasks.task import Task
from .protocol import RuntimeOverrides

if TYPE_CHECKING:
    from ..experiments.config import ExperimentScale
    from ..experiments.harness import PretrainedArtifacts
    from ..search.zero_shot import ZeroShotResult


def _digest_arrays(hasher, arrays: dict) -> None:
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        hasher.update(name.encode())
        hasher.update(str(value.shape).encode())
        hasher.update(value.dtype.str.encode())
        hasher.update(value.tobytes())


def artifacts_fingerprint(artifacts: "PretrainedArtifacts") -> str:
    """SHA-256 over the pre-trained weights that shape every ranking.

    The comparator's parameters and (when the embedder is trainable) the
    embedder's parameters fully determine a rank result for a given task,
    so this digest is what makes registry entries portable across daemon
    restarts: same weights, same fingerprint, same cached results.
    """
    hasher = hashlib.sha256()
    hasher.update(artifacts.variant.encode())
    _digest_arrays(hasher, artifacts.model.state_dict())
    embedder = artifacts.embedder
    state_dict = getattr(embedder, "state_dict", None)
    if callable(state_dict):
        _digest_arrays(hasher, state_dict())
    else:
        encoder = getattr(embedder, "encoder", None)
        if encoder is not None and callable(getattr(encoder, "state_dict", None)):
            _digest_arrays(hasher, encoder.state_dict())
    return hasher.hexdigest()


class RankOutcome:
    """The result of one zero-shot rank: candidates best-first."""

    __slots__ = ("candidates", "comparisons", "task_name")

    def __init__(
        self, candidates: list[ArchHyper], comparisons: int, task_name: str
    ) -> None:
        self.candidates = candidates
        self.comparisons = comparisons
        self.task_name = task_name

    def to_dict(self) -> dict:
        return {
            "task": self.task_name,
            "comparisons": self.comparisons,
            "candidates": [ah.to_dict() for ah in self.candidates],
        }


class Engine:
    """Facade over evaluator, checkpointing, and ranking for one artifact set.

    Args:
        artifacts: pre-trained T-AHC artifacts (model + embedder + space).
        scale: the :class:`~repro.experiments.config.ExperimentScale` whose
            evolution/training knobs parameterize searches.
        checkpoint_dir: where per-job progress checkpoints live; ``None``
            disables checkpointing.
        artifact_dir: where trained-forecaster artifacts are saved.
        eval_fn: override of the proxy evaluation function (tests inject
            cheap or faulty evaluations here; must be module-level picklable
            for pooled jobs).
        cache_dir: proxy score-cache directory (``None``: the default);
            ``cache_enabled=False`` disables the cache entirely.
        rank_cache_size: how many per-task ranking caches to keep (LRU).
            Each entry holds a task's preliminary embedding plus every
            candidate embedding computed for it, so a long-running daemon
            accepting arbitrary inline tasks must bound it; eviction is
            safe because entries are pure caches rebuilt bitwise-identically.
    """

    def __init__(
        self,
        artifacts: "PretrainedArtifacts",
        scale: "ExperimentScale",
        checkpoint_dir: str | Path | None = None,
        artifact_dir: str | Path | None = None,
        eval_fn: Callable | None = None,
        cache_dir: str | Path | None = None,
        cache_enabled: bool = True,
        rank_cache_size: int = 8,
    ) -> None:
        self.artifacts = artifacts
        self.scale = scale
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.artifact_dir = Path(artifact_dir) if artifact_dir else None
        self.eval_fn = eval_fn
        self.cache_dir = cache_dir
        self.cache_enabled = cache_enabled
        self.rank_cache_size = max(1, rank_cache_size)
        self.fingerprint = artifacts_fingerprint(artifacts)
        # task fingerprint -> (preliminary embedding, RankingEngine); the
        # encode-once-across-requests cache.  Sound because the comparator's
        # weights are frozen for the engine's lifetime (inference only) and
        # memoized embeddings are bitwise-identical to fresh ones (PR-4).
        self._rank_cache: OrderedDict[str, tuple[np.ndarray, RankingEngine]] = (
            OrderedDict()
        )
        # Serializes every rank no matter who calls (API thread, daemon
        # worker, CLI): the cached RankingEngines are stateful and all share
        # one comparator model whose train/eval mode they toggle, so
        # concurrent ranks would corrupt cached embeddings and break the
        # bitwise-determinism guarantee.
        self._rank_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Evaluator construction (per-job overrides resolved here)
    # ------------------------------------------------------------------
    def evaluator_for(self, runtime: RuntimeOverrides) -> ProxyEvaluator:
        """A :class:`ProxyEvaluator` honoring the job's explicit overrides.

        Resolution order for every knob: job payload > this process's
        environment > default — the environment is consulted *now*, inside
        the resolver, not frozen at daemon startup.
        """
        cache = (
            EvalCache(self.cache_dir) if self.cache_enabled else None
        )
        return ProxyEvaluator(
            workers=runtime.workers,
            cache=cache,
            eval_fn=self.eval_fn,
            retry_policy=resolve_retry_policy(
                runtime.max_retries, runtime.eval_timeout
            ),
            divergence_policy=runtime.divergence_policy,
        )

    def job_checkpoint(self, request_fingerprint: str, kind: str) -> Checkpoint | None:
        """The progress checkpoint of one job, addressed by its request.

        Content-addressing the path means a requeued or recovered job finds
        exactly its own progress, and two deduped submissions share one
        file.
        """
        if self.checkpoint_dir is None:
            return None
        return Checkpoint(
            self.checkpoint_dir / f"job-{request_fingerprint[:24]}.ckpt",
            kind=kind,
            meta={"request": request_fingerprint},
        )

    # ------------------------------------------------------------------
    # Zero-shot ranking (the service hot path)
    # ------------------------------------------------------------------
    def _searcher(self, seed: int, top_k: int | None, initial_samples: int | None):
        from ..experiments.harness import make_searcher

        return make_searcher(
            self.artifacts,
            self.scale,
            seed=seed,
            initial_samples=initial_samples,
            top_k=top_k,
        )

    def rank_task(
        self,
        task: Task,
        task_fingerprint: str,
        seed: int = 0,
        top_k: int | None = None,
        initial_samples: int | None = None,
        checkpoint: Checkpoint | None = None,
    ) -> RankOutcome:
        """Algorithm 2 phases 1–2: embed the task, rank candidates under it.

        The preliminary embedding and the task-conditioned ranking engine
        are cached by ``task_fingerprint`` (bounded LRU of
        ``rank_cache_size`` tasks), so repeated requests about one task
        reuse every GIN encoding computed so far (bitwise-identical to
        recomputing; only the encoder-forward count changes).  The whole
        rank runs under the engine's lock — see ``_rank_lock``.
        """
        started = time.perf_counter()
        registry = get_registry()
        try:
            with self._rank_lock, span("engine-rank", task=task.name):
                searcher = self._searcher(seed, top_k, initial_samples)
                cached = self._rank_cache.get(task_fingerprint)
                if cached is None:
                    registry.counter("engine.rank_cache.misses").inc()
                    preliminary = searcher.embed_task(task)
                    ranking_engine = RankingEngine(
                        self.artifacts.model,
                        preliminary=preliminary,
                        space=self.artifacts.space.hyper_space,
                    )
                    self._rank_cache[task_fingerprint] = (preliminary, ranking_engine)
                    while len(self._rank_cache) > self.rank_cache_size:
                        self._rank_cache.popitem(last=False)
                else:
                    registry.counter("engine.rank_cache.hits").inc()
                    self._rank_cache.move_to_end(task_fingerprint)
                    preliminary, ranking_engine = cached
                top, comparisons = searcher.rank(
                    preliminary, checkpoint=checkpoint, engine=ranking_engine
                )
                return RankOutcome(top, comparisons, task.name)
        finally:
            registry.histogram("service.rank.seconds").observe(
                time.perf_counter() - started
            )

    def search_task(
        self, task: Task, seed: int = 0, resume: bool = False
    ) -> "ZeroShotResult":
        """The full zero-shot pipeline (rank + final training) — the
        ``repro search`` path, shared with benchmarks via
        :func:`~repro.experiments.harness.run_zero_shot`."""
        from ..experiments.harness import run_zero_shot

        started = time.perf_counter()
        try:
            with span("engine-search", task=task.name):
                return run_zero_shot(
                    self.artifacts,
                    task,
                    self.scale,
                    seed=seed,
                    checkpoint_dir=self.checkpoint_dir,
                    resume=resume,
                )
        finally:
            get_registry().histogram("service.search.seconds").observe(
                time.perf_counter() - started
            )

    # ------------------------------------------------------------------
    # Long-running work (daemon jobs)
    # ------------------------------------------------------------------
    def collect_scores(
        self,
        task: Task,
        runtime: RuntimeOverrides,
        n_samples: int,
        seed: int = 0,
        progress: EvalProgress | None = None,
    ) -> tuple[list[ArchHyper], list[float], list[int] | None]:
        """Measure ``n_samples`` sampled arch-hypers on ``task`` (proxy labels).

        The sample-collection primitive behind comparator pre-training,
        exposed as a service job: candidates are drawn deterministically
        from ``seed``, scored through the evaluator (with per-job runtime
        overrides), and checkpointed score-by-score so a killed daemon
        resumes bitwise-identically.

        With a ``runtime.fidelity_schedule`` the sweep runs as a
        successive-halving ladder (``docs/fidelity.md``); the returned
        fidelity list tags the epoch budget each score was measured at.
        Without one, fidelities are ``None`` and the path is byte-identical
        to the flat pipeline.
        """
        space = self.artifacts.space
        candidates = space.sample_batch(n_samples, np.random.default_rng(seed))
        evaluator = self.evaluator_for(runtime)
        pairs = [(ah, task) for ah in candidates]
        config = runtime.proxy_config()
        if runtime.fidelity_schedule is None:
            scores = evaluator.evaluate_pairs(pairs, config, progress=progress)
            return candidates, scores, None
        warm_dir = (
            str(self.checkpoint_dir / "warm")
            if self.checkpoint_dir is not None
            else None
        )
        result = evaluator.evaluate_rungs(
            pairs,
            config,
            schedule=runtime.fidelity_schedule,
            progress=progress,
            warm_dir=warm_dir,
        )
        return candidates, result.scores, result.fidelities

    def train_artifact(
        self,
        arch_hyper: ArchHyper,
        task: Task,
        request_fingerprint: str,
        runtime: RuntimeOverrides,
        epochs: int | None = None,
        seed: int = 0,
    ) -> dict:
        """Fully train one arch-hyper and persist it as a content-addressed
        artifact directory; returns artifact metadata + test scores."""
        from ..core.model import build_forecaster
        from ..core.trainer import TrainConfig, evaluate_forecaster, train_forecaster
        from ..io import save_forecaster

        prepared = task.prepared
        model = build_forecaster(arch_hyper, task.data, task.horizon, seed=seed)
        config = TrainConfig(
            epochs=epochs if epochs is not None else self.scale.final_train_epochs,
            batch_size=self.scale.batch_size,
            seed=seed,
            # None resolves $REPRO_BUFFER_POOL at use time; an explicit
            # per-job value wins over the daemon's environment.
            buffer_pool=runtime.buffer_pool,
        )
        result = train_forecaster(model, prepared.train, prepared.val, config)
        scores = evaluate_forecaster(
            model, prepared.test, config.batch_size, inverse=prepared.inverse
        )
        payload = {
            "arch_hyper": arch_hyper.to_dict(),
            "task": task.name,
            "best_val_mae": result.best_val_mae,
            "best_epoch": result.best_epoch,
            "test_mae": scores.mae,
            "test_rmse": scores.rmse,
            "test_mape": scores.mape,
        }
        if self.artifact_dir is not None:
            directory = self.artifact_dir / f"model-{request_fingerprint[:24]}"
            save_forecaster(model, directory)
            payload["artifact"] = str(directory)
        return payload
