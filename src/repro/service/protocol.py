"""Wire protocol of the search service: payload schemas and fingerprints.

Everything that crosses the HTTP boundary is validated here, in one place,
so the API handler and the CLI ``repro submit`` client agree on the schema
and malformed payloads become a typed :class:`ProtocolError` (rendered as a
4xx) instead of a stack trace deep inside the engine.

Two design points matter beyond parsing:

* **Per-job runtime overrides.**  Knobs like ``$REPRO_DIVERGENCE_POLICY``
  and ``$REPRO_BUFFER_POOL`` used to be resolved from the parent process's
  environment when an evaluator or config was constructed — fine for a
  one-shot CLI, wrong for a multi-tenant daemon where two queued jobs may
  want different policies.  :class:`RuntimeOverrides` carries those knobs
  *inside the job payload*; the engine resolves them per job at execution
  time (explicit payload value > daemon environment > default).
* **Content-addressed requests.**  :func:`request_fingerprint` hashes the
  score-relevant identity of a submission — job kind, task contents (via
  :func:`~repro.runtime.fingerprint.task_fingerprint_material`), options,
  the score-relevant runtime knobs, and the serving engine's identity.
  Two tenants submitting the same work dedupe to one computation; knobs
  that are provably score-inert (workers, retries, timeouts, buffer
  pooling) are excluded so they cannot split the registry, mirroring the
  eval-cache keying in :mod:`repro.runtime.fingerprint`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from ..data.datasets import CTSData, list_datasets, non_finite_report, sanitize_values
from ..data.transforms import IMPUTATION_POLICIES
from ..runtime.evaluator import DIVERGENCE_POLICIES
from ..runtime.fingerprint import task_fingerprint_material
from ..space.archhyper import ArchHyper
from ..tasks.proxy import ProxyConfig
from ..tasks.task import Task
from ..utils.validation import ConfigError

PROTOCOL_VERSION = 1

JOB_KINDS = ("rank", "collect", "train")


class ProtocolError(ValueError):
    """A malformed or unsupported payload; rendered as an HTTP 4xx."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _require(payload: dict, key: str, kinds, where: str):
    """``payload[key]`` checked against ``kinds``; ProtocolError otherwise."""
    if key not in payload:
        raise ProtocolError(f"{where}: missing required field {key!r}")
    value = payload[key]
    if not isinstance(value, kinds):
        names = (
            "/".join(k.__name__ for k in kinds)
            if isinstance(kinds, tuple)
            else kinds.__name__
        )
        raise ProtocolError(
            f"{where}: field {key!r} must be {names}, got {type(value).__name__}"
        )
    return value


def _optional(payload: dict, key: str, kinds, where: str, default=None):
    if key not in payload or payload[key] is None:
        return default
    return _require(payload, key, kinds, where)


# ---------------------------------------------------------------------------
# Task specs: a registered dataset by name, or raw series shipped inline
# ---------------------------------------------------------------------------


def build_task(spec: dict) -> Task:
    """Materialize a :class:`~repro.tasks.task.Task` from a task spec.

    Two forms are accepted:

    * ``{"dataset": "SZ-TAXI", "p": 6, "q": 6, ...}`` — a registered
      benchmark dataset by name;
    * ``{"name": "...", "values": [[[...]]], "adjacency": [[...]], "p": ...}``
      — raw series shipped inline as nested lists ``(N, T, F)`` plus an
      ``(N, N)`` adjacency.

    Inline payloads may be *dirty*: ``NaN``/``null`` entries (both parse to
    NaN) are rejected with a typed 422 unless the spec requests an
    ``"imputation"`` policy (one of
    :data:`~repro.data.transforms.IMPUTATION_POLICIES`), in which case the
    bad entries are repaired and recorded in the task's observation mask.
    An explicit boolean ``"mask"`` (same nested shape, 1 = trusted
    observation) may also be shipped to mark entries that are finite but
    untrusted; it is ANDed with finiteness.

    Every validation failure (unknown dataset, bad shapes, non-finite data,
    too-short series) is re-raised as a :class:`ProtocolError`.
    """
    if not isinstance(spec, dict):
        raise ProtocolError("task spec must be a JSON object")
    p = _require(spec, "p", int, "task")
    q = _require(spec, "q", int, "task")
    single_step = _optional(spec, "single_step", bool, "task", False)
    max_train_windows = _optional(spec, "max_train_windows", int, "task")
    if "dataset" in spec:
        name = _require(spec, "dataset", str, "task")
        if name not in list_datasets():
            raise ProtocolError(f"task: unknown dataset {name!r}")
        from ..data.datasets import get_dataset

        data = get_dataset(name, seed=_optional(spec, "seed", int, "task", 0))
    elif "values" in spec:
        values = _require(spec, "values", list, "task")
        adjacency = _require(spec, "adjacency", list, "task")
        name = _optional(spec, "name", str, "task", "inline")
        imputation = _optional(spec, "imputation", str, "task")
        if imputation is not None and imputation not in IMPUTATION_POLICIES:
            raise ProtocolError(
                f"task: unknown imputation policy {imputation!r}; "
                f"expected one of {IMPUTATION_POLICIES}"
            )
        try:
            values_arr = np.asarray(values, dtype=np.float32)
            adjacency_arr = np.asarray(adjacency, dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"task: non-numeric series payload ({exc})") from exc
        mask_arr = None
        if _optional(spec, "mask", list, "task") is not None:
            try:
                mask_arr = np.asarray(spec["mask"]).astype(bool)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"task: non-boolean mask payload ({exc})") from exc
            if mask_arr.shape != values_arr.shape:
                raise ProtocolError(
                    f"task: mask shape {mask_arr.shape} does not match "
                    f"values shape {values_arr.shape}"
                )
        report = non_finite_report(values_arr)
        if report is not None:
            # json NaN literals and nulls both land here as NaN.  Refusing
            # them without an explicit policy is deliberate: the alternative
            # is parser-dependent, silently-zero-filled garbage.
            if imputation is None:
                raise ProtocolError(
                    f"task: series payload has NaN/null entries "
                    f"({report.describe()}); request task.imputation "
                    f"(one of {IMPUTATION_POLICIES}) to repair them",
                    status=422,
                )
            with np.errstate(invalid="ignore"):
                finite = np.isfinite(values_arr)
            mask_arr = finite if mask_arr is None else (mask_arr & finite)
            values_arr, _ = sanitize_values(
                values_arr,
                name,
                on_non_finite="impute",
                policy=imputation,
                mask=mask_arr,
            )
        try:
            data = CTSData(
                name=name,
                values=values_arr,
                adjacency=adjacency_arr,
                domain=_optional(spec, "domain", str, "task", "service"),
                mask=mask_arr,
            )
        except ValueError as exc:  # includes NonFiniteDataError
            raise ProtocolError(f"task: invalid series payload ({exc})") from exc
    else:
        raise ProtocolError("task: needs either 'dataset' or inline 'values'")
    try:
        return Task(
            data=data,
            p=p,
            q=q,
            single_step=single_step,
            max_train_windows=max_train_windows,
        )
    except ValueError as exc:
        raise ProtocolError(f"task: {exc}") from exc


# ---------------------------------------------------------------------------
# Per-job runtime overrides
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuntimeOverrides:
    """Evaluator/trainer knobs carried in the job payload.

    ``None`` means "not specified": the engine falls back to *its own*
    environment at execution time, exactly like the CLI resolvers do.  An
    explicit value always wins over the daemon's environment — that is the
    point of threading these through the payload rather than reading
    ``$REPRO_*`` in the parent once at startup.
    """

    workers: int | None = None
    divergence_policy: str | None = None
    max_retries: int | None = None
    eval_timeout: float | None = None
    buffer_pool: bool | None = None
    proxy_epochs: int | None = None
    proxy_batch_size: int | None = None
    proxy_lr: float | None = None
    proxy_seed: int | None = None
    # Successive-halving collection (docs/fidelity.md): an
    # ``eta:rungs:min-epochs`` spec and the label policy for sub-full-fidelity
    # scores.  Score-MATERIAL — a scheduled collect measures different
    # (candidate, fidelity) pairs than a flat one — so both land in request
    # fingerprints (conditionally, to keep no-schedule fingerprints stable).
    fidelity_schedule: str | None = None
    fidelity_label_policy: str | None = None

    def proxy_config(self) -> ProxyConfig:
        """The per-job :class:`ProxyConfig`, overrides applied over defaults."""
        base = ProxyConfig()
        return ProxyConfig(
            epochs=self.proxy_epochs if self.proxy_epochs is not None else base.epochs,
            batch_size=(
                self.proxy_batch_size
                if self.proxy_batch_size is not None
                else base.batch_size
            ),
            lr=self.proxy_lr if self.proxy_lr is not None else base.lr,
            seed=self.proxy_seed if self.proxy_seed is not None else base.seed,
            buffer_pool=(
                self.buffer_pool if self.buffer_pool is not None else base.buffer_pool
            ),
        )

    def score_material(self) -> dict:
        """The score-*relevant* subset, for request fingerprints.

        Workers, retries, timeouts, and buffer pooling are score-inert
        (bitwise-identical results, enforced by the runtime/perf suites), so
        they are deliberately absent: a tenant asking for 4 workers must
        dedupe against a tenant asking for 1.  The fidelity schedule IS
        score-relevant, but its keys are included only when set, so every
        schedule-free request fingerprint stays byte-identical to its
        pre-fidelity value.
        """
        material = {
            "divergence_policy": self.divergence_policy,
            "proxy_epochs": self.proxy_epochs,
            "proxy_batch_size": self.proxy_batch_size,
            "proxy_lr": self.proxy_lr,
            "proxy_seed": self.proxy_seed,
        }
        if self.fidelity_schedule is not None:
            from ..runtime.fidelity import (
                parse_fidelity_schedule,
                resolve_label_policy,
            )

            # Canonicalize so "3:3:1" and "3 : 3 : 1" (and an explicit vs
            # defaulted label policy) dedupe to one computation.
            material["fidelity_schedule"] = parse_fidelity_schedule(
                self.fidelity_schedule
            ).spec()
            material["fidelity_label_policy"] = resolve_label_policy(
                self.fidelity_label_policy
            )
        return material


def parse_runtime(payload: dict | None) -> RuntimeOverrides:
    """Validate the ``runtime`` section of a submission."""
    if payload is None:
        return RuntimeOverrides()
    if not isinstance(payload, dict):
        raise ProtocolError("runtime: must be a JSON object")
    policy = _optional(payload, "divergence_policy", str, "runtime")
    if policy is not None and policy not in DIVERGENCE_POLICIES:
        raise ProtocolError(
            f"runtime: unknown divergence_policy {policy!r}; "
            f"expected one of {DIVERGENCE_POLICIES}"
        )
    fidelity_schedule = _optional(payload, "fidelity_schedule", str, "runtime")
    if fidelity_schedule is not None:
        from ..runtime.fidelity import parse_fidelity_schedule

        try:
            parse_fidelity_schedule(fidelity_schedule)
        except ConfigError as exc:
            raise ProtocolError(f"runtime: {exc}") from exc
    label_policy = _optional(payload, "fidelity_label_policy", str, "runtime")
    if label_policy is not None:
        from ..runtime.fidelity import LABEL_POLICIES

        if label_policy not in LABEL_POLICIES:
            raise ProtocolError(
                f"runtime: unknown fidelity_label_policy {label_policy!r}; "
                f"expected one of {LABEL_POLICIES}"
            )
    overrides = RuntimeOverrides(
        workers=_optional(payload, "workers", int, "runtime"),
        divergence_policy=policy,
        max_retries=_optional(payload, "max_retries", int, "runtime"),
        eval_timeout=_optional(payload, "eval_timeout", (int, float), "runtime"),
        buffer_pool=_optional(payload, "buffer_pool", bool, "runtime"),
        proxy_epochs=_optional(payload, "proxy_epochs", int, "runtime"),
        proxy_batch_size=_optional(payload, "proxy_batch_size", int, "runtime"),
        proxy_lr=_optional(payload, "proxy_lr", (int, float), "runtime"),
        proxy_seed=_optional(payload, "proxy_seed", int, "runtime"),
        fidelity_schedule=fidelity_schedule,
        fidelity_label_policy=label_policy,
    )
    try:
        # ProxyConfig validates its numerics at construction (ConfigError);
        # surface a bad proxy_epochs/lr as a 400 at submit time, not as a
        # failed job deep inside the daemon.
        overrides.proxy_config()
    except ConfigError as exc:
        raise ProtocolError(f"runtime: {exc}") from exc
    return overrides


# ---------------------------------------------------------------------------
# Submissions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobRequest:
    """One validated submission, ready for the registry and the engine."""

    kind: str
    task_spec: dict
    options: dict = field(default_factory=dict)
    runtime: RuntimeOverrides = field(default_factory=RuntimeOverrides)
    tenant: str = "anonymous"

    def build_task(self) -> Task:
        """The materialized task, built once and memoized.

        Inline payloads can be tens of megabytes; validation at parse
        time, fingerprinting, and execution must all see one build, not
        three.  Sound to memoize because the spec is immutable once the
        request is constructed.
        """
        task = self.__dict__.get("_task")
        if task is None:
            task = build_task(self.task_spec)
            object.__setattr__(self, "_task", task)
        return task


def parse_submit(payload, tenant: str | None = None) -> JobRequest:
    """Validate a ``POST /jobs`` (or ``POST /rank``) body into a request.

    ``tenant`` (e.g. from an ``X-Repro-Tenant`` header) beats any tenant
    field inside the payload.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("submission must be a JSON object")
    kind = _require(payload, "kind", str, "submission")
    if kind not in JOB_KINDS:
        raise ProtocolError(
            f"submission: unknown kind {kind!r}; expected one of {JOB_KINDS}"
        )
    task_spec = _require(payload, "task", dict, "submission")
    options = _optional(payload, "options", dict, "submission", {})
    runtime = parse_runtime(payload.get("runtime"))
    if tenant is None:
        tenant = _optional(payload, "tenant", str, "submission", "anonymous")
    if kind == "train":
        arch_hyper = options.get("arch_hyper")
        if not isinstance(arch_hyper, dict):
            raise ProtocolError(
                "submission: kind 'train' needs options.arch_hyper (an "
                "ArchHyper dict from a previous ranking)"
            )
        try:
            ArchHyper.from_dict(arch_hyper)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"submission: invalid options.arch_hyper ({exc})"
            ) from exc
    request = JobRequest(
        kind=kind,
        task_spec=task_spec,
        options=dict(options),
        runtime=runtime,
        tenant=tenant,
    )
    # Fail fast on task problems at submit time, not in the daemon; the
    # built task stays memoized on the request for fingerprint/execution.
    request.build_task()
    return request


# ---------------------------------------------------------------------------
# Content-addressed request identity
# ---------------------------------------------------------------------------


def task_fingerprint(task: Task) -> str:
    """Content address of one task (hex SHA-256 over its data digests)."""
    material = task_fingerprint_material(task)
    payload = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def request_fingerprint(request: JobRequest, engine_fingerprint: str) -> str:
    """Content address of one submission (hex SHA-256).

    Hashes everything that determines the *result*: the job kind, the task's
    contents (data digests, not just names), the job options, the
    score-relevant runtime overrides, and the identity of the serving engine
    (its pre-trained weights).  Tenant identity and score-inert runtime
    knobs are excluded — that is what makes cross-tenant dedup sound.
    """
    task = request.build_task()
    material = {
        "protocol": PROTOCOL_VERSION,
        "kind": request.kind,
        "task": task_fingerprint_material(task),
        "options": request.options,
        "runtime": request.runtime.score_material(),
        "engine": engine_fingerprint,
    }
    payload = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()
