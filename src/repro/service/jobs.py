"""Job executors: what one claimed registry job actually runs.

One function per job kind, all funnelled through :func:`execute_job` so the
daemon, the synchronous API path, and tests execute the *same* code — the
only difference between ``POST /rank`` (synchronous) and ``POST /jobs``
(queued) is who calls this module, not what it does.

Every execution happens inside a fresh :func:`~repro.obs.metrics_scope`
whose registry has the ambient one as parent: increments flow upward to the
process totals while the job keeps its own delta snapshot, which the daemon
persists into the registry row (``GET /jobs/<id>`` streams it as progress).
"""

from __future__ import annotations

from ..obs import MetricsRegistry, get_registry, metrics_scope, span
from ..runtime import EvalProgress
from ..space.archhyper import ArchHyper
from .engine import Engine
from .protocol import JobRequest, ProtocolError, task_fingerprint

# Checkpoint kinds per job kind; mismatched files are discarded, not resumed.
_CHECKPOINT_KINDS = {"rank": "evolution", "collect": "eval-progress"}


class JobResult:
    """The body of one finished job plus its metric delta."""

    __slots__ = ("body", "metrics")

    def __init__(self, body: dict, metrics: dict) -> None:
        self.body = body
        self.metrics = metrics


def _int_option(options: dict, key: str, default: int | None) -> int | None:
    value = options.get(key, default)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"options: {key!r} must be an integer")
    return value


def _run_rank(engine: Engine, request: JobRequest, fingerprint: str) -> dict:
    task = request.build_task()
    checkpoint = engine.job_checkpoint(fingerprint, _CHECKPOINT_KINDS["rank"])
    outcome = engine.rank_task(
        task,
        task_fingerprint(task),
        seed=_int_option(request.options, "seed", 0),
        top_k=_int_option(request.options, "top_k", None),
        initial_samples=_int_option(request.options, "initial_samples", None),
        checkpoint=checkpoint,
    )
    if checkpoint is not None:
        checkpoint.clear()
    return outcome.to_dict()


def _run_collect(engine: Engine, request: JobRequest, fingerprint: str) -> dict:
    task = request.build_task()
    checkpoint = engine.job_checkpoint(fingerprint, _CHECKPOINT_KINDS["collect"])
    progress = EvalProgress(checkpoint) if checkpoint is not None else None
    candidates, scores, fidelities = engine.collect_scores(
        task,
        request.runtime,
        n_samples=_int_option(request.options, "n_samples", 8),
        seed=_int_option(request.options, "seed", 0),
        progress=progress,
    )
    if progress is not None:
        progress.clear()
    samples = [
        {"arch_hyper": ah.to_dict(), "score": float(score)}
        for ah, score in zip(candidates, scores)
    ]
    body = {"task": task.name, "samples": samples}
    if fidelities is not None:
        # A fidelity-scheduled collect tags each score with the epoch budget
        # it was measured at; the key is absent on flat collects so their
        # result bodies stay byte-identical to pre-fidelity ones.
        for sample, fidelity in zip(samples, fidelities):
            sample["fidelity_epochs"] = int(fidelity)
        body["fidelity_schedule"] = request.runtime.fidelity_schedule
    return body


def _run_train(engine: Engine, request: JobRequest, fingerprint: str) -> dict:
    task = request.build_task()
    arch_hyper = ArchHyper.from_dict(request.options["arch_hyper"])
    return engine.train_artifact(
        arch_hyper,
        task,
        fingerprint,
        request.runtime,
        epochs=_int_option(request.options, "epochs", None),
        seed=_int_option(request.options, "seed", 0),
    )


_EXECUTORS = {"rank": _run_rank, "collect": _run_collect, "train": _run_train}


def execute_job(engine: Engine, request: JobRequest, fingerprint: str) -> JobResult:
    """Run one validated request to completion and return its result body.

    Raises whatever the underlying executor raises — the *caller* decides
    what an exception means (the daemon marks the job failed; the
    synchronous API renders a 500; an injected ``KeyboardInterrupt`` in
    tests kills the worker with the job still 'running', which is exactly
    the crash the recovery path must handle).
    """
    executor = _EXECUTORS.get(request.kind)
    if executor is None:
        raise ProtocolError(f"unknown job kind {request.kind!r}")
    with metrics_scope(MetricsRegistry(parent=get_registry())) as registry:
        with span("execute", kind=request.kind, tenant=request.tenant):
            body = executor(engine, request, fingerprint)
        return JobResult(body, registry.snapshot())
