"""The sqlite-backed service registry: tasks, jobs, and results.

One database file holds everything the service remembers across restarts:

* ``tasks`` — every task spec ever submitted, keyed by its content
  fingerprint (so the registry doubles as a task catalogue),
* ``jobs`` — the persistent job queue with its state machine,
* ``results`` — content-addressed result bodies; two tenants submitting
  identical work share one row here, which is what makes duplicate
  submissions free.

Concurrency model: every thread gets its own connection (sqlite
connections are not thread-safe; :class:`ServiceDB` keeps them in
thread-local storage) in WAL mode with a busy timeout, and every
read-modify-write runs inside ``BEGIN IMMEDIATE`` so concurrent daemon
workers serialize on the write lock.  :meth:`ServiceDB.claim_next` is a
single guarded ``UPDATE ... RETURNING``: a job can never be claimed twice.

State machine (enforced twice — a CHECK constraint rejects unknown states,
and every transition is a guarded ``UPDATE ... WHERE status = ?`` whose
rowcount is checked):

    pending ──claim──▶ running ──▶ done
       ▲                  │
       └──requeue/recover─┴──▶ failed ──requeue──▶ pending

Corruption safety: opening a truncated or garbage database file raises a
typed :class:`RegistryCorruptError` immediately (``PRAGMA quick_check`` at
open) — never a hang, never a half-alive registry.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from pathlib import Path

SCHEMA_VERSION = 2

SERVICE_DB_ENV = "REPRO_SERVICE_DB"

_REPO_ROOT = Path(__file__).resolve().parents[3]

JOB_STATES = ("pending", "running", "done", "failed")

# state -> the states it may move to; anything else is an illegal hop.
LEGAL_TRANSITIONS: dict[str, tuple[str, ...]] = {
    "pending": ("running",),
    "running": ("done", "failed", "pending"),  # pending = orphan recovery
    "failed": ("pending",),  # explicit requeue
    "done": (),
}


def default_db_path() -> Path:
    """``$REPRO_SERVICE_DB`` or ``benchmarks/.service/registry.sqlite``."""
    env = os.environ.get(SERVICE_DB_ENV)
    if env:
        return Path(env)
    return _REPO_ROOT / "benchmarks" / ".service" / "registry.sqlite"


class RegistryError(RuntimeError):
    """Base class of registry failures."""


class RegistryCorruptError(RegistryError):
    """The database file is not a healthy sqlite registry."""


class IllegalTransitionError(RegistryError):
    """A job-state hop outside :data:`LEGAL_TRANSITIONS` was attempted."""


class UnknownJobError(RegistryError):
    """A job id that is not in the registry."""


# Each entry migrates the schema one version forward; entry ``i`` moves
# ``user_version`` from ``i`` to ``i+1``.  Append, never edit.
MIGRATIONS: tuple[tuple[str, ...], ...] = (
    (
        """
        CREATE TABLE tasks (
            fingerprint TEXT PRIMARY KEY,
            name        TEXT NOT NULL,
            spec        TEXT NOT NULL,
            created     REAL NOT NULL
        )
        """,
        f"""
        CREATE TABLE jobs (
            id          TEXT PRIMARY KEY,
            fingerprint TEXT NOT NULL UNIQUE,
            kind        TEXT NOT NULL,
            task_fingerprint TEXT,
            payload     TEXT NOT NULL,
            status      TEXT NOT NULL
                        CHECK (status IN {JOB_STATES!r})
                        DEFAULT 'pending',
            owner       TEXT,
            attempts    INTEGER NOT NULL DEFAULT 0,
            submissions INTEGER NOT NULL DEFAULT 1,
            tenants     TEXT NOT NULL DEFAULT '[]',
            error       TEXT,
            metrics     TEXT,
            created     REAL NOT NULL,
            updated     REAL NOT NULL
        )
        """,
        "CREATE INDEX jobs_status ON jobs (status, created, id)",
        """
        CREATE TABLE results (
            fingerprint TEXT PRIMARY KEY,
            job_id      TEXT,
            kind        TEXT NOT NULL,
            body        TEXT NOT NULL,
            created     REAL NOT NULL
        )
        """,
    ),
    # v1 -> v2: queue-wait accounting and persisted metrics history.
    # ``queued_at`` stamps when a job (re)entered the pending queue, so a
    # claim can report wait time; existing pending rows backfill from
    # ``updated`` (their last state change is when they were queued).
    (
        "ALTER TABLE jobs ADD COLUMN queued_at REAL",
        "UPDATE jobs SET queued_at = updated WHERE status = 'pending'",
        """
        CREATE TABLE metrics_history (
            id       INTEGER PRIMARY KEY AUTOINCREMENT,
            ts       REAL NOT NULL,
            source   TEXT NOT NULL DEFAULT '',
            snapshot TEXT NOT NULL
        )
        """,
        "CREATE INDEX metrics_history_ts ON metrics_history (ts)",
    ),
)


def _job_row_to_dict(row: sqlite3.Row) -> dict:
    job = dict(row)
    job["tenants"] = json.loads(job.get("tenants") or "[]")
    for key in ("payload", "metrics"):
        if job.get(key):
            job[key] = json.loads(job[key])
    return job


class ServiceDB:
    """Thread-safe facade over the registry database file."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else default_db_path()
        self._tls = threading.local()
        self._migrate_lock = threading.Lock()
        # Open (and migrate) eagerly so corruption surfaces at construction,
        # not on the first request minutes later.
        self._connection()

    # ------------------------------------------------------------------
    # Connections and schema
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        conn = getattr(self._tls, "conn", None)
        if conn is not None:
            return conn
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(
            self.path, timeout=30.0, isolation_level=None  # autocommit; we BEGIN manually
        )
        conn.row_factory = sqlite3.Row
        try:
            conn.execute("PRAGMA busy_timeout = 30000")
            health = conn.execute("PRAGMA quick_check").fetchone()[0]
            if health != "ok":
                raise RegistryCorruptError(
                    f"registry {self.path} failed quick_check: {health}"
                )
            conn.execute("PRAGMA journal_mode = WAL")
            with self._migrate_lock:
                self._migrate(conn)
        except sqlite3.DatabaseError as exc:
            conn.close()
            raise RegistryCorruptError(
                f"registry {self.path} is not a readable sqlite database "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        except RegistryError:
            conn.close()
            raise
        self._tls.conn = conn
        return conn

    def _migrate(self, conn: sqlite3.Connection) -> None:
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise RegistryError(
                f"registry {self.path} has schema v{version}, newer than this "
                f"build's v{SCHEMA_VERSION}; refusing to downgrade"
            )
        while version < SCHEMA_VERSION:
            conn.execute("BEGIN IMMEDIATE")
            try:
                # Re-read under the write lock: another process/thread may
                # have migrated between our check and our BEGIN.
                version = conn.execute("PRAGMA user_version").fetchone()[0]
                if version >= SCHEMA_VERSION:
                    conn.execute("COMMIT")
                    break
                for statement in MIGRATIONS[version]:
                    conn.execute(statement)
                # PRAGMA cannot be parameterized; version is a trusted int.
                conn.execute(f"PRAGMA user_version = {version + 1}")
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            version += 1

    def close(self) -> None:
        conn = getattr(self._tls, "conn", None)
        if conn is not None:
            conn.close()
            self._tls.conn = None

    def _write(self):
        """An immediate-transaction context for read-modify-write blocks."""
        return _WriteTransaction(self._connection())

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    def record_task(self, fingerprint: str, name: str, spec: dict) -> None:
        with self._write() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO tasks (fingerprint, name, spec, created) "
                "VALUES (?, ?, ?, ?)",
                (fingerprint, name, json.dumps(spec, sort_keys=True), time.time()),
            )

    def list_tasks(self) -> list[dict]:
        rows = self._connection().execute(
            "SELECT fingerprint, name, spec, created FROM tasks ORDER BY created"
        ).fetchall()
        return [
            {**dict(row), "spec": json.loads(row["spec"])} for row in rows
        ]

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def submit_job(
        self,
        fingerprint: str,
        kind: str,
        payload: dict,
        tenant: str = "anonymous",
        task_fingerprint: str | None = None,
    ) -> tuple[dict, bool]:
        """Insert a job, or dedupe onto the existing one (by fingerprint).

        Returns ``(job, deduped)``.  A duplicate submission bumps the job's
        ``submissions`` count and tenant list but triggers no new work —
        whatever state the original is in (queued, running, or already
        done) is what the second tenant gets.
        """
        now = time.time()
        with self._write() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
            if row is not None:
                tenants = json.loads(row["tenants"])
                if tenant not in tenants:
                    tenants.append(tenant)
                conn.execute(
                    "UPDATE jobs SET submissions = submissions + 1, "
                    "tenants = ?, updated = ? WHERE id = ?",
                    (json.dumps(tenants), now, row["id"]),
                )
                return self._get_job(conn, row["id"]), True
            job_id = uuid.uuid4().hex[:12]
            conn.execute(
                "INSERT INTO jobs (id, fingerprint, kind, task_fingerprint, "
                "payload, status, tenants, created, updated, queued_at) "
                "VALUES (?, ?, ?, ?, ?, 'pending', ?, ?, ?, ?)",
                (
                    job_id,
                    fingerprint,
                    kind,
                    task_fingerprint,
                    json.dumps(payload, sort_keys=True),
                    json.dumps([tenant]),
                    now,
                    now,
                    now,
                ),
            )
            return self._get_job(conn, job_id), False

    def _get_job(self, conn: sqlite3.Connection, job_id: str) -> dict:
        row = conn.execute("SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        if row is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return _job_row_to_dict(row)

    def get_job(self, job_id: str) -> dict:
        return self._get_job(self._connection(), job_id)

    def find_job(self, fingerprint: str) -> dict | None:
        row = self._connection().execute(
            "SELECT * FROM jobs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return _job_row_to_dict(row) if row is not None else None

    def list_jobs(self, status: str | None = None) -> list[dict]:
        conn = self._connection()
        if status is None:
            rows = conn.execute("SELECT * FROM jobs ORDER BY created, id").fetchall()
        else:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE status = ? ORDER BY created, id", (status,)
            ).fetchall()
        return [_job_row_to_dict(row) for row in rows]

    def counts(self) -> dict[str, int]:
        rows = self._connection().execute(
            "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
        ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        counts.update({row["status"]: row["n"] for row in rows})
        return counts

    # ------------------------------------------------------------------
    # The state machine
    # ------------------------------------------------------------------
    def claim_next(self, owner: str) -> dict | None:
        """Atomically move the oldest pending job to ``running``.

        The claim is one guarded ``UPDATE ... RETURNING`` inside an
        immediate transaction, so two workers racing on the same queue can
        never both claim one job: the second worker's subselect no longer
        sees it.
        """
        now = time.time()
        with self._write() as conn:
            row = conn.execute(
                "UPDATE jobs SET status = 'running', owner = ?, "
                "attempts = attempts + 1, updated = ? "
                "WHERE id = (SELECT id FROM jobs WHERE status = 'pending' "
                "            ORDER BY created, id LIMIT 1) "
                "AND status = 'pending' RETURNING *",
                (owner, now),
            ).fetchone()
            if row is None:
                return None
            job = _job_row_to_dict(row)
            # How long the job sat queued before this claim (observability
            # only; fed into the service.job.queue_wait_seconds histogram).
            queued_at = job.get("queued_at")
            job["queue_wait"] = max(0.0, now - queued_at) if queued_at else 0.0
            return job

    def transition(
        self,
        job_id: str,
        to_state: str,
        from_state: str | None = None,
        error: str | None = None,
        metrics: dict | None = None,
    ) -> dict:
        """Move one job between states, enforcing the legal-hop table.

        The update is guarded: ``WHERE id = ? AND status = ?`` with the
        rowcount checked, so a concurrent transition (or an illegal hop)
        raises :class:`IllegalTransitionError` instead of silently clobbering
        another worker's write.
        """
        if to_state not in JOB_STATES:
            raise IllegalTransitionError(f"unknown state {to_state!r}")
        with self._write() as conn:
            job = self._get_job(conn, job_id)
            current = job["status"]
            if from_state is not None and current != from_state:
                raise IllegalTransitionError(
                    f"job {job_id}: expected {from_state!r} but found {current!r}"
                )
            if to_state not in LEGAL_TRANSITIONS[current]:
                raise IllegalTransitionError(
                    f"job {job_id}: illegal transition {current!r} -> {to_state!r}"
                )
            now = time.time()
            updated = conn.execute(
                "UPDATE jobs SET status = ?, error = ?, "
                "metrics = COALESCE(?, metrics), updated = ?, "
                "queued_at = CASE WHEN ? = 'pending' THEN ? ELSE queued_at END "
                "WHERE id = ? AND status = ?",
                (
                    to_state,
                    error,
                    json.dumps(metrics, sort_keys=True) if metrics else None,
                    now,
                    to_state,
                    now,
                    job_id,
                    current,
                ),
            ).rowcount
            if updated != 1:
                raise IllegalTransitionError(
                    f"job {job_id}: lost transition race from {current!r}"
                )
            return self._get_job(conn, job_id)

    def update_metrics(self, job_id: str, metrics: dict) -> None:
        """Stream a progress snapshot onto a job (observability only)."""
        with self._write() as conn:
            conn.execute(
                "UPDATE jobs SET metrics = ?, updated = ? WHERE id = ?",
                (json.dumps(metrics, sort_keys=True), time.time(), job_id),
            )

    def heartbeat(self, job_id: str, owner: str) -> bool:
        """Refresh a running job's ``updated`` stamp; the liveness signal.

        Guarded by owner and status so a heartbeat can never resurrect a
        job that was recovered (or finished) out from under its worker.
        Returns whether the job is still this owner's to run — a worker
        seeing ``False`` knows its claim was taken away.
        """
        with self._write() as conn:
            updated = conn.execute(
                "UPDATE jobs SET updated = ? "
                "WHERE id = ? AND status = 'running' AND owner = ?",
                (time.time(), job_id, owner),
            ).rowcount
        return updated == 1

    def recover_orphans(
        self,
        owner_prefix: str | None = None,
        stale_after: float | None = None,
    ) -> list[dict]:
        """Requeue ``running`` jobs left behind by a dead daemon.

        A killed daemon cannot mark its in-flight job; on restart,
        ``running`` jobs go back to ``pending``.  Progress checkpoints
        written by the job's executor survive on disk, so the re-run
        resumes bitwise-identically instead of starting over.

        With no filter this requeues *every* running job — only safe when
        the caller knows no other worker is alive (tests, an explicit
        admin reset).  Daemons sharing a registry with workers they cannot
        see must scope the sweep: ``owner_prefix`` restricts it to their
        own claim tags, and ``stale_after`` restricts it to jobs whose
        ``updated`` heartbeat (see :meth:`heartbeat`) went quiet more than
        that many seconds ago — a live worker's job is never stolen.
        """
        with self._write() as conn:
            query = "SELECT id FROM jobs WHERE status = 'running'"
            params: list = []
            if owner_prefix is not None:
                query += " AND owner LIKE ?"
                params.append(owner_prefix + "%")
            if stale_after is not None:
                query += " AND updated < ?"
                params.append(time.time() - stale_after)
            rows = conn.execute(query, params).fetchall()
            recovered = []
            for row in rows:
                now = time.time()
                conn.execute(
                    "UPDATE jobs SET status = 'pending', owner = NULL, "
                    "updated = ?, queued_at = ? "
                    "WHERE id = ? AND status = 'running'",
                    (now, now, row["id"]),
                )
                recovered.append(self._get_job(conn, row["id"]))
            return recovered

    def requeue(self, job_id: str) -> dict:
        """Explicitly send a ``failed`` job back to the queue."""
        return self.transition(job_id, "pending", from_state="failed")

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def put_result(
        self, fingerprint: str, kind: str, body: dict, job_id: str | None = None
    ) -> None:
        with self._write() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results "
                "(fingerprint, job_id, kind, body, created) VALUES (?, ?, ?, ?, ?)",
                (
                    fingerprint,
                    job_id,
                    kind,
                    json.dumps(body, sort_keys=True),
                    time.time(),
                ),
            )

    def get_result(self, fingerprint: str) -> dict | None:
        row = self._connection().execute(
            "SELECT body FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return json.loads(row["body"]) if row is not None else None

    # ------------------------------------------------------------------
    # Metrics history
    # ------------------------------------------------------------------
    def record_metrics(self, snapshot: dict, source: str = "") -> None:
        """Persist one registry snapshot (the sampler thread's write path)."""
        with self._write() as conn:
            conn.execute(
                "INSERT INTO metrics_history (ts, source, snapshot) VALUES (?, ?, ?)",
                (time.time(), source, json.dumps(snapshot, sort_keys=True)),
            )

    def metrics_history(
        self, since: float | None = None, limit: int = 500
    ) -> list[dict]:
        """Persisted snapshots, oldest first (the ``/metrics/history`` body)."""
        conn = self._connection()
        if since is None:
            rows = conn.execute(
                "SELECT ts, source, snapshot FROM metrics_history "
                "ORDER BY ts DESC, id DESC LIMIT ?",
                (int(limit),),
            ).fetchall()
        else:
            rows = conn.execute(
                "SELECT ts, source, snapshot FROM metrics_history WHERE ts >= ? "
                "ORDER BY ts DESC, id DESC LIMIT ?",
                (float(since), int(limit)),
            ).fetchall()
        return [
            {
                "ts": row["ts"],
                "source": row["source"],
                "metrics": json.loads(row["snapshot"]),
            }
            for row in reversed(rows)
        ]

    def prune_metrics_history(self, max_rows: int = 2000) -> int:
        """Bound the history table by downsampling its oldest half.

        Rather than dropping everything past ``max_rows`` (which would
        erase all long-range context), each pass deletes every second row
        of the *oldest half* — old history thins out geometrically while
        the recent window stays at full resolution.  Returns rows deleted.
        """
        deleted = 0
        while True:
            with self._write() as conn:
                total = conn.execute(
                    "SELECT COUNT(*) FROM metrics_history"
                ).fetchone()[0]
                if total <= max_rows:
                    return deleted
                oldest = conn.execute(
                    "SELECT id FROM metrics_history ORDER BY ts, id LIMIT ?",
                    (total // 2,),
                ).fetchall()
                victims = [row["id"] for row in oldest[::2]]
                if not victims:
                    return deleted
                conn.executemany(
                    "DELETE FROM metrics_history WHERE id = ?",
                    [(victim,) for victim in victims],
                )
                deleted += len(victims)


class _WriteTransaction:
    """``BEGIN IMMEDIATE`` ... ``COMMIT``/``ROLLBACK`` as a context manager."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            self._conn.execute("ROLLBACK")
