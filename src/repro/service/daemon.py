"""The worker daemon: claims registry jobs and executes them.

A daemon is a polling loop over the sqlite registry: atomically claim the
oldest pending job (``UPDATE … RETURNING`` under ``BEGIN IMMEDIATE``, so
two daemons can share one registry without double-claiming), re-validate
its payload, execute it through :func:`~repro.service.jobs.execute_job`,
and record the outcome:

* success — result body stored content-addressed under the job's
  fingerprint, job transitioned ``running → done``;
* an ordinary ``Exception`` — job transitioned ``running → failed`` with
  the error text (a later ``requeue`` retries it);
* a ``BaseException`` (``KeyboardInterrupt``, ``SystemExit`` — i.e. the
  process dying mid-job) — deliberately *not* caught: the job stays
  ``running`` and orphan recovery requeues it.  Combined with the
  engine's content-addressed checkpoints, the retried run resumes
  bitwise-identically instead of starting over.

Liveness and recovery: while a job runs, a heartbeat thread refreshes its
``updated`` stamp every ``heartbeat_interval`` seconds.  Orphan recovery —
run once at :meth:`Daemon.start` and periodically while the queue is idle
— requeues only ``running`` jobs whose heartbeat went quiet for
``recover_stale_after`` seconds, so a daemon restarting against a registry
shared with *live* workers in another process never steals their in-flight
jobs (unscoped :meth:`~repro.service.db.ServiceDB.recover_orphans` would
requeue them, the job would execute twice, and the first worker's
``running → done`` transition would then lose its race).

The loop itself is crash-proof against ordinary failures: any
``Exception`` escaping a claim/execute cycle (registry contention, a lost
transition race) is logged and the loop keeps polling — only
``BaseException`` kills the worker, preserving the crash-resume contract.

The daemon runs fine as a plain thread (tests, ``repro serve`` single
process) or as the only occupant of a process (``repro serve --no-api``).
"""

from __future__ import annotations

import logging
import os
import threading
import time
import uuid

from ..obs import (
    SpanBuffer,
    buffered_tracer,
    correlation_scope,
    default_span_buffer,
    get_registry,
    get_tracer,
    tracer_scope,
)
from ..utils.validation import ConfigError, require, require_finite
from .db import IllegalTransitionError, ServiceDB, UnknownJobError
from .engine import Engine
from .jobs import execute_job
from .protocol import JobRequest, RuntimeOverrides, parse_runtime

logger = logging.getLogger(__name__)

METRICS_INTERVAL_ENV = "REPRO_METRICS_INTERVAL"
DEFAULT_METRICS_INTERVAL = 30.0


def resolve_metrics_interval(value=None) -> float:
    """Validate the metrics-sampler interval; ``0`` disables the sampler.

    Precedence: explicit ``value`` (CLI flag) over ``$REPRO_METRICS_INTERVAL``
    over the 30s default.  Anything that is not a finite number ``>= 0``
    raises a typed :class:`ConfigError` (the CLI renders it as exit 2).
    """
    if value is None:
        env = os.environ.get(METRICS_INTERVAL_ENV)
        if env is None or env == "":
            return DEFAULT_METRICS_INTERVAL
        try:
            value = float(env)
        except ValueError:
            raise ConfigError(
                f"${METRICS_INTERVAL_ENV} must be a number of seconds, got {env!r}"
            ) from None
    require_finite(value, "metrics interval")
    require(value >= 0, f"metrics interval must be >= 0, got {value}")
    return float(value)


def _request_from_row(job: dict) -> JobRequest:
    """Rebuild the validated request from a stored job row."""
    payload = job["payload"]
    return JobRequest(
        kind=job["kind"],
        task_spec=payload["task"],
        options=payload.get("options", {}),
        runtime=(
            parse_runtime(payload.get("runtime"))
            if payload.get("runtime")
            else RuntimeOverrides()
        ),
        tenant=payload.get("tenant", "anonymous"),
    )


class Daemon:
    """One worker loop bound to a registry and an engine.

    Args:
        db: the shared job registry.
        engine: the engine executing claimed jobs.
        poll_interval: idle sleep between empty claims, seconds.
        owner: claim tag written into job rows; defaults to a unique
            ``worker-<hex>`` so concurrent daemons are distinguishable.
        heartbeat_interval: how often the in-flight job's ``updated``
            stamp is refreshed, seconds.
        recover_stale_after: how long a ``running`` job's heartbeat must
            be quiet before recovery treats it as orphaned; defaults to
            ``10 × heartbeat_interval``.
    """

    def __init__(
        self,
        db: ServiceDB,
        engine: Engine,
        poll_interval: float = 0.05,
        owner: str | None = None,
        heartbeat_interval: float = 1.0,
        recover_stale_after: float | None = None,
        span_buffer: SpanBuffer | None = None,
    ) -> None:
        self.db = db
        self.engine = engine
        self.poll_interval = poll_interval
        self.owner = owner or f"worker-{uuid.uuid4().hex[:8]}"
        # Every job runs under a tracer that tees into the (shared) span
        # buffer — backing /jobs/<id>/trace — and into whatever file tracer
        # was ambient when the daemon was built, so --trace still captures
        # service runs.  Scoped per-execution; never installed globally.
        self.span_buffer = span_buffer if span_buffer is not None else default_span_buffer()
        self._tracer = buffered_tracer(self.span_buffer, base=get_tracer())
        self.heartbeat_interval = heartbeat_interval
        self.recover_stale_after = (
            recover_stale_after
            if recover_stale_after is not None
            else heartbeat_interval * 10.0
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._heartbeat_thread: threading.Thread | None = None
        self._active_job_id: str | None = None
        self._recover = False
        self.executed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, recover: bool = True) -> "Daemon":
        """Sweep stale orphans (jobs whose worker's heartbeat died), then poll."""
        self._recover = recover
        if recover:
            self.recover_once()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run_forever, name=self.owner, daemon=True
        )
        self._thread.start()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name=f"{self.owner}-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        for thread in (self._thread, self._heartbeat_thread):
            if thread is not None:
                thread.join(timeout=timeout)
        self._thread = None
        self._heartbeat_thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # Recovery and liveness
    # ------------------------------------------------------------------
    def recover_once(self) -> list[dict]:
        """Requeue running jobs whose heartbeat has been quiet too long.

        Scoped by staleness, not owner: a freshly restarted daemon has a
        new owner tag, so the dead predecessor's jobs are recognizable
        only by their silence — while jobs held by live workers (even in
        another process sharing the registry) keep heartbeating and are
        left alone.
        """
        orphans = self.db.recover_orphans(stale_after=self.recover_stale_after)
        if orphans:
            logger.info("requeued %d orphaned job(s)", len(orphans))
        return orphans

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            job_id = self._active_job_id
            if job_id is None:
                continue
            try:
                if not self.db.heartbeat(job_id, self.owner):
                    logger.warning(
                        "job %s is no longer owned by %s", job_id, self.owner
                    )
            except Exception:
                logger.exception("heartbeat for job %s failed", job_id)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run_forever(self) -> None:
        next_sweep = time.monotonic() + self.recover_stale_after
        while not self._stop.is_set():
            # Ordinary failures (registry contention after the busy
            # timeout, a lost transition race) must not kill the worker
            # silently while the API keeps queueing; log and keep polling.
            # BaseException still escapes — that is the crash contract.
            try:
                claimed = self.run_once()
            except Exception:
                logger.exception("worker %s: claim cycle failed", self.owner)
                claimed = False
            if claimed:
                continue
            if self._recover and time.monotonic() >= next_sweep:
                try:
                    self.recover_once()
                except Exception:
                    logger.exception("worker %s: orphan sweep failed", self.owner)
                next_sweep = time.monotonic() + self.recover_stale_after
            self._stop.wait(self.poll_interval)

    def run_once(self) -> bool:
        """Claim and execute at most one job; True if one was claimed."""
        job = self.db.claim_next(self.owner)
        if job is None:
            return False
        self.execute(job)
        return True

    def execute(self, job: dict) -> None:
        """Run one claimed job to a terminal state.

        Only ``Exception`` is converted into a 'failed' row; anything
        harsher escapes with the job still 'running' — the crash contract
        the restart-recovery test depends on.
        """
        started = time.perf_counter()
        self._active_job_id = job["id"]
        registry = get_registry()
        registry.histogram("service.job.queue_wait_seconds").observe(
            float(job.get("queue_wait") or 0.0)
        )
        try:
            # The job id doubles as the correlation id: it is stable across
            # requeue/recovery, so every span of every attempt — including
            # pool-worker spans stamped at relay time — answers to
            # GET /jobs/<id>/trace.
            with tracer_scope(self._tracer), correlation_scope(job["id"]), \
                    self._tracer.span(
                        "job",
                        job=job["id"],
                        kind=job["kind"],
                        attempt=job["attempts"],
                        owner=self.owner,
                    ) as handle:
                try:
                    request = _request_from_row(job)
                    result = execute_job(self.engine, request, job["fingerprint"])
                except Exception as exc:
                    handle.set(error=type(exc).__name__)
                    logger.exception("job %s failed", job["id"])
                    self._transition_safe(
                        job["id"], "failed", error=f"{type(exc).__name__}: {exc}"
                    )
                    return
        finally:
            self._active_job_id = None
            registry.histogram("service.job.execute_seconds").observe(
                time.perf_counter() - started
            )
        metrics = dict(result.metrics)
        metrics["job.seconds"] = {
            "kind": "gauge",
            "value": time.perf_counter() - started,
        }
        self.db.put_result(
            job["fingerprint"], job["kind"], result.body, job_id=job["id"]
        )
        self._transition_safe(job["id"], "done", metrics=metrics)
        self.executed += 1

    def _transition_safe(self, job_id: str, to_state: str, **kwargs) -> None:
        try:
            self.db.transition(job_id, to_state, from_state="running", **kwargs)
        except UnknownJobError:
            logger.warning("job %s vanished before reaching %s", job_id, to_state)
        except IllegalTransitionError as exc:
            # Expected under recovery: the job was requeued (treated as
            # orphaned) while this worker was still finishing it.  The
            # result body is content-addressed, so whichever run lands it
            # writes identical bytes; losing the row race is harmless.
            logger.warning(
                "job %s: lost transition to %s (%s)", job_id, to_state, exc
            )


class MetricsSampler:
    """Periodically persist registry snapshots into ``metrics_history``.

    One sampler per service process (started by ``repro serve`` unless
    ``--metrics-interval 0``): every ``interval`` seconds it writes the
    process-wide registry snapshot through
    :meth:`~repro.service.db.ServiceDB.record_metrics` and prunes the table
    to ``max_rows`` (downsampling the oldest half, so long-range history
    thins out instead of vanishing).  Sampling failures are logged and the
    loop keeps going — history is observability, never liveness.
    """

    def __init__(
        self,
        db: ServiceDB,
        registry=None,
        interval: float | None = None,
        source: str = "",
        max_rows: int = 2000,
    ) -> None:
        from ..obs import global_registry

        self.db = db
        self.registry = registry if registry is not None else global_registry()
        self.interval = resolve_metrics_interval(interval)
        self.source = source
        self.max_rows = max_rows
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def sample_once(self) -> None:
        self.db.record_metrics(self.registry.snapshot(), source=self.source)
        self.db.prune_metrics_history(self.max_rows)
        self.samples += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:
                logger.exception("metrics sampler failed; continuing")

    def start(self) -> "MetricsSampler":
        if self.enabled and self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="metrics-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
