"""The worker daemon: claims registry jobs and executes them.

A daemon is a polling loop over the sqlite registry: atomically claim the
oldest pending job (``UPDATE … RETURNING`` under ``BEGIN IMMEDIATE``, so
two daemons can share one registry without double-claiming), re-validate
its payload, execute it through :func:`~repro.service.jobs.execute_job`,
and record the outcome:

* success — result body stored content-addressed under the job's
  fingerprint, job transitioned ``running → done``;
* an ordinary ``Exception`` — job transitioned ``running → failed`` with
  the error text (a later ``requeue`` retries it);
* a ``BaseException`` (``KeyboardInterrupt``, ``SystemExit`` — i.e. the
  process dying mid-job) — deliberately *not* caught: the job stays
  ``running`` and the next daemon start requeues it via
  :meth:`~repro.service.db.ServiceDB.recover_orphans`.  Combined with the
  engine's content-addressed checkpoints, the retried run resumes
  bitwise-identically instead of starting over.

The daemon runs fine as a plain thread (tests, ``repro serve`` single
process) or as the only occupant of a process (``repro serve --no-api``).
"""

from __future__ import annotations

import logging
import threading
import time
import uuid

from .db import ServiceDB, UnknownJobError
from .engine import Engine
from .jobs import execute_job
from .protocol import JobRequest, RuntimeOverrides, parse_runtime

logger = logging.getLogger(__name__)


def _request_from_row(job: dict) -> JobRequest:
    """Rebuild the validated request from a stored job row."""
    payload = job["payload"]
    return JobRequest(
        kind=job["kind"],
        task_spec=payload["task"],
        options=payload.get("options", {}),
        runtime=(
            parse_runtime(payload.get("runtime"))
            if payload.get("runtime")
            else RuntimeOverrides()
        ),
        tenant=payload.get("tenant", "anonymous"),
    )


class Daemon:
    """One worker loop bound to a registry and an engine.

    Args:
        db: the shared job registry.
        engine: the engine executing claimed jobs.
        poll_interval: idle sleep between empty claims, seconds.
        owner: claim tag written into job rows; defaults to a unique
            ``worker-<hex>`` so concurrent daemons are distinguishable.
    """

    def __init__(
        self,
        db: ServiceDB,
        engine: Engine,
        poll_interval: float = 0.05,
        owner: str | None = None,
    ) -> None:
        self.db = db
        self.engine = engine
        self.poll_interval = poll_interval
        self.owner = owner or f"worker-{uuid.uuid4().hex[:8]}"
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.executed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, recover: bool = True) -> "Daemon":
        """Recover orphans (jobs left 'running' by a dead worker), then poll."""
        if recover:
            orphans = self.db.recover_orphans()
            if orphans:
                logger.info("requeued %d orphaned job(s)", len(orphans))
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run_forever, name=self.owner, daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run_forever(self) -> None:
        while not self._stop.is_set():
            if not self.run_once():
                self._stop.wait(self.poll_interval)

    def run_once(self) -> bool:
        """Claim and execute at most one job; True if one was claimed."""
        job = self.db.claim_next(self.owner)
        if job is None:
            return False
        self.execute(job)
        return True

    def execute(self, job: dict) -> None:
        """Run one claimed job to a terminal state.

        Only ``Exception`` is converted into a 'failed' row; anything
        harsher escapes with the job still 'running' — the crash contract
        the restart-recovery test depends on.
        """
        started = time.perf_counter()
        try:
            request = _request_from_row(job)
            result = execute_job(self.engine, request, job["fingerprint"])
        except Exception as exc:
            logger.exception("job %s failed", job["id"])
            self._transition_safe(
                job["id"], "failed", error=f"{type(exc).__name__}: {exc}"
            )
            return
        metrics = dict(result.metrics)
        metrics["job.seconds"] = {
            "kind": "gauge",
            "value": time.perf_counter() - started,
        }
        self.db.put_result(
            job["fingerprint"], job["kind"], result.body, job_id=job["id"]
        )
        self._transition_safe(job["id"], "done", metrics=metrics)
        self.executed += 1

    def _transition_safe(self, job_id: int, to_state: str, **kwargs) -> None:
        try:
            self.db.transition(job_id, to_state, from_state="running", **kwargs)
        except UnknownJobError:
            logger.warning("job %s vanished before reaching %s", job_id, to_state)
