"""``repro.service`` — search-as-a-service on top of the runtime layer.

A dependency-free HTTP API (:mod:`~repro.service.api`) plus a worker daemon
(:mod:`~repro.service.daemon`) backed by a persistent sqlite job registry
(:mod:`~repro.service.db`).  Clients submit tasks — raw series or registered
datasets — and get either an immediate zero-shot ranking (``POST /rank``)
or a job id for long-running work; results are content-addressed so
identical submissions across tenants dedupe to one computation.  The
:class:`~repro.service.engine.Engine` facade is the single code path shared
by the daemon and the CLI.  See ``docs/service.md``.
"""

from .api import ServiceAPI
from .daemon import (
    METRICS_INTERVAL_ENV,
    Daemon,
    MetricsSampler,
    resolve_metrics_interval,
)
from .db import (
    IllegalTransitionError,
    RegistryCorruptError,
    RegistryError,
    ServiceDB,
    UnknownJobError,
    default_db_path,
)
from .engine import Engine, RankOutcome, artifacts_fingerprint
from .jobs import JobResult, execute_job
from .protocol import (
    JOB_KINDS,
    PROTOCOL_VERSION,
    JobRequest,
    ProtocolError,
    RuntimeOverrides,
    build_task,
    parse_runtime,
    parse_submit,
    request_fingerprint,
    task_fingerprint,
)

__all__ = [
    "Daemon",
    "Engine",
    "IllegalTransitionError",
    "JOB_KINDS",
    "JobRequest",
    "JobResult",
    "METRICS_INTERVAL_ENV",
    "MetricsSampler",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RankOutcome",
    "RegistryCorruptError",
    "RegistryError",
    "RuntimeOverrides",
    "ServiceAPI",
    "ServiceDB",
    "UnknownJobError",
    "artifacts_fingerprint",
    "build_task",
    "default_db_path",
    "execute_job",
    "parse_runtime",
    "resolve_metrics_interval",
    "parse_submit",
    "request_fingerprint",
    "task_fingerprint",
]
