"""Typed construction-time validation for configuration dataclasses.

Training and proxy configs used to accept any numerics and fail deep inside
the training loop (a zero batch size as an empty batch iterator, a negative
learning rate as silent divergence).  :class:`ConfigError` makes a bad knob a
*construction-time* outcome instead: it subclasses :class:`ValueError`, so
pre-existing ``except ValueError`` call sites (and the CLI's error rendering)
keep working, while new code can catch the typed class.
"""

from __future__ import annotations

import math


class ConfigError(ValueError):
    """A configuration field failed validation at construction time."""


def require(condition: bool, message: str) -> None:
    """Raise a :class:`ConfigError` unless ``condition`` holds."""
    if not condition:
        raise ConfigError(message)


def require_int_at_least(value, minimum: int, name: str) -> None:
    """``value`` must be an integer (not a bool) ``>= minimum``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")


def require_positive_finite(value, name: str) -> None:
    """``value`` must be a finite real number ``> 0``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value) or value <= 0:
        raise ConfigError(f"{name} must be positive and finite, got {value}")


def require_finite(value, name: str) -> None:
    """``value`` must be a finite real number (any sign)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ConfigError(f"{name} must be finite, got {value}")
