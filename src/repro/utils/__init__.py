"""Shared utilities: seeding and validation helpers."""

from .seeding import derive_rng, spawn_seeds

__all__ = ["derive_rng", "spawn_seeds"]
