"""Deterministic random-number management.

All stochastic components of the library (initializers, dropout, samplers,
the evolutionary algorithm, data generators) receive an explicit
``numpy.random.Generator``.  These helpers derive independent generators from
a root seed so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np


def derive_rng(seed: int, *keys) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a tuple of keys.

    String keys are hashed stably (not with Python's randomized ``hash``) so
    the same call yields the same stream across interpreter runs.
    """
    material = [seed & 0xFFFFFFFF]
    for key in keys:
        if isinstance(key, str):
            material.append(_stable_string_hash(key))
        else:
            material.append(int(key) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(material))


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Produce ``count`` distinct child seeds from a root seed."""
    rng = np.random.default_rng(seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=count)]


def _stable_string_hash(text: str) -> int:
    value = 2166136261
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value
