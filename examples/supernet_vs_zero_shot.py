"""Supernet search (Fig. 1a) vs zero-shot search (Fig. 1b), side by side.

Runs the DARTS-style supernet search — the AutoCTS/AutoSTG predecessor — and
the AutoCTS++ zero-shot search on the same unseen task, comparing wall-clock
cost and the forecasting accuracy of the models each one finds.  The paper's
argument in one script: the supernet must be retrained from scratch for every
new task, while the zero-shot searcher answers immediately.

Run:  python examples/supernet_vs_zero_shot.py      (~3 min on CPU)
"""

import time

from repro.core import TrainConfig, build_forecaster, evaluate_forecaster, train_forecaster
from repro.experiments import TINY, pretrain_variant, run_zero_shot, target_task
from repro.space import ArchHyper, HyperParameters
from repro.supernet import SupernetConfig, supernet_search


def main() -> None:
    scale = TINY
    task = target_task(scale, "PEMSD7M", scale.setting("P-12/Q-12"), seed=0)
    print(f"task: {task.name}\n")

    # --- Predecessor: per-task supernet search (architecture only). ---
    print("supernet search (per-task, fixed hyperparameters)...")
    start = time.perf_counter()
    supernet_result = supernet_search(
        task,
        SupernetConfig(num_nodes=3, hidden_dim=8, epochs=3, batch_size=scale.batch_size),
    )
    supernet_seconds = time.perf_counter() - start
    arch = supernet_result.architecture
    print(f"  derived in {supernet_seconds:.1f}s: {arch}")
    # Train the derived architecture under the supernet's fixed hypers.
    derived = ArchHyper(
        arch,
        HyperParameters(num_blocks=1, num_nodes=arch.num_nodes, hidden_dim=8,
                        output_dim=8, output_mode=0, dropout=0),
    )
    model = build_forecaster(derived, task.data, task.horizon, seed=0)
    train_forecaster(model, task.prepared.train, task.prepared.val,
                     TrainConfig(epochs=scale.final_train_epochs, batch_size=scale.batch_size))
    supernet_scores = evaluate_forecaster(
        model, task.prepared.test, inverse=task.prepared.inverse
    )
    print(f"  test MAE={supernet_scores.mae:.3f}")

    # --- AutoCTS++: zero-shot joint search. ---
    print("\nzero-shot joint search (pre-trained T-AHC, cached)...")
    artifacts = pretrain_variant(scale, "full", seed=0)
    result = run_zero_shot(artifacts, task, scale, seed=0)
    print(f"  searched in {result.timings.search:.1f}s (+{result.timings.training:.1f}s training)")
    print(f"  {result.best.hyper}")
    print(f"  test MAE={result.best_scores.mae:.3f}")

    print(
        f"\nper-task search cost: supernet {supernet_seconds:.1f}s vs "
        f"zero-shot {result.timings.search:.1f}s "
        f"({supernet_seconds / max(result.timings.search, 1e-9):.0f}x)"
    )


if __name__ == "__main__":
    main()
