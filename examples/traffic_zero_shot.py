"""Zero-shot search on an unseen traffic dataset (the AutoCTS++ headline flow).

Pre-trains a small T-AHC on enriched source tasks (PEMS + METR-LA families),
then searches a forecasting model for the *unseen* Los-Loop dataset at an
*unseen* forecasting setting — no per-task comparator training, just task
embedding + ranking + final training.

Run:  python examples/traffic_zero_shot.py      (~3-4 min on CPU)
"""

from repro.experiments import SMOKE, TINY, pretrain_variant, run_baseline, run_zero_shot, target_task


def main() -> None:
    scale = TINY

    print("1. pre-training T-AHC on enriched source tasks (cached if available)...")
    artifacts = pretrain_variant(scale, "full", seed=0)
    history = artifacts.history
    print(
        f"   pre-trained on {len(artifacts.sample_sets)} tasks; "
        f"final pairwise accuracy {history.accuracies[-1]:.2f}"
    )

    print("2. zero-shot search on the unseen Los-Loop dataset, unseen P-24/Q-24 setting...")
    setting = scale.setting("P-24/Q-24")
    task = target_task(scale, "Los-Loop", setting, seed=0)
    result = run_zero_shot(artifacts, task, scale, seed=0)
    print(f"   searched arch-hyper: {result.best.hyper}")
    print(f"   {result.best.arch}")
    print(
        f"   phases: embed {result.timings.embedding:.1f}s, "
        f"rank {result.timings.ranking:.1f}s, train {result.timings.training:.1f}s"
    )
    print(f"   test MAE={result.best_scores.mae:.3f} RMSE={result.best_scores.rmse:.3f}")

    print("3. comparison: the frozen AutoCTS+ transfer model on the same task...")
    baseline = run_baseline("AutoCTS+", task, scale, seed=0)
    print(f"   AutoCTS+ (transferred) MAE={baseline.mae:.3f} RMSE={baseline.rmse:.3f}")
    verdict = "wins" if result.best_scores.mae < baseline.mae else "loses"
    print(f"   zero-shot AutoCTS++ {verdict} on this task.")


if __name__ == "__main__":
    main()
