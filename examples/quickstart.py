"""Quickstart: build, train, evaluate, and persist one searched CTS forecaster.

This walks the core objects of the library without any search: a benchmark
dataset, a forecasting task, an arch-hyper from the joint search space, and
the forecasting model it defines.

Run:  python examples/quickstart.py        (~30 s on CPU)
"""

import numpy as np

from repro.core import TrainConfig, build_forecaster, evaluate_forecaster, train_forecaster
from repro.data import get_dataset
from repro.io import load_forecaster, save_forecaster
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import Task


def main() -> None:
    # 1. A correlated time series dataset (synthetic PEMS-BAY equivalent).
    data = get_dataset("PEMS-BAY", seed=0)
    print(f"dataset: {data.name}: N={data.n_series} series, T={data.n_steps} steps")

    # 2. A forecasting task: 6 historical steps -> 6 future steps.
    task = Task(data, p=6, q=6, max_train_windows=256)
    print(f"task: {task.name} ({len(task.prepared.train)} training windows)")

    # 3. One candidate from the joint architecture-hyperparameter space.
    space = JointSearchSpace(
        hyper_space=HyperSpace(
            num_blocks=(1, 2), num_nodes=(3, 4), hidden_dims=(8, 16),
            output_dims=(8, 16), output_modes=(0, 1), dropout=(0, 1),
        )
    )
    arch_hyper = space.sample(np.random.default_rng(7))
    print(f"sampled arch-hyper:\n  {arch_hyper.hyper}\n  {arch_hyper.arch}")

    # 4. Build and train the forecasting model it defines.
    model = build_forecaster(arch_hyper, data, horizon=task.horizon, seed=0)
    print(f"model has {model.num_parameters()} parameters")
    result = train_forecaster(
        model, task.prepared.train, task.prepared.val,
        TrainConfig(epochs=5, batch_size=64, patience=5),
    )
    print(f"training loss: {result.train_losses[0]:.3f} -> {result.train_losses[-1]:.3f}")

    # 5. Evaluate on the held-out test windows, in original units.
    scores = evaluate_forecaster(
        model, task.prepared.test, inverse=task.prepared.inverse
    )
    print(f"test MAE={scores.mae:.3f}  RMSE={scores.rmse:.3f}  MAPE={scores.mape:.2%}")

    # 6. Persist and reload.
    save_forecaster(model, "/tmp/quickstart_model")
    reloaded = load_forecaster("/tmp/quickstart_model")
    print(f"reloaded model predicts horizon={reloaded.horizon} steps — done.")


if __name__ == "__main__":
    main()
