"""Fully-supervised AutoCTS+ joint search on an electricity workload.

The SIGMOD-2023 pipeline: measure random arch-hypers with the
early-validation proxy on the *target* task, train a task-specific AHC on
pairwise labels, run comparator-guided evolutionary search, and fully train
the Round-Robin top-K.  Compares the searched model against FEDformer.

Run:  python examples/electricity_autocts_plus.py      (~2 min on CPU)
"""

from repro.data import get_dataset
from repro.experiments import TINY, run_baseline, target_task
from repro.search import AutoCTSPlusConfig, AutoCTSPlusSearch, EvolutionConfig
from repro.space import JointSearchSpace
from repro.tasks import ProxyConfig, Task


def main() -> None:
    scale = TINY
    setting = scale.setting("P-12/Q-12")
    task = target_task(scale, "Electricity", setting, seed=0)
    print(f"task: {task.name}")

    space = JointSearchSpace(hyper_space=scale.hyper_space)
    config = AutoCTSPlusConfig(
        n_measured_samples=8,
        ahc_epochs=20,
        pairs_per_epoch=24,
        evolution=EvolutionConfig(
            initial_samples=24, population_size=6, generations=2,
            offspring_per_generation=6, top_k=2,
        ),
        final_train_epochs=scale.final_train_epochs,
        batch_size=scale.batch_size,
        proxy=ProxyConfig(epochs=1, batch_size=scale.batch_size),
    )
    search = AutoCTSPlusSearch(space, config)

    print("1. collecting proxy-measured samples on the target task...")
    result = search.search(task)
    print(f"   measured {len(result.measured)} arch-hypers")
    print(f"   AHC loss {result.ahc_losses[0]:.3f} -> {result.ahc_losses[-1]:.3f}")
    print(f"2. searched model: {result.best.hyper}")
    print(f"   test MAE={result.best_scores.mae:.3f} MAPE={result.best_scores.mape:.2%}")

    print("3. baseline: FEDformer with the same training budget...")
    fed = run_baseline("FEDformer", task, scale, seed=0)
    print(f"   FEDformer MAE={fed.mae:.3f} MAPE={fed.mape:.2%}")


if __name__ == "__main__":
    main()
