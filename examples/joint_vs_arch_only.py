"""Why *joint* search matters: architecture-only vs. joint random search.

The paper's first motivation: the same architecture performs very differently
under different hyperparameters, so searching architectures under one frozen
hyperparameter setting (what AutoCTS/AutoSTG do) leaves accuracy on the
table.  This example runs two random searches with an identical budget —
one sweeping only architectures at fixed hyperparameters, one sweeping the
joint space — and compares the best models found.

Run:  python examples/joint_vs_arch_only.py      (~2 min on CPU)
"""

import numpy as np

from repro.experiments import TINY, target_task
from repro.space import ArchHyper, HyperParameters, JointSearchSpace, sample_architecture
from repro.tasks import ProxyConfig, measure_arch_hyper

BUDGET = 8  # proxy-measured candidates per strategy


def main() -> None:
    scale = TINY
    task = target_task(scale, "NYC-TAXI", scale.setting("P-12/Q-12"), seed=0)
    proxy = ProxyConfig(epochs=2, batch_size=scale.batch_size)
    rng = np.random.default_rng(0)
    space = JointSearchSpace(hyper_space=scale.hyper_space)

    # Strategy A: architecture-only search under one frozen hyper setting.
    frozen = HyperParameters(
        num_blocks=1, num_nodes=3,
        hidden_dim=scale.hyper_space.hidden_dims[0],
        output_dim=scale.hyper_space.output_dims[0],
        output_mode=0, dropout=0,
    )
    arch_only = []
    while len(arch_only) < BUDGET:
        arch = sample_architecture(frozen.num_nodes, rng)
        candidate = ArchHyper(arch, frozen)
        if candidate.is_searchable():
            arch_only.append(candidate)

    # Strategy B: joint search over architectures AND hyperparameters.
    joint = space.sample_batch(BUDGET, rng)

    print(f"task: {task.name}; budget {BUDGET} proxy evaluations per strategy\n")
    scores_a = [measure_arch_hyper(ah, task, proxy) for ah in arch_only]
    scores_b = [measure_arch_hyper(ah, task, proxy) for ah in joint]

    best_a, best_b = min(scores_a), min(scores_b)
    print(f"architecture-only search: best val error {best_a:.4f}")
    print(f"joint search:             best val error {best_b:.4f}")
    winner = "joint" if best_b <= best_a else "architecture-only"
    print(f"-> {winner} search wins on this task")
    print(
        "\n(The joint space contains the arch-only space as a slice, so with"
        "\n matched budgets joint search wins in expectation — Section 1.)"
    )


if __name__ == "__main__":
    main()
