"""Extending the search space with a new operator (paper Section 3.1.1).

The framework accommodates additional operators: implement it, register it,
include its name in the candidate set when sampling arch-hypers, and retrain
the comparator with samples that contain it.  This example adds a simple
temporal average-pooling operator and runs a small search over the extended
space.

Run:  python examples/custom_operator.py      (~1 min on CPU)
"""

import numpy as np

from repro.autodiff import Tensor, pad
from repro.operators import OPERATOR_REGISTRY, STOperator, register_operator
from repro.space import HyperSpace, JointSearchSpace
from repro.space.arch import CANDIDATE_OPERATORS
from repro.experiments import TINY, target_task
from repro.tasks import ProxyConfig, measure_arch_hyper


@register_operator
class TemporalAvgPool(STOperator):
    """Causal temporal smoothing: mean of the last ``window`` steps."""

    name = "tavg"

    def __init__(self, context, window: int = 3) -> None:
        super().__init__(context)
        self.window = window

    def forward(self, x: Tensor) -> Tensor:
        padded = pad(x, ((0, 0), (0, 0), (0, 0), (self.window - 1, 0)))
        time = x.shape[-1]
        total = padded[:, :, :, : time]
        for k in range(1, self.window):
            total = total + padded[:, :, :, k : k + time]
        return total / float(self.window)


def main() -> None:
    print(f"registered operators: {sorted(OPERATOR_REGISTRY)}")

    # NOTE: the encoding vocabulary is the *paper's* candidate set; custom
    # operators participate in model building and random search.  To rank
    # them with a comparator you would extend CANDIDATE_OPERATORS and
    # retrain the T-AHC — here we use proxy-based random search instead.
    extended_ops = CANDIDATE_OPERATORS + ("tavg",)
    space = JointSearchSpace(
        hyper_space=HyperSpace(
            num_blocks=(1,), num_nodes=(3, 4), hidden_dims=(8,), output_dims=(8,),
            output_modes=(0, 1), dropout=(0,),
        ),
        operators=extended_ops,
    )

    task = target_task(TINY, "SZ-TAXI", TINY.setting("P-12/Q-12"), seed=0)
    rng = np.random.default_rng(0)
    proxy = ProxyConfig(epochs=1, batch_size=64)

    candidates = space.sample_batch(6, rng)
    print(f"\nsearching {len(candidates)} candidates on {task.name}...")
    best_score, best = float("inf"), None
    for candidate in candidates:
        score = measure_arch_hyper(candidate, task, proxy)
        uses_custom = any(e.op == "tavg" for e in candidate.arch.edges)
        marker = " [uses tavg]" if uses_custom else ""
        print(f"  val error {score:.4f}{marker}")
        if score < best_score:
            best_score, best = score, candidate

    print(f"\nbest candidate (val error {best_score:.4f}):\n  {best.hyper}\n  {best.arch}")


if __name__ == "__main__":
    main()
