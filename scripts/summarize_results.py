"""Summarize benchmark result tables: win counts per model per table.

Reads the paper-style tables under ``benchmarks/results/`` and prints, for
each performance/ablation table, how many rows each column wins (lower is
better for all metrics except CORR).  Used to fill EXPERIMENTS.md after a
benchmark run.

Run:  python scripts/summarize_results.py [results_dir]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

DEFAULT_DIR = Path(__file__).resolve().parents[1] / "benchmarks" / "results"
HIGHER_BETTER = {"CORR"}


def parse_table(path: Path) -> tuple[list[str], list[tuple[str, str, list[str]]]]:
    """Return (columns, rows) of a rendered ResultTable file."""
    lines = path.read_text().splitlines()
    header_index = next(
        (i for i, line in enumerate(lines) if line.startswith("Dataset")), None
    )
    if header_index is None:
        return [], []
    header = re.split(r"\s{2,}", lines[header_index].strip())
    columns = header[2:]
    rows = []
    for line in lines[header_index + 2 :]:
        if not line.strip():
            continue
        cells = re.split(r"\s{2,}", line.strip())
        if len(cells) < 3:
            continue
        rows.append((cells[0], cells[1], cells[2:]))
    return columns, rows


def win_counts(path: Path) -> dict[str, int]:
    columns, rows = parse_table(path)
    counts = {column: 0 for column in columns}
    for _, metric, cells in rows:
        numeric: dict[str, float] = {}
        for column, cell in zip(columns, cells):
            text = cell.strip("*").split("±")[0].rstrip("%")
            try:
                numeric[column] = float(text)
            except ValueError:
                continue
        if len(numeric) < 2:
            continue
        pick = max if metric in HIGHER_BETTER else min
        counts[pick(numeric, key=numeric.get)] += 1
    return counts


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    results_dir = Path(argv[0]) if argv else DEFAULT_DIR
    if not results_dir.exists():
        print(f"no results directory at {results_dir}", file=sys.stderr)
        return 1
    for path in sorted(results_dir.glob("table*.txt")):
        counts = win_counts(path)
        if not counts:
            continue
        total = sum(counts.values())
        ranked = sorted(counts.items(), key=lambda kv: -kv[1])
        summary = ", ".join(f"{name}={count}" for name, count in ranked if count)
        print(f"{path.stem}: {total} rows; wins: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
