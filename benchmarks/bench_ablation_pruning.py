"""Design-choice ablation — task-adaptive search-space pruning (extension).

The paper's future-work direction (Section 6): build the search space
automatically per task.  We prune the joint space to the region populated by
the top half of proxy-measured samples and compare random-search quality in
the pruned vs the full space under a matched budget.  Shape to hold: the
pruned space concentrates probability mass on good candidates, so its best
found model is at least as good.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ResultTable, print_and_save, target_task
from repro.space import JointSearchSpace, PruningConfig, prune_space, space_reduction
from repro.tasks import ProxyConfig, measure_arch_hyper

MEASURE_BUDGET = 8
SEARCH_BUDGET = 5


def run_pruning_ablation(scale):
    task = target_task(scale, "NYC-BIKE", scale.setting("P-12/Q-12"), seed=0)
    proxy = ProxyConfig(epochs=scale.proxy_epochs, batch_size=scale.batch_size)
    space = JointSearchSpace(hyper_space=scale.hyper_space)
    rng = np.random.default_rng(0)

    # Measure a seed pool and prune the space around its best half.
    pool = space.sample_batch(MEASURE_BUDGET, rng)
    measured = [(ah, measure_arch_hyper(ah, task, proxy)) for ah in pool]
    pruned = prune_space(space, measured, PruningConfig(quantile=0.5))
    reduction = space_reduction(space, pruned)

    # Matched-budget random search in both spaces.
    full_scores = [
        measure_arch_hyper(ah, task, proxy)
        for ah in space.sample_batch(SEARCH_BUDGET, np.random.default_rng(1))
    ]
    pruned_scores = [
        measure_arch_hyper(ah, task, proxy)
        for ah in pruned.sample_batch(SEARCH_BUDGET, np.random.default_rng(1))
    ]

    table = ResultTable(title="Ablation — task-adaptive search-space pruning")
    row = "NYC-BIKE P-12/Q-12"
    table.add(row, "hyper-space reduction", "value", f"{reduction:.0%}")
    table.add(row, "best val error", "full space", f"{min(full_scores):.4f}")
    table.add(row, "best val error", "pruned space", f"{min(pruned_scores):.4f}")
    table.add(row, "mean val error", "full space", f"{np.mean(full_scores):.4f}")
    table.add(row, "mean val error", "pruned space", f"{np.mean(pruned_scores):.4f}")
    return table, min(full_scores), min(pruned_scores)


def test_ablation_pruning(benchmark, scale):
    table, full_best, pruned_best = benchmark.pedantic(
        run_pruning_ablation, args=(scale,), iterations=1, rounds=1
    )
    print_and_save(table, "ablation_pruning")
    # Pruning must not catastrophically hurt the search under matched budget.
    assert pruned_best <= full_best * 1.5
