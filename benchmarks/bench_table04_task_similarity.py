"""Table 4 — quantitative analysis of task similarities.

The paper trains the same 200 arch-hypers on three tasks — (a) a PEMS08
subset at P-12/Q-12, (b) a METR-LA subset at P-12/Q-12, (c) a Solar-Energy
subset at P-48/Q-48 — and reports, for each task pair, the MAE between the
arch-hypers' normalized accuracies and Spearman's rank correlation.  The
shape to reproduce: the two traffic tasks (a, b) are far more similar (low
MAE, high Spearman) than either is to the solar long-horizon task (c).
"""

from __future__ import annotations

import numpy as np

from repro.data import get_dataset
from repro.experiments import ResultTable, print_and_save
from repro.space import JointSearchSpace
from repro.tasks import ProxyConfig, Task, derive_subset, measure_arch_hyper
from repro.metrics import spearman

N_ARCH_HYPERS = 10  # paper: 200


def _tasks(scale):
    rng = np.random.default_rng(0)
    pems = derive_subset(get_dataset("PEMS08", seed=0), rng)
    metr = derive_subset(get_dataset("METR-LA", seed=0), rng)
    solar = derive_subset(get_dataset("Solar-Energy", seed=0), rng)
    short = scale.pretrain_settings[0]
    long = scale.pretrain_settings[-1]
    return {
        "a (PEMS08, short)": Task(pems, *short, max_train_windows=scale.max_train_windows),
        "b (METR-LA, short)": Task(metr, *short, max_train_windows=scale.max_train_windows),
        "c (Solar, long)": Task(solar, *long, max_train_windows=scale.max_train_windows),
    }


def _normalized_accuracy(errors: np.ndarray) -> np.ndarray:
    """Map errors to [0, 1] accuracies (higher better), the paper's metric."""
    lo, hi = errors.min(), errors.max()
    span = hi - lo if hi > lo else 1.0
    return 1.0 - (errors - lo) / span


def run_table4(scale) -> ResultTable:
    space = JointSearchSpace(hyper_space=scale.hyper_space)
    shared = space.sample_batch(N_ARCH_HYPERS, np.random.default_rng(1))
    proxy = ProxyConfig(epochs=scale.proxy_epochs, batch_size=scale.batch_size)
    tasks = _tasks(scale)
    accuracy = {
        name: _normalized_accuracy(
            np.array([measure_arch_hyper(ah, task, proxy) for ah in shared])
        )
        for name, task in tasks.items()
    }
    table = ResultTable(title="Table 4 — quantitative analysis of task similarities")
    names = list(tasks)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            pair = f"{names[i][:1]} and {names[j][:1]}"
            mae = float(np.abs(accuracy[names[i]] - accuracy[names[j]]).mean())
            rho = spearman(accuracy[names[i]], accuracy[names[j]])
            table.add(pair, "MAE", "value", f"{mae:.4f}")
            table.add(pair, "Spear", "value", f"{rho:.4f}")
    return table


def test_table04_task_similarity(benchmark, scale):
    table = benchmark.pedantic(run_table4, args=(scale,), iterations=1, rounds=1)
    print_and_save(table, "table04_task_similarity")
