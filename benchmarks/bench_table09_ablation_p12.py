"""Table 9 — ablation study, P-12/Q-12 forecasting."""

from ablation_common import run_ablation_table

from repro.experiments import print_and_save


def test_table09_ablation_p12(benchmark, scale, artifacts_by_variant):
    table = benchmark.pedantic(
        run_ablation_table,
        args=(scale, artifacts_by_variant, "P-12/Q-12", "Table 9 — ablation, P-12/Q-12"),
        iterations=1,
        rounds=1,
    )
    print_and_save(table, "table09_ablation_p12")
