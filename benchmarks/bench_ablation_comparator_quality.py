"""Design-choice ablation — comparator ranking quality per T-AHC variant.

The end-task tables (9–12) measure each ablation through the full pipeline,
where tiny-scale training variance dominates.  This benchmark measures the
ablations with a *direct* instrument: pairwise ranking accuracy of each
pre-trained variant against proxy-measured ground truth on unseen target
tasks.  Shape to hold (the paper's Section 4.2.3 ordering): the full
framework ranks best on average, the ablated variants worse.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ResultTable, print_and_save, target_task
from repro.metrics import pairwise_accuracy
from repro.tasks import ProxyConfig, measure_arch_hyper

POOL_SIZE = 10
TASKS = (("SZ-TAXI", "P-12/Q-12"), ("PEMSD7M", "P-12/Q-12"), ("NYC-BIKE", "P-24/Q-24"))
VARIANT_COLUMNS = {
    "full": "AutoCTS++",
    "wo_ts2vec": "w/o TS2Vec",
    "wo_set_transformer": "w/o Set-Transformer",
    "wo_shared": "w/o shared samples",
}


def run_comparator_quality(scale, artifacts_by_variant):
    table = ResultTable(title="Ablation — zero-shot ranking accuracy per variant")
    proxy = ProxyConfig(epochs=scale.proxy_epochs, batch_size=scale.batch_size)
    space = artifacts_by_variant["full"].space
    per_variant: dict[str, list[float]] = {v: [] for v in VARIANT_COLUMNS}
    for dataset, setting_label in TASKS:
        task = target_task(scale, dataset, scale.setting(setting_label), seed=0)
        pool = space.sample_batch(POOL_SIZE, np.random.default_rng(7))
        truth = np.array([measure_arch_hyper(ah, task, proxy) for ah in pool])
        windows = task.embedding_windows(scale.embedding_windows)
        for variant, column in VARIANT_COLUMNS.items():
            artifacts = artifacts_by_variant[variant]
            from repro.embedding import preliminary_task_embedding

            preliminary = preliminary_task_embedding(artifacts.embedder, windows)
            wins = artifacts.model.predict_wins(preliminary, pool, space.hyper_space)
            accuracy = pairwise_accuracy(wins, truth)
            per_variant[variant].append(accuracy)
            table.add(f"{dataset} {setting_label}", "pairwise acc", column, f"{accuracy:.3f}")
    for variant, column in VARIANT_COLUMNS.items():
        table.add("mean", "pairwise acc", column, f"{np.mean(per_variant[variant]):.3f}")
    return table, {v: float(np.mean(a)) for v, a in per_variant.items()}


def test_ablation_comparator_quality(benchmark, scale, artifacts_by_variant):
    table, means = benchmark.pedantic(
        run_comparator_quality, args=(scale, artifacts_by_variant), iterations=1, rounds=1
    )
    print_and_save(table, "ablation_comparator_quality")
    # All variants must carry some ranking signal; exact ordering is noisy
    # at the TINY pre-training scale.
    assert all(np.isfinite(v) for v in means.values())
