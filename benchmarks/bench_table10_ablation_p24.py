"""Table 10 — ablation study, P-24/Q-24 forecasting."""

from ablation_common import run_ablation_table

from repro.experiments import print_and_save


def test_table10_ablation_p24(benchmark, scale, artifacts_by_variant):
    table = benchmark.pedantic(
        run_ablation_table,
        args=(scale, artifacts_by_variant, "P-24/Q-24", "Table 10 — ablation, P-24/Q-24"),
        iterations=1,
        rounds=1,
    )
    print_and_save(table, "table10_ablation_p24")
