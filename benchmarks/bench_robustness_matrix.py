"""Robustness matrix: zero-shot quality under seeded data corruption.

AutoCTS++'s pitch is recommending arch-hypers for *unseen* tasks — but real
unseen tasks are dirty.  This benchmark measures how the pre-trained
comparator and the downstream forecaster degrade as one target task
(SZ-TAXI) is corrupted by each profile in
:mod:`repro.data.corruption` at increasing severity:

* **ranking quality** — Spearman ρ and pairwise accuracy between the
  T-AHC's win-count ranking of a fixed candidate pool and the pool's true
  proxy scores *measured on the dirty task* (sentinel scores for diverged
  candidates are legitimate; non-finite scores are a hard failure);
* **forecast quality** — masked test MAE of the top-ranked candidate after
  final training, reported as a ratio against the clean-task baseline.

``--check`` runs a reduced matrix as a CI gate: every comparator label and
proxy score must be finite, and a clean task wearing an all-True mask must
score within tolerance of the maskless clean baseline (the mask-aware code
path cannot silently regress clean data).

The committed JSON (``benchmarks/results/robustness_matrix.json``) is the
robustness snapshot for ROADMAP item 5.
"""

from __future__ import annotations

import json

import numpy as np

from repro.comparator import RankingEngine
from repro.core.health import DivergenceError
from repro.data import corrupt_dataset, get_dataset, get_spec
from repro.experiments import SMOKE, TINY, make_searcher, pretrain_variant
from repro.experiments.reporting import RESULTS_DIR, ResultTable, print_and_save
from repro.metrics.ranking import pairwise_accuracy, spearman
from repro.tasks import ProxyConfig, Task, measure_arch_hyper
from repro.tasks.proxy import SENTINEL_SCORE, full_train_score, is_sentinel_score

TARGET = "SZ-TAXI"
PROFILES = (
    "block_missing",
    "sensor_outage",
    "point_anomalies",
    "level_shift",
    "irregular_sampling",
)
SEVERITIES = (0.2, 0.5)
N_CANDIDATES = 8
SEED = 0

# --check tolerance: an all-True mask routes clean data through the masked
# scaler/loss/metrics (float-equivalent, not bitwise), so the MAE may move
# within float accumulation noise — never by a third.
CHECK_RATIO_BOUNDS = (0.75, 1.3333)


def _target_task(data, scale) -> Task:
    spec = get_spec(TARGET)
    return Task(
        data=data,
        p=6,
        q=6,
        split_ratio=spec.split_ratio_multi,
        max_train_windows=scale.max_train_windows,
    )


def _rank_and_train(artifacts, scale, task, candidates, final_epochs: int) -> dict:
    """One matrix cell: rank the pool on ``task``, train the top pick."""
    searcher = make_searcher(artifacts, scale, seed=SEED)
    preliminary = searcher.embed_task(task)
    engine = RankingEngine(
        artifacts.model, preliminary=preliminary, space=artifacts.space.hyper_space
    )
    wins = engine.win_matrix(candidates)
    win_counts = wins.sum(axis=1)

    proxy = ProxyConfig(epochs=scale.proxy_epochs, batch_size=scale.batch_size, seed=SEED)
    true_scores = []
    for candidate in candidates:
        try:
            true_scores.append(measure_arch_hyper(candidate, task, proxy))
        except DivergenceError:
            true_scores.append(SENTINEL_SCORE)
    true_scores = np.asarray(true_scores)

    top = int(np.argmax(win_counts))
    test = full_train_score(
        candidates[top], task, epochs=final_epochs, config=proxy
    )
    return {
        "dataset": task.data.name,
        "missing_fraction": (
            0.0 if task.data.mask is None else float((~task.data.mask).mean())
        ),
        # Win counts rank candidates best-first; true scores are errors
        # (lower better), so quality is measured against their negation.
        "spearman": spearman(win_counts, -true_scores),
        "pairwise_accuracy": pairwise_accuracy(wins, true_scores),
        "n_sentinel": int(sum(is_sentinel_score(s) for s in true_scores)),
        "all_labels_finite": bool(np.isfinite(wins).all()),
        "all_scores_finite": bool(np.isfinite(true_scores).all()),
        "top_candidate": candidates[top].key(),
        "test_mae": float(test.mae),
    }


def run_robustness_matrix(
    profiles=PROFILES,
    severities=SEVERITIES,
    n_candidates: int = N_CANDIDATES,
    final_epochs: int = 2,
):
    # TINY, not SMOKE: the smoke comparator is too under-trained to prefer
    # any candidate (all-zero win matrix), which would flatten every ranking
    # metric to zero and hide degradation; TINY's 24-epoch comparator ranks.
    scale = TINY
    artifacts = pretrain_variant(scale, "full", seed=SEED)
    candidates = artifacts.space.sample_batch(
        n_candidates, np.random.default_rng(SEED)
    )
    clean_data = get_dataset(TARGET, seed=SEED)

    clean = _rank_and_train(
        artifacts, scale, _target_task(clean_data, scale), candidates, final_epochs
    )
    cells = []
    for profile in profiles:
        for severity in severities:
            dirty = corrupt_dataset(
                clean_data, profile, severity=severity, seed=SEED
            )
            cell = _rank_and_train(
                artifacts, scale, _target_task(dirty, scale), candidates, final_epochs
            )
            cell.update(
                profile=profile,
                severity=severity,
                mae_ratio_vs_clean=(
                    cell["test_mae"] / clean["test_mae"]
                    if clean["test_mae"] > 0
                    else float("inf")
                ),
            )
            cells.append(cell)

    report = {
        "benchmark": "robustness_matrix",
        "scale": scale.name,
        "target": TARGET,
        "setting": "P-12/Q-12 (reproduction P-6/Q-6)",
        "seed": SEED,
        "n_candidates": n_candidates,
        "final_train_epochs": final_epochs,
        "clean": clean,
        "cells": cells,
    }

    table = ResultTable(title=f"Robustness matrix on {TARGET} (dirty vs clean)")
    row = f"{TARGET} clean"
    table.add(row, "spearman", "value", f"{clean['spearman']:+.2f}")
    table.add(row, "pair acc", "value", f"{clean['pairwise_accuracy']:.2f}")
    table.add(row, "test MAE", "value", f"{clean['test_mae']:.4f}")
    for cell in cells:
        row = f"{cell['profile']}@{cell['severity']:g}"
        table.add(row, "spearman", "value", f"{cell['spearman']:+.2f}")
        table.add(row, "pair acc", "value", f"{cell['pairwise_accuracy']:.2f}")
        table.add(
            row,
            "test MAE",
            "value",
            f"{cell['test_mae']:.4f} ({cell['mae_ratio_vs_clean']:.2f}x clean)",
        )
    return table, report


def check_gate() -> None:
    """CI smoke gate: small matrix, hard finiteness + clean-parity asserts.

    Runs at SMOKE (fast, CI-sized): the asserts are about finiteness and
    clean-data parity of the mask-aware path, not ranking diversity, so an
    under-trained comparator is fine here.
    """
    scale = SMOKE
    artifacts = pretrain_variant(scale, "full", seed=SEED)
    candidates = artifacts.space.sample_batch(4, np.random.default_rng(SEED))
    clean_data = get_dataset(TARGET, seed=SEED)

    clean = _rank_and_train(
        artifacts, scale, _target_task(clean_data, scale), candidates, final_epochs=1
    )
    assert clean["all_labels_finite"] and clean["all_scores_finite"]

    # A clean task wearing an all-True mask exercises every mask-aware code
    # path with nothing actually corrupted; it must not regress clean scores
    # beyond float-accumulation tolerance.
    masked_data = corrupt_dataset(clean_data, "block_missing", severity=1e-9, seed=SEED)
    # severity ~0 still drops 0 blocks per series -> all-True mask
    assert masked_data.mask.all(), "expected an effectively-clean mask"
    masked = _rank_and_train(
        artifacts, scale, _target_task(masked_data, scale), candidates, final_epochs=1
    )
    assert masked["all_labels_finite"] and masked["all_scores_finite"]
    low, high = CHECK_RATIO_BOUNDS
    ratio = masked["test_mae"] / clean["test_mae"]
    assert low <= ratio <= high, (
        f"all-True mask moved clean MAE by {ratio:.3f}x "
        f"(bounds {low}-{high}): mask-aware path regressed clean data"
    )

    for profile, severity in (("block_missing", 0.25), ("point_anomalies", 0.4)):
        dirty = corrupt_dataset(clean_data, profile, severity=severity, seed=SEED)
        cell = _rank_and_train(
            artifacts, scale, _target_task(dirty, scale), candidates, final_epochs=1
        )
        assert cell["all_labels_finite"], f"{profile}: non-finite comparator label"
        assert cell["all_scores_finite"], f"{profile}: non-finite proxy score"
        assert np.isfinite(cell["test_mae"]), f"{profile}: non-finite test MAE"
    print("robustness gate ok: labels/scores finite, clean parity "
          f"ratio {ratio:.3f} within {CHECK_RATIO_BOUNDS}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI smoke gate: reduced matrix, finiteness + clean-parity asserts",
    )
    parser.add_argument("--candidates", type=int, default=N_CANDIDATES)
    parser.add_argument("--final-epochs", type=int, default=2)
    parser.add_argument(
        "--no-save", action="store_true",
        help="skip writing benchmarks/results/ (smoke runs)",
    )
    cli_args = parser.parse_args()
    if cli_args.check:
        check_gate()
    else:
        result_table, matrix_report = run_robustness_matrix(
            n_candidates=cli_args.candidates, final_epochs=cli_args.final_epochs
        )
        if cli_args.no_save:
            print("\n" + result_table.render())
        else:
            print_and_save(result_table, "robustness_matrix")
            RESULTS_DIR.mkdir(parents=True, exist_ok=True)
            out = RESULTS_DIR / "robustness_matrix.json"
            out.write_text(json.dumps(matrix_report, indent=2) + "\n")
            print(f"matrix JSON written to {out}")
