"""Throughput of the proxy-evaluation engine (serial vs parallel vs cached).

The early-validation proxy R' (Eq. 22) dominates wall-clock in comparator
pre-training and search; the paper amortizes it across eight GPUs.  This
benchmark demonstrates the two fast paths of ``repro.runtime``:

* the **process-pool backend** — candidate evaluations fan out across
  worker processes (here with a synthetic evaluation that sleeps like a
  k-epoch training, so the speedup is visible even on a single-core CI box),
* the **content-addressed score cache** — a warm rerun of the same workload
  answers every evaluation from disk, near-instantly.

Scores must be bitwise identical across all three paths.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import CTSData
from repro.experiments import ResultTable, print_and_save
from repro.runtime import EvalCache, ProxyEvaluator, proxy_fingerprint
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import Task

N_CANDIDATES = 16
WORKERS = 4
# Latency of one simulated k-epoch proxy training.
SYNTHETIC_SECONDS = 0.2

TINY_HYPER = HyperSpace(
    num_blocks=(1, 2), num_nodes=(3, 4), hidden_dims=(8, 16), output_dims=(8, 16),
    output_modes=(0, 1), dropout=(0, 1),
)


def synthetic_measure(arch_hyper, task, config):
    """Stand-in for ``measure_arch_hyper``: sleeps like a short training run
    and returns a deterministic per-candidate score.

    Module-level so the process-pool backend can pickle it.
    """
    time.sleep(SYNTHETIC_SECONDS)
    digest = proxy_fingerprint(arch_hyper, task, config)
    return int(digest[:12], 16) / float(0xFFFFFFFFFFFF)


def _toy_task() -> Task:
    rng = np.random.default_rng(0)
    values = rng.normal(10, 2, size=(4, 200, 1)).astype(np.float32)
    adjacency = np.ones((4, 4), dtype=np.float32)
    return Task(CTSData("bench-proxy", values, adjacency, "test"), p=6, q=3)


def run_throughput(cache_dir):
    task = _toy_task()
    space = JointSearchSpace(hyper_space=TINY_HYPER)
    candidates = space.sample_batch(N_CANDIDATES, np.random.default_rng(0))

    def timed(evaluator):
        start = time.perf_counter()
        scores = evaluator.evaluate_many(candidates, task)
        return scores, time.perf_counter() - start

    serial = ProxyEvaluator(workers=1, cache=None, eval_fn=synthetic_measure)
    serial_scores, serial_seconds = timed(serial)

    parallel = ProxyEvaluator(workers=WORKERS, cache=None, eval_fn=synthetic_measure)
    parallel_scores, parallel_seconds = timed(parallel)
    assert parallel_scores == serial_scores  # bitwise across backends
    speedup = serial_seconds / parallel_seconds

    cache = EvalCache(cache_dir)
    cold = ProxyEvaluator(workers=WORKERS, cache=cache, eval_fn=synthetic_measure)
    cold_scores, cold_seconds = timed(cold)
    warm = ProxyEvaluator(workers=WORKERS, cache=cache, eval_fn=synthetic_measure)
    warm_scores, warm_seconds = timed(warm)
    assert warm_scores == cold_scores == serial_scores  # bitwise through cache

    table = ResultTable(title="Proxy-evaluation engine throughput")
    row = f"{N_CANDIDATES} evals x {SYNTHETIC_SECONDS:.2f}s"
    table.add(row, "serial", "value", f"{serial_seconds:.2f}s")
    table.add(row, f"parallel (x{WORKERS})", "value", f"{parallel_seconds:.2f}s")
    table.add(row, "speedup", "value", f"{speedup:.2f}x")
    table.add(row, "cold cache", "value",
              f"{cold_seconds:.2f}s ({cold.stats.hits} hits/{cold.stats.misses} misses)")
    table.add(row, "warm cache", "value",
              f"{warm_seconds:.3f}s ({warm.stats.hits} hits/{warm.stats.misses} misses)")
    return table, speedup, serial_seconds, warm_seconds, warm.stats


def test_proxy_throughput(benchmark, tmp_path):
    table, speedup, serial_seconds, warm_seconds, warm_stats = benchmark.pedantic(
        run_throughput, args=(tmp_path,), iterations=1, rounds=1
    )
    print_and_save(table, "proxy_throughput")
    assert speedup >= 2.0  # 4 workers must at least halve the wall-clock
    assert warm_stats.hits == N_CANDIDATES  # warm rerun is all cache hits
    assert warm_stats.misses == 0
    assert warm_seconds < serial_seconds / 10  # the warm path is near-instant


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        table, speedup, serial_seconds, warm_seconds, warm_stats = run_throughput(tmp)
        print_and_save(table, "proxy_throughput")
        print(f"speedup {speedup:.2f}x; warm cache {warm_seconds:.3f}s "
              f"({warm_stats.hits} hits)")
