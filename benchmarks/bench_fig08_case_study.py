"""Figures 8–9 — case study of searched ST-blocks.

The paper prints the optimal arch-hypers found per (dataset, setting) and
observes that (i) the same dataset yields different arch-hypers across
settings, and (ii) datasets from similar domains / of similar scale yield
similar arch-hypers.  We print each searched ST-block and quantify
similarity as Jaccard overlap of (source, target, operator) edges plus
hyperparameter agreement.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ResultTable, make_searcher, print_and_save, target_task

CASES = (
    ("PEMS-BAY", "P-12/Q-12"),
    ("PEMS-BAY", "P-24/Q-24"),
    ("PEMS-BAY", "P-48/Q-48"),
    ("PEMS-BAY", "P-168/Q-1 (3rd)"),
    ("PEMSD7M", "P-12/Q-12"),
    ("Electricity", "P-12/Q-12"),
    ("NYC-TAXI", "P-12/Q-12"),
    ("NYC-BIKE", "P-12/Q-12"),
    ("Los-Loop", "P-12/Q-12"),
    ("SZ-TAXI", "P-12/Q-12"),
)


def _edge_set(arch_hyper):
    return {(e.source, e.target, e.op) for e in arch_hyper.arch.edges}


def arch_similarity(a, b) -> float:
    """Jaccard overlap of labelled edges between two searched ST-blocks."""
    ea, eb = _edge_set(a), _edge_set(b)
    union = ea | eb
    return len(ea & eb) / len(union) if union else 1.0


def run_fig8(scale, artifacts):
    searched = {}
    table = ResultTable(title="Figures 8-9 — searched ST-blocks per task")
    for case_index, (dataset, setting_label) in enumerate(CASES):
        setting = scale.setting(setting_label)
        task = target_task(scale, dataset, setting, seed=0)
        # Each task gets its own search run (fresh candidate sample), as a
        # practitioner would; the comparator then ranks task-dependently.
        searcher = make_searcher(artifacts, scale, seed=100 + case_index)
        preliminary = searcher.embed_task(task)
        top, _ = searcher.rank(preliminary)
        best = top[0]
        searched[(dataset, setting_label)] = best
        table.add(f"{dataset} {setting_label}", "Hyper", "value", str(best.hyper))
        edges = ", ".join(f"{e.source}-[{e.op}]->{e.target}" for e in best.arch.edges)
        table.add(f"{dataset} {setting_label}", "Arch", "value", edges)

    same_domain = arch_similarity(
        searched[("PEMS-BAY", "P-12/Q-12")], searched[("PEMSD7M", "P-12/Q-12")]
    )
    cross_domain = arch_similarity(
        searched[("PEMS-BAY", "P-12/Q-12")], searched[("Electricity", "P-12/Q-12")]
    )
    same_scale = arch_similarity(
        searched[("NYC-TAXI", "P-12/Q-12")], searched[("NYC-BIKE", "P-12/Q-12")]
    )
    table.add("similarity", "Jaccard", "PEMS-BAY vs PEMSD7M (same domain)", f"{same_domain:.2f}")
    table.add("similarity", "Jaccard", "PEMS-BAY vs Electricity (cross domain)", f"{cross_domain:.2f}")
    table.add("similarity", "Jaccard", "NYC-TAXI vs NYC-BIKE (same scale)", f"{same_scale:.2f}")
    settings_distinct = len(
        {searched[("PEMS-BAY", label)].key() for _, label in CASES[:4]}
    )
    table.add("similarity", "count", "distinct PEMS-BAY arch-hypers over settings",
              str(settings_distinct))
    return table


def test_fig08_case_study(benchmark, scale, artifacts_full):
    table = benchmark.pedantic(
        run_fig8, args=(scale, artifacts_full), iterations=1, rounds=1
    )
    print_and_save(table, "fig08_case_study")
