"""Design-choice ablation — comparator-guided EA vs. random selection.

Given one measured candidate pool, compare the regret (true-error gap to the
pool optimum) of (a) the top-K chosen by T-AHC-guided Round-Robin ranking
versus (b) K randomly chosen candidates.  Shape to hold: the comparator
chooses no worse (typically better) than random.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ResultTable, make_searcher, print_and_save, target_task
from repro.metrics import pairwise_accuracy, top_k_regret
from repro.search import round_robin_top_k
from repro.tasks import ProxyConfig, measure_arch_hyper

POOL_SIZE = 10
TOP_K = 3
RANDOM_TRIALS = 20


def run_search_ablation(scale, artifacts):
    task = target_task(scale, "SZ-TAXI", scale.setting("P-12/Q-12"), seed=0)
    rng = np.random.default_rng(0)
    pool = artifacts.space.sample_batch(POOL_SIZE, rng)
    truth = np.array(
        [
            measure_arch_hyper(
                ah, task, ProxyConfig(epochs=scale.proxy_epochs, batch_size=scale.batch_size)
            )
            for ah in pool
        ]
    )
    searcher = make_searcher(artifacts, scale)
    preliminary = searcher.embed_task(task)
    wins = artifacts.model.predict_wins(preliminary, pool, artifacts.space.hyper_space)
    chosen = round_robin_top_k(wins, TOP_K)
    comparator_regret = top_k_regret(chosen, truth)
    comparator_accuracy = pairwise_accuracy(wins, truth)
    random_regrets = [
        top_k_regret(rng.choice(POOL_SIZE, TOP_K, replace=False), truth)
        for _ in range(RANDOM_TRIALS)
    ]

    table = ResultTable(title="Ablation — comparator-guided vs random selection")
    table.add("SZ-TAXI P-12/Q-12", "regret", "T-AHC top-3", f"{comparator_regret:.4f}")
    table.add("SZ-TAXI P-12/Q-12", "regret", "random top-3 (mean)",
              f"{np.mean(random_regrets):.4f}")
    table.add("SZ-TAXI P-12/Q-12", "pairwise accuracy", "T-AHC",
              f"{comparator_accuracy:.3f}")
    return table, comparator_regret, float(np.mean(random_regrets))


def test_ablation_search_quality(benchmark, scale, artifacts_full):
    table, ours, random_mean = benchmark.pedantic(
        run_search_ablation, args=(scale, artifacts_full), iterations=1, rounds=1
    )
    print_and_save(table, "ablation_search")
    # Allow slack: at TINY scale the comparator is weak, but it must not be
    # dramatically worse than chance.
    assert ours <= random_mean + 0.5
