"""Table 7 — performance of P-48/Q-48 (long-horizon) multi-step forecasting."""

from perf_common import run_performance_table

from repro.experiments import print_and_save


def test_table07_perf_p48(benchmark, scale, artifacts_full):
    table = benchmark.pedantic(
        run_performance_table,
        args=(scale, artifacts_full, "P-48/Q-48", "Table 7 — P-48/Q-48 forecasting"),
        iterations=1,
        rounds=1,
    )
    print_and_save(table, "table07_perf_p48")
