"""Design-choice ablation — fidelity of the early-validation proxy (Eq. 22).

The paper trains comparator labels with only k=5 epochs and claims the
resulting ranking approximates the fully-trained ranking well.  We measure
Spearman's rank correlation between R'(k=1 epoch) and a longer-trained
reference over a pool of arch-hypers; the shape to hold is a clearly
positive correlation.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ResultTable, print_and_save, target_task
from repro.metrics import spearman
from repro.space import JointSearchSpace
from repro.tasks import ProxyConfig, measure_arch_hyper

POOL_SIZE = 8
REFERENCE_EPOCHS = 4


def run_proxy_ablation(scale):
    space = JointSearchSpace(hyper_space=scale.hyper_space)
    pool = space.sample_batch(POOL_SIZE, np.random.default_rng(0))
    task = target_task(scale, "SZ-TAXI", scale.setting("P-12/Q-12"), seed=0)
    quick = np.array(
        [
            measure_arch_hyper(ah, task, ProxyConfig(epochs=1, batch_size=scale.batch_size))
            for ah in pool
        ]
    )
    reference = np.array(
        [
            measure_arch_hyper(
                ah, task, ProxyConfig(epochs=REFERENCE_EPOCHS, batch_size=scale.batch_size)
            )
            for ah in pool
        ]
    )
    rho = spearman(quick, reference)
    table = ResultTable(title="Ablation — early-validation proxy fidelity")
    table.add("SZ-TAXI P-12/Q-12", "Spearman(R'_1, R'_ref)", "value", f"{rho:.3f}")
    table.add("SZ-TAXI P-12/Q-12", "pool size", "value", str(POOL_SIZE))
    return table, rho


def test_ablation_proxy_fidelity(benchmark, scale):
    table, rho = benchmark.pedantic(run_proxy_ablation, args=(scale,), iterations=1, rounds=1)
    print_and_save(table, "ablation_proxy")
    assert rho > 0.0  # early validation must carry ranking signal
