"""Design-choice ablation — proxy fidelity and the successive-halving ladder.

The paper trains comparator labels with only k epochs of the
early-validation proxy R' (Eq. 22) and claims the resulting ranking
approximates the fully-trained ranking well.  This benchmark measures two
things over one pool of arch-hypers on SZ-TAXI:

* **flat fidelity** (the original ablation): Spearman's rank correlation
  between a 1-epoch proxy and the full-fidelity reference — the shape to
  hold is a clearly positive correlation;
* **the successive-halving ladder** (``docs/fidelity.md``): the same pool
  through ``FidelityScheduler`` with warm-resumed promotions.  The headline
  claim is **>= 3x fewer total proxy epochs** than the flat full-fidelity
  sweep while the induced ranking is at comparator-label quality "within
  noise" — operationalized as (a) every full-fidelity survivor's score is
  *bitwise identical* to its flat reference score (under the default
  ``survivors`` label policy these are exactly the comparator labels, so
  label quality is exactly flat quality), and (b) the full-pool ranking
  correlates with the reference at least as well as the equally-cheap
  1-epoch flat proxy, minus a noise tolerance.

Results are human-readable at ``benchmarks/results/ablation_proxy.txt``
and machine-readable JSON at ``benchmarks/results/ablation_proxy.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_ablation_proxy.py           # full run
    PYTHONPATH=src python benchmarks/bench_ablation_proxy.py --check   # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.experiments import SCALES, ResultTable, print_and_save, target_task
from repro.metrics import spearman
from repro.runtime import ProxyEvaluator, parse_fidelity_schedule
from repro.space import JointSearchSpace
from repro.tasks import ProxyConfig

RESULTS_PATH = Path(__file__).parent / "results" / "ablation_proxy.json"

POOL_SIZE = 9
# The bench's own proxy budget: tiny-scale campaigns use proxy_epochs=1,
# where a fidelity ladder is degenerate, so the ablation runs the ladder
# against a deliberately deeper full-fidelity budget.
FULL_EPOCHS = 8
SCHEDULE = "3:3:1"  # rung budgets 1 -> 3 -> 8 epochs
# --check fails when the epoch reduction drops below the headline claim ...
MIN_EPOCH_REDUCTION = 3.0
# ... or the ladder ranks the pool worse than the equally-cheap 1-epoch
# flat proxy by more than this Spearman margin.
QUALITY_NOISE_TOLERANCE = 0.05


def run_proxy_ablation(scale) -> dict:
    space = JointSearchSpace(hyper_space=scale.hyper_space)
    pool = space.sample_batch(POOL_SIZE, np.random.default_rng(0))
    task = target_task(scale, "SZ-TAXI", scale.setting("P-12/Q-12"), seed=0)
    pairs = [(ah, task) for ah in pool]
    config = ProxyConfig(epochs=FULL_EPOCHS, batch_size=scale.batch_size)
    schedule = parse_fidelity_schedule(SCHEDULE)
    # No cache: every epoch below is genuinely trained, so the epoch
    # accounting and the bitwise-equality check cannot be faked by hits.
    evaluator = ProxyEvaluator(workers=1)

    print(f"pool={POOL_SIZE} full={FULL_EPOCHS} epochs schedule={SCHEDULE} "
          f"task={task.name}")
    reference = np.array(evaluator.evaluate_pairs(pairs, config))
    flat_epochs = FULL_EPOCHS * POOL_SIZE
    print(f"  flat full-fidelity sweep: {flat_epochs} epochs")

    quick = np.array(
        evaluator.evaluate_pairs(pairs, ProxyConfig(epochs=1, batch_size=scale.batch_size))
    )
    rho_quick = spearman(quick, reference)
    print(f"  flat 1-epoch proxy: {POOL_SIZE} epochs, "
          f"Spearman vs reference {rho_quick:.3f}")

    with tempfile.TemporaryDirectory(prefix="repro-warm-") as warm_dir:
        result = evaluator.evaluate_rungs(
            pairs, config, schedule=schedule, warm_dir=warm_dir
        )
    sh_scores = np.array(result.scores)
    rho_sh = spearman(sh_scores, reference)
    reduction = flat_epochs / result.epochs_spent
    survivors = [
        index for index, fidelity in enumerate(result.fidelities)
        if fidelity >= FULL_EPOCHS
    ]
    # Under the 'survivors' label policy these scores ARE the comparator
    # labels; warm promotion guarantees they equal the flat reference bitwise.
    survivors_bitwise = all(sh_scores[i] == reference[i] for i in survivors)
    for report in result.rungs:
        print(f"  rung {report.rung}: {report.candidates} candidate(s) at "
              f"{report.epochs} epoch(s), budget {report.epoch_budget}, "
              f"promoted {report.promoted}, culled {report.culled}")
    print(f"  successive halving: {result.epochs_spent} epochs "
          f"({reduction:.2f}x fewer), Spearman vs reference {rho_sh:.3f}, "
          f"{len(survivors)} full-fidelity survivor(s) "
          f"{'bitwise == flat' if survivors_bitwise else 'MISMATCH'}")

    return {
        "benchmark": "ablation_proxy",
        "config": {
            "pool_size": POOL_SIZE,
            "full_epochs": FULL_EPOCHS,
            "schedule": SCHEDULE,
            "batch_size": scale.batch_size,
            "task": task.name,
        },
        "flat": {"epochs": flat_epochs},
        "quick": {"epochs": POOL_SIZE, "spearman_vs_reference": float(rho_quick)},
        "successive_halving": {
            "epochs_spent": result.epochs_spent,
            "epochs_saved": result.epochs_saved,
            "epoch_reduction_vs_flat": float(reduction),
            "spearman_vs_reference": float(rho_sh),
            "fidelities": list(result.fidelities),
            "full_fidelity_survivors": len(survivors),
            "survivor_scores_bitwise_equal_flat": survivors_bitwise,
            "rungs": [
                {
                    "rung": report.rung,
                    "epochs": report.epochs,
                    "candidates": report.candidates,
                    "promoted": report.promoted,
                    "culled": report.culled,
                    "epoch_budget": report.epoch_budget,
                }
                for report in result.rungs
            ],
        },
    }


def check(report: dict) -> list[str]:
    """The --check gate: the headline claims the committed JSON must hold."""
    sh = report["successive_halving"]
    failures = []
    if sh["epoch_reduction_vs_flat"] < MIN_EPOCH_REDUCTION:
        failures.append(
            f"epoch reduction {sh['epoch_reduction_vs_flat']:.2f}x "
            f"< required {MIN_EPOCH_REDUCTION}x"
        )
    if not sh["survivor_scores_bitwise_equal_flat"]:
        failures.append("full-fidelity survivor scores differ from flat reference")
    floor = report["quick"]["spearman_vs_reference"] - QUALITY_NOISE_TOLERANCE
    if sh["spearman_vs_reference"] < floor:
        failures.append(
            f"ladder ranking quality {sh['spearman_vs_reference']:.3f} below "
            f"1-epoch proxy minus noise ({floor:.3f})"
        )
    if sh["spearman_vs_reference"] <= 0.0:
        failures.append("ladder ranking carries no signal (Spearman <= 0)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="rerun the ablation and fail unless the committed headline "
        "claims (>=3x epoch reduction at quality within noise) hold",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="do not write results files"
    )
    args = parser.parse_args()

    report = run_proxy_ablation(SCALES["tiny"])

    if args.check:
        failures = check(report)
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        if not failures:
            print("check passed: >=3x epoch reduction at comparator quality "
                  "within noise")
        return 1 if failures else 0

    sh = report["successive_halving"]
    table = ResultTable(title="Ablation — early-validation proxy fidelity")
    table.add("SZ-TAXI P-12/Q-12", "Spearman(R'_1, R'_ref)", "value",
              f"{report['quick']['spearman_vs_reference']:.3f}")
    table.add("SZ-TAXI P-12/Q-12", "Spearman(R'_SH, R'_ref)", "value",
              f"{sh['spearman_vs_reference']:.3f}")
    table.add("SZ-TAXI P-12/Q-12", "epochs flat / SH", "value",
              f"{report['flat']['epochs']} / {sh['epochs_spent']}")
    table.add("SZ-TAXI P-12/Q-12", "epoch reduction", "value",
              f"{sh['epoch_reduction_vs_flat']:.2f}x")
    table.add("SZ-TAXI P-12/Q-12", "pool size", "value",
              str(report["config"]["pool_size"]))
    if not args.no_save:
        print_and_save(table, "ablation_proxy")
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {RESULTS_PATH}")
    else:
        print(table.render())

    failures = check(report)
    for failure in failures:
        print(f"WARNING: {failure}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
