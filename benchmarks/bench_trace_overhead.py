"""Overhead of the disabled telemetry layer — and its bitwise inertness.

The tracing/metrics contract (``docs/observability.md``): with telemetry
disabled the instrumented hot paths cost one ``None`` check per ``span()``
and nothing per metric that is not updated; with telemetry enabled every
score stays bitwise-identical, because timing is observed but never fed
back into computation.

Benchmarking the pre-instrumentation code is impossible in-tree, so — like
``bench_anomaly_overhead.py`` — we assert the spirit of the <2% budget: the
disabled path must not cost more than a small fraction of the *enabled*
path's full span-emission overhead, with generous noise headroom.  The
service-grade telemetry (span buffer tee, correlation stamping, the
metrics-history sampler thread) is measured the same way: the disabled
path must stay within the same ratio of the fully-enabled service path.
The bitwise half of the contract is asserted exactly: traced and untraced
ranking produce identical win matrices, traced and untraced proxy
evaluation identical scores.

``--check`` runs the whole thing as a CI gate: non-zero exit when a ratio
exceeds :data:`MAX_DISABLED_OVER_ENABLED` (bitwise mismatches already
raise).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.comparator.ahc import AHC
from repro.comparator.scoring import RankingEngine
from repro.experiments import ResultTable, print_and_save
from repro.obs import (
    SpanBuffer,
    buffered_tracer,
    configure_tracing,
    correlation_scope,
    file_tracer,
    global_registry,
    render_dashboard,
    tracer_scope,
)
from repro.space import JointSearchSpace

CANDIDATES = 24
STEPS = 8
WARMUP = 2
REPEATS = 5

# Allowance of the disabled path over the enabled path (ratio < 1 expected;
# the bound only needs to absorb timer noise on a fast workload).
MAX_DISABLED_OVER_ENABLED = 1.10


def _workload():
    space = JointSearchSpace()
    candidates = space.sample_batch(CANDIDATES, np.random.default_rng(0))
    model = AHC(seed=0)
    return space, model, candidates


def _run_steps(space, model, candidates, steps):
    wins = None
    for _ in range(steps):
        # A fresh engine per step keeps the per-step work constant (no
        # embedding cache carrying over between repeats).
        engine = RankingEngine(model, space=space.hyper_space)
        wins = engine.win_matrix(candidates)
    return wins


def time_workload(
    traced: bool, trace_dir: Path, service: bool = False
) -> tuple[float, np.ndarray]:
    """Best-of-``REPEATS`` wall time for the ranking workload.

    ``service=True`` runs it the way a daemon job would: spans teed into a
    bounded :class:`SpanBuffer` under a correlation scope, with the
    metrics-history sampler thread persisting registry snapshots into a
    sqlite registry the whole time.
    """
    from repro.service import MetricsSampler, ServiceDB

    space, model, candidates = _workload()
    tracer = file_tracer(trace_dir / "bench.jsonl") if traced else None
    sampler = None
    corr = contextlib.nullcontext()
    if service:
        tracer = buffered_tracer(SpanBuffer(), base=tracer)
        corr = correlation_scope("bench-job")
        sampler = MetricsSampler(
            ServiceDB(trace_dir / "registry.sqlite"),
            interval=0.05,
            source="bench",
        ).start()
    best = float("inf")
    wins = None
    try:
        with tracer_scope(tracer), corr:
            _run_steps(space, model, candidates, WARMUP)
            for _ in range(REPEATS):
                start = time.perf_counter()
                wins = _run_steps(space, model, candidates, STEPS)
                best = min(best, time.perf_counter() - start)
    finally:
        if sampler is not None:
            sampler.stop()
    if tracer is not None:
        tracer.close()
    if service:
        # The dashboard renders from the same snapshots; exercising it here
        # keeps the gate honest about the whole enabled surface.
        snapshot = global_registry().snapshot()
        page = render_dashboard(
            {"title": "bench", "jobs": {}, "workers": [], "metrics": snapshot,
             "cache": {}, "traces": []}
        )
        assert "<html" in page
    return best, wins


def _cheap_eval(arch_hyper, task, config):
    """Deterministic, instant eval derived from the content fingerprint."""
    from repro.runtime import proxy_fingerprint

    digest = proxy_fingerprint(arch_hyper, task, config)
    return int(digest[:8], 16) / 0xFFFFFFFF + 0.25


def check_bitwise_scores() -> None:
    """Traced and untraced proxy evaluations must agree bitwise."""
    from repro.data import CTSData
    from repro.runtime import ProxyEvaluator
    from repro.tasks import Task

    rng = np.random.default_rng(0)
    values = rng.normal(10, 2, size=(4, 200, 1)).astype(np.float32)
    task = Task(CTSData("bench", values, np.ones((4, 4), dtype=np.float32), "test"), p=6, q=3)
    candidates = JointSearchSpace().sample_batch(4, np.random.default_rng(1))
    plain = ProxyEvaluator(workers=1, cache=None, eval_fn=_cheap_eval).evaluate_many(
        candidates, task
    )
    with tempfile.TemporaryDirectory() as tmp:
        configure_tracing(Path(tmp) / "eval.jsonl")
        try:
            traced = ProxyEvaluator(
                workers=1, cache=None, eval_fn=_cheap_eval
            ).evaluate_many(candidates, task)
        finally:
            configure_tracing(None)
    assert plain == traced, "tracing changed proxy scores"


def run_overhead():
    with tempfile.TemporaryDirectory() as tmp:
        disabled, wins_off = time_workload(traced=False, trace_dir=Path(tmp))
        enabled, wins_on = time_workload(traced=True, trace_dir=Path(tmp))
        service, wins_svc = time_workload(
            traced=True, trace_dir=Path(tmp) / "svc", service=True
        )
    np.testing.assert_array_equal(wins_off, wins_on)
    np.testing.assert_array_equal(wins_off, wins_svc)
    check_bitwise_scores()
    ratio = disabled / enabled
    service_ratio = disabled / service

    table = ResultTable(title="Telemetry overhead (ranking hot path)")
    row = f"{STEPS} win matrices over {CANDIDATES} candidates"
    table.add(row, "telemetry off", "value", f"{disabled * 1e3:.1f}ms")
    table.add(row, "tracing on", "value", f"{enabled * 1e3:.1f}ms")
    table.add(row, "service telemetry on", "value", f"{service * 1e3:.1f}ms")
    table.add(row, "off/on ratio", "value", f"{ratio:.3f}")
    table.add(row, "off/service ratio", "value", f"{service_ratio:.3f}")
    return table, ratio, service_ratio


def test_trace_overhead(benchmark):
    table, ratio, service_ratio = benchmark.pedantic(
        run_overhead, iterations=1, rounds=1
    )
    print_and_save(table, "trace_overhead")
    assert ratio <= MAX_DISABLED_OVER_ENABLED
    assert service_ratio <= MAX_DISABLED_OVER_ENABLED


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero when a ratio exceeds {MAX_DISABLED_OVER_ENABLED}",
    )
    args = parser.parse_args()
    table, ratio, service_ratio = run_overhead()
    print_and_save(table, "trace_overhead")
    print(f"off/on ratio {ratio:.3f}, off/service ratio {service_ratio:.3f}")
    if args.check and max(ratio, service_ratio) > MAX_DISABLED_OVER_ENABLED:
        print(
            f"FAIL: disabled-path ratio exceeds {MAX_DISABLED_OVER_ENABLED}",
            file=sys.stderr,
        )
        sys.exit(1)
