"""Overhead of the disabled telemetry layer — and its bitwise inertness.

The tracing/metrics contract (``docs/observability.md``): with telemetry
disabled the instrumented hot paths cost one ``None`` check per ``span()``
and nothing per metric that is not updated; with telemetry enabled every
score stays bitwise-identical, because timing is observed but never fed
back into computation.

Benchmarking the pre-instrumentation code is impossible in-tree, so — like
``bench_anomaly_overhead.py`` — we assert the spirit of the <2% budget: the
disabled path must not cost more than a small fraction of the *enabled*
path's full span-emission overhead, with generous noise headroom.  The
bitwise half of the contract is asserted exactly: traced and untraced
ranking produce identical win matrices, traced and untraced proxy
evaluation identical scores.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.comparator.ahc import AHC
from repro.comparator.scoring import RankingEngine
from repro.experiments import ResultTable, print_and_save
from repro.obs import configure_tracing, file_tracer, tracer_scope
from repro.space import JointSearchSpace

CANDIDATES = 24
STEPS = 8
WARMUP = 2
REPEATS = 5

# Allowance of the disabled path over the enabled path (ratio < 1 expected;
# the bound only needs to absorb timer noise on a fast workload).
MAX_DISABLED_OVER_ENABLED = 1.10


def _workload():
    space = JointSearchSpace()
    candidates = space.sample_batch(CANDIDATES, np.random.default_rng(0))
    model = AHC(seed=0)
    return space, model, candidates


def _run_steps(space, model, candidates, steps):
    wins = None
    for _ in range(steps):
        # A fresh engine per step keeps the per-step work constant (no
        # embedding cache carrying over between repeats).
        engine = RankingEngine(model, space=space.hyper_space)
        wins = engine.win_matrix(candidates)
    return wins


def time_workload(traced: bool, trace_dir: Path) -> tuple[float, np.ndarray]:
    space, model, candidates = _workload()
    tracer = file_tracer(trace_dir / "bench.jsonl") if traced else None
    best = float("inf")
    wins = None
    with tracer_scope(tracer):
        _run_steps(space, model, candidates, WARMUP)
        for _ in range(REPEATS):
            start = time.perf_counter()
            wins = _run_steps(space, model, candidates, STEPS)
            best = min(best, time.perf_counter() - start)
    if tracer is not None:
        tracer.close()
    return best, wins


def _cheap_eval(arch_hyper, task, config):
    """Deterministic, instant eval derived from the content fingerprint."""
    from repro.runtime import proxy_fingerprint

    digest = proxy_fingerprint(arch_hyper, task, config)
    return int(digest[:8], 16) / 0xFFFFFFFF + 0.25


def check_bitwise_scores() -> None:
    """Traced and untraced proxy evaluations must agree bitwise."""
    from repro.data import CTSData
    from repro.runtime import ProxyEvaluator
    from repro.tasks import Task

    rng = np.random.default_rng(0)
    values = rng.normal(10, 2, size=(4, 200, 1)).astype(np.float32)
    task = Task(CTSData("bench", values, np.ones((4, 4), dtype=np.float32), "test"), p=6, q=3)
    candidates = JointSearchSpace().sample_batch(4, np.random.default_rng(1))
    plain = ProxyEvaluator(workers=1, cache=None, eval_fn=_cheap_eval).evaluate_many(
        candidates, task
    )
    with tempfile.TemporaryDirectory() as tmp:
        configure_tracing(Path(tmp) / "eval.jsonl")
        try:
            traced = ProxyEvaluator(
                workers=1, cache=None, eval_fn=_cheap_eval
            ).evaluate_many(candidates, task)
        finally:
            configure_tracing(None)
    assert plain == traced, "tracing changed proxy scores"


def run_overhead():
    with tempfile.TemporaryDirectory() as tmp:
        disabled, wins_off = time_workload(traced=False, trace_dir=Path(tmp))
        enabled, wins_on = time_workload(traced=True, trace_dir=Path(tmp))
    np.testing.assert_array_equal(wins_off, wins_on)
    check_bitwise_scores()
    ratio = disabled / enabled

    table = ResultTable(title="Telemetry overhead (ranking hot path)")
    row = f"{STEPS} win matrices over {CANDIDATES} candidates"
    table.add(row, "tracing off", "value", f"{disabled * 1e3:.1f}ms")
    table.add(row, "tracing on", "value", f"{enabled * 1e3:.1f}ms")
    table.add(row, "off/on ratio", "value", f"{ratio:.3f}")
    return table, disabled, enabled, ratio


def test_trace_overhead(benchmark):
    table, disabled, enabled, ratio = benchmark.pedantic(
        run_overhead, iterations=1, rounds=1
    )
    print_and_save(table, "trace_overhead")
    assert ratio <= MAX_DISABLED_OVER_ENABLED


if __name__ == "__main__":
    table, disabled, enabled, ratio = run_overhead()
    print_and_save(table, "trace_overhead")
    print(
        f"disabled {disabled * 1e3:.1f}ms, enabled {enabled * 1e3:.1f}ms, "
        f"ratio {ratio:.3f}"
    )
