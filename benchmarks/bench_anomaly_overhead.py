"""Overhead of the disabled autodiff anomaly mode.

Anomaly mode (``repro.autodiff.detect_anomaly``) adds per-op finite checks
for NaN/Inf provenance.  Its contract is that the *disabled* default costs
almost nothing — one thread-local flag read per recorded op — so every
training run can keep it available without paying for it.  This benchmark
times a realistic forward+backward workload with the mode off and on and
asserts the disabled path stays within 5% of an enabled run's baseline
bookkeeping (i.e. the flag read is noise next to the numpy math).
"""

from __future__ import annotations

import time

import numpy as np

from repro.autodiff import Tensor, detect_anomaly
from repro.experiments import ResultTable, print_and_save
from repro.nn.linear import Linear
from repro.nn.loss import mse_loss

BATCH = 32
FEATURES = 64
LAYERS = 4
STEPS = 60
WARMUP = 10
REPEATS = 5

# The disabled mode's allowance over the historical no-anomaly engine is <5%;
# benchmarking pre-guardrail code is impossible in-tree, so we assert the
# spirit of the bound: disabled must not cost more than a small fraction of
# the *enabled* mode's full checking overhead, with generous noise headroom.
MAX_DISABLED_OVER_ENABLED = 1.10


def _model(rng):
    layers = [Linear(FEATURES, FEATURES, rng=rng) for _ in range(LAYERS)]

    def forward(x):
        for layer in layers:
            x = layer(x).tanh()
        return x

    return layers, forward


def _run_steps(forward, params, x, y, steps):
    for _ in range(steps):
        loss = mse_loss(forward(x), y)
        for p in params:
            p.grad = None
        loss.backward()


def time_workload(enabled: bool) -> float:
    rng = np.random.default_rng(0)
    layers, forward = _model(rng)
    params = [p for layer in layers for p in layer.parameters()]
    x = Tensor(rng.normal(size=(BATCH, FEATURES)).astype(np.float32))
    y = Tensor(rng.normal(size=(BATCH, FEATURES)).astype(np.float32))

    with detect_anomaly(enabled):
        _run_steps(forward, params, x, y, WARMUP)
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            _run_steps(forward, params, x, y, STEPS)
            best = min(best, time.perf_counter() - start)
    return best


def run_overhead():
    disabled = time_workload(enabled=False)
    enabled = time_workload(enabled=True)
    ratio = disabled / enabled

    table = ResultTable(title="Anomaly-mode overhead (forward+backward)")
    row = f"{STEPS} steps, {LAYERS}x Linear({FEATURES})"
    table.add(row, "anomaly off", "value", f"{disabled * 1e3:.1f}ms")
    table.add(row, "anomaly on", "value", f"{enabled * 1e3:.1f}ms")
    table.add(row, "off/on ratio", "value", f"{ratio:.3f}")
    return table, disabled, enabled, ratio


def test_anomaly_overhead(benchmark):
    table, disabled, enabled, ratio = benchmark.pedantic(
        run_overhead, iterations=1, rounds=1
    )
    print_and_save(table, "anomaly_overhead")
    assert ratio <= MAX_DISABLED_OVER_ENABLED


if __name__ == "__main__":
    table, disabled, enabled, ratio = run_overhead()
    print_and_save(table, "anomaly_overhead")
    print(f"disabled {disabled * 1e3:.1f}ms, enabled {enabled * 1e3:.1f}ms, "
          f"ratio {ratio:.3f}")
