"""Table 13 — sample-limited performance study (P-24/Q-24).

The paper sweeps the number K_s of arch-hypers sampled for ranking
(600k … 37.5k) and reports accuracy plus search time, with AutoCTS+ and
PDFormer as baselines whose TIME rows are their grid-search cost.  Shapes to
hold: accuracy degrades gracefully as K_s shrinks; search time scales with
K_s; even moderate K_s beats the baselines while being much cheaper.

Our K_s values are the paper's divided by the same constant used everywhere
else at the TINY scale.
"""

from __future__ import annotations

import time

from repro.experiments import (
    ResultTable,
    aggregate_runs,
    print_and_save,
    run_baseline,
    run_zero_shot,
    target_task,
)

# Paper: 600k, 300k, 150k, 75k, 37.5k.  Scaled by the TINY divisor.
KS_SWEEP = (96, 48, 24, 12, 6)
KS_LABELS = {96: "Ks=600k", 48: "Ks=300k", 24: "Ks=150k", 12: "Ks=75k", 6: "Ks=37.5k"}
SETTING = "P-24/Q-24"


def run_table13(scale, artifacts) -> ResultTable:
    table = ResultTable(title="Table 13 — sample-limited study, P-24/Q-24")
    setting = scale.setting(SETTING)
    for dataset in scale.target_datasets:
        metrics = ("MAE", "RMSE") if dataset == "SZ-TAXI" else ("MAE", "RMSE", "MAPE")
        task = target_task(scale, dataset, setting, seed=0)
        for ks in KS_SWEEP:
            start = time.perf_counter()
            result = run_zero_shot(
                artifacts, task, scale, seed=0, initial_samples=ks, top_k=1
            )
            elapsed = time.perf_counter() - start
            column = KS_LABELS[ks]
            for metric in metrics:
                table.add(dataset, metric, column, aggregate_runs([result.best_scores], metric))
            table.add(dataset, "TIME(s)", column, f"{result.timings.search:.1f}")
        # Baselines: AutoCTS+ transfer model and PDFormer, timed end to end
        # (their TIME is hyperparameter grid-search / training cost).
        for name in ("AutoCTS+", "PDFormer"):
            start = time.perf_counter()
            scores = run_baseline(name, task, scale, seed=0)
            elapsed = time.perf_counter() - start
            for metric in metrics:
                table.add(dataset, metric, name, aggregate_runs([scores], metric))
            table.add(dataset, "TIME(s)", name, f"{elapsed:.1f}")
    return table


def test_table13_sample_limited(benchmark, scale, artifacts_full):
    table = benchmark.pedantic(
        run_table13, args=(scale, artifacts_full), iterations=1, rounds=1
    )
    print_and_save(table, "table13_sample_limited")
