"""Figure 7 — runtime of the embedding, ranking, and training phases.

The paper's shape: across all datasets and settings, search time (embedding +
ranking) stays minutes-level and roughly constant, while training time varies
with the dataset; search time is dominated by neither the dataset size nor
the forecasting setting.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ResultTable, print_and_save, run_zero_shot, target_task


def run_fig7(scale, artifacts):
    table = ResultTable(title="Figure 7 — phase runtimes (seconds)")
    ranking_times = []
    for dataset in scale.target_datasets:
        for setting in scale.settings:
            task = target_task(scale, dataset, setting, seed=0)
            # top_k=1: phase-time *shape* is unchanged, CPU cost halves.
            result = run_zero_shot(artifacts, task, scale, seed=0, top_k=1)
            timings = result.timings
            table.add(dataset, setting.label, "embed", f"{timings.embedding:.2f}")
            table.add(dataset, setting.label, "rank", f"{timings.ranking:.2f}")
            table.add(dataset, setting.label, "train", f"{timings.training:.2f}")
            table.add(dataset, setting.label, "search", f"{timings.search:.2f}")
            ranking_times.append(timings.ranking)
    return table, np.array(ranking_times)


def test_fig07_runtime(benchmark, scale, artifacts_full):
    table, ranking_times = benchmark.pedantic(
        run_fig7, args=(scale, artifacts_full), iterations=1, rounds=1
    )
    print_and_save(table, "fig07_runtime")
    # The paper's claim: ranking time is stable across tasks (fixed K_s).
    assert ranking_times.std() < max(1.0, ranking_times.mean())
