"""Table 5 — performance of P-12/Q-12 multi-step forecasting.

AutoCTS++ vs. three automated-transfer baselines (AutoSTG+, AutoCTS,
AutoCTS+) and five manual designs (MTGNN, AGCRN, PDFormer, Autoformer,
FEDformer) on the seven unseen target datasets.  Shape to hold: AutoCTS++
takes most best-cells.
"""

from perf_common import run_performance_table

from repro.experiments import print_and_save


def test_table05_perf_p12(benchmark, scale, artifacts_full):
    table = benchmark.pedantic(
        run_performance_table,
        args=(scale, artifacts_full, "P-12/Q-12", "Table 5 — P-12/Q-12 forecasting"),
        iterations=1,
        rounds=1,
    )
    print_and_save(table, "table05_perf_p12")
