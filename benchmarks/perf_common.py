"""Shared runner for the performance-comparison tables (Tables 5–8).

One table = one forecasting setting; rows are the seven unseen target
datasets; columns are AutoCTS++ plus the eight baselines.  The paper's shape
to reproduce: AutoCTS++ wins most cells because (i) it searches jointly over
architectures *and* hyperparameters and (ii) its zero-shot ranking adapts the
model to each unseen task, while the transfer baselines carry one frozen
model everywhere.

Results are reported as mean±std over ``scale.n_seeds`` runs (the paper uses
five random seeds).
"""

from __future__ import annotations

from repro.baselines import ALL_BASELINES
from repro.experiments import (
    MULTI_STEP_METRICS,
    ResultTable,
    SINGLE_STEP_METRICS,
    aggregate_runs,
    run_baseline,
    run_zero_shot,
    target_task,
)

# SZ-TAXI reports only MAE and RMSE in the paper (no MAPE column).
_NO_MAPE = {"SZ-TAXI"}


def _metrics_for(dataset: str, single_step: bool) -> tuple[str, ...]:
    if single_step:
        return SINGLE_STEP_METRICS
    if dataset in _NO_MAPE:
        return ("MAE", "RMSE")
    return MULTI_STEP_METRICS


def run_performance_table(
    scale,
    artifacts,
    setting_label: str,
    title: str,
    datasets: tuple[str, ...] | None = None,
    baselines: tuple[str, ...] = ALL_BASELINES,
) -> ResultTable:
    setting = scale.setting(setting_label)
    datasets = datasets or scale.target_datasets
    table = ResultTable(title=title)
    for dataset in datasets:
        metrics = _metrics_for(dataset, setting.single_step)
        runs = {name: [] for name in ("AutoCTS++",) + tuple(baselines)}
        for seed in range(scale.n_seeds):
            task = target_task(scale, dataset, setting, seed=seed)
            runs["AutoCTS++"].append(
                run_zero_shot(artifacts, task, scale, seed=seed).best_scores
            )
            for name in baselines:
                runs[name].append(run_baseline(name, task, scale, seed=seed))
        for column, scores in runs.items():
            for metric in metrics:
                table.add(dataset, metric, column, aggregate_runs(scores, metric))
    table.mark_best()
    return table
