"""Table 8 — performance of P-168/Q-1 (3rd) single-step forecasting.

Single-step forecasting is scored with RRSE (lower better) and CORR (higher
better); the setting is unseen at pre-training time.
"""

from perf_common import run_performance_table

from repro.experiments import print_and_save


def test_table08_perf_single_step(benchmark, scale, artifacts_full):
    table = benchmark.pedantic(
        run_performance_table,
        args=(
            scale,
            artifacts_full,
            "P-168/Q-1 (3rd)",
            "Table 8 — P-168/Q-1 (3rd) single-step forecasting",
        ),
        iterations=1,
        rounds=1,
    )
    print_and_save(table, "table08_perf_single_step")
