"""Comparator ranking throughput: encode-once engine vs the legacy pair path.

Ranking N candidates needs the full ordered-pair win matrix — 2·N·(N−1)
comparisons.  The legacy path re-runs the GIN encoder on *both sides of every
pair*; the :class:`~repro.comparator.scoring.RankingEngine` embeds each
candidate exactly once and assembles the pair logits with head-only forwards,
so the encoder cost drops from 2·N·(N−1) forwards to N.  This benchmark
measures both paths on the same comparator and candidate pool and asserts:

* the win matrices are **bitwise identical**,
* the engine encodes exactly N graphs (the legacy path 2·N·(N−1)),
* the engine is at least 5x faster wall-clock at the default N = 300,
* a warm re-ranking (evolution survivors) costs zero encoder forwards.
"""

from __future__ import annotations

import time

import numpy as np

from repro.autodiff import no_grad
from repro.comparator import AHC, RankingEngine
from repro.comparator.ahc import pairwise_win_matrix
from repro.experiments import ResultTable, print_and_save
from repro.space import JointSearchSpace, encode_batch

N_CANDIDATES = 300  # the paper's K_s at reproduction scale
MIN_SPEEDUP = 5.0


def run_rank_throughput(n_candidates: int = N_CANDIDATES):
    space = JointSearchSpace()
    candidates = space.sample_batch(n_candidates, np.random.default_rng(0))
    model = AHC(embed_dim=32, gin_layers=3, hidden_dim=32, seed=0)
    model.eval()

    encodings = encode_batch(candidates)
    model.gin.stats.reset()
    start = time.perf_counter()
    with no_grad():
        legacy_wins = pairwise_win_matrix(model, encodings, n_candidates)
    legacy_seconds = time.perf_counter() - start
    legacy_rows = model.gin.stats.rows

    engine = RankingEngine(model)
    model.gin.stats.reset()
    start = time.perf_counter()
    engine_wins = engine.win_matrix(candidates)
    engine_seconds = time.perf_counter() - start
    engine_rows = model.gin.stats.rows

    np.testing.assert_array_equal(engine_wins, legacy_wins)  # bitwise
    assert engine_rows == n_candidates
    assert legacy_rows == 2 * n_candidates * (n_candidates - 1)

    # Re-ranking the same pool (the evolution-survivor case) is pure cache.
    model.gin.stats.reset()
    start = time.perf_counter()
    warm_wins = engine.win_matrix(candidates)
    warm_seconds = time.perf_counter() - start
    np.testing.assert_array_equal(warm_wins, legacy_wins)
    assert model.gin.stats.rows == 0

    speedup = legacy_seconds / engine_seconds
    table = ResultTable(title="Comparator ranking throughput (win matrix)")
    row = f"rank {n_candidates}"
    table.add(row, "legacy pair path", "value",
              f"{legacy_seconds:.2f}s ({legacy_rows} encoder forwards)")
    table.add(row, "encode-once engine", "value",
              f"{engine_seconds:.2f}s ({engine_rows} encoder forwards)")
    table.add(row, "speedup", "value", f"{speedup:.1f}x")
    table.add(row, "warm re-rank", "value",
              f"{warm_seconds:.2f}s (0 encoder forwards)")
    return table, speedup


def test_rank_throughput(benchmark):
    table, speedup = benchmark.pedantic(
        run_rank_throughput, iterations=1, rounds=1
    )
    print_and_save(table, "rank_throughput")
    assert speedup >= MIN_SPEEDUP


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--candidates", type=int, default=N_CANDIDATES)
    parser.add_argument(
        "--no-save", action="store_true",
        help="skip writing benchmarks/results/ (smoke runs)",
    )
    cli_args = parser.parse_args()
    result_table, measured_speedup = run_rank_throughput(cli_args.candidates)
    if cli_args.no_save:
        print("\n" + result_table.render())
    else:
        print_and_save(result_table, "rank_throughput")
    print(f"speedup {measured_speedup:.1f}x")
    if cli_args.candidates >= N_CANDIDATES:
        assert measured_speedup >= MIN_SPEEDUP
