"""Shared runner for the ablation tables (Tables 9–12).

One table = one forecasting setting; columns are the full AutoCTS++ and its
three ablation variants:

* **w/o TS2Vec** — an MLP replaces TS2Vec as the preliminary task embedder,
* **w/o Set-Transformer** — mean pooling replaces IntraSet/InterSetPool,
* **w/o shared samples** — pre-training uses only per-task random samples.

Shape to hold: the full framework dominates; each ablation degrades.
"""

from __future__ import annotations

from repro.experiments import (
    MULTI_STEP_METRICS,
    ResultTable,
    SINGLE_STEP_METRICS,
    aggregate_runs,
    run_zero_shot,
    target_task,
)

VARIANT_COLUMNS = {
    "full": "AutoCTS++",
    "wo_ts2vec": "w/o TS2Vec",
    "wo_set_transformer": "w/o Set-Transformer",
    "wo_shared": "w/o shared samples",
}

_NO_MAPE = {"SZ-TAXI"}


def run_ablation_table(
    scale,
    artifacts_by_variant: dict,
    setting_label: str,
    title: str,
    datasets: tuple[str, ...] | None = None,
) -> ResultTable:
    setting = scale.setting(setting_label)
    datasets = datasets or scale.target_datasets
    table = ResultTable(title=title)
    for dataset in datasets:
        if setting.single_step:
            metrics = SINGLE_STEP_METRICS
        elif dataset in _NO_MAPE:
            metrics = ("MAE", "RMSE")
        else:
            metrics = MULTI_STEP_METRICS
        for variant, column in VARIANT_COLUMNS.items():
            runs = []
            for seed in range(scale.n_seeds):
                task = target_task(scale, dataset, setting, seed=seed)
                # top_k=1 keeps the CPU budget bounded; all variants get the
                # same (reduced) safety net, so the comparison stays fair.
                result = run_zero_shot(
                    artifacts_by_variant[variant], task, scale, seed=seed, top_k=1
                )
                runs.append(result.best_scores)
            for metric in metrics:
                table.add(dataset, metric, column, aggregate_runs(runs, metric))
    table.mark_best()
    return table
