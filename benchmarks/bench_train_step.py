"""Training-step throughput of the optimized kernel substrate.

Measures real proxy-style training steps (forward + backward + Adam) of a
sampled forecaster on a synthetic CTS task under three kernel
configurations:

* ``reference`` — the pre-optimization paths: per-tap Python conv loops and
  unfused elementwise chains (``$REPRO_REFERENCE_KERNELS``), no pooling,
* ``optimized`` — im2col single-gemm convolutions + fused kernels, pooling
  off,
* ``pooled``    — optimized kernels with the generational buffer pool
  recycling forward/gradient buffers across steps.

All three run the same batches from the same seeds; ``pooled`` final
parameters are asserted bitwise-identical to ``optimized`` (the guarantee
that keeps ``buffer_pool`` out of eval-cache fingerprints).  A separate
profiled run collects per-kernel timings via the ``repro.obs.profile``
hooks.  Results are machine-readable JSON at
``benchmarks/results/train_step.json``:

* a ``default``-size section (the headline speedup numbers), and
* a ``tiny``-size section used as the CI regression baseline —
  ``--check`` reruns tiny and fails when the current step time exceeds
  ``CHECK_TOLERANCE`` x the committed baseline on the same mode.

Usage::

    PYTHONPATH=src python benchmarks/bench_train_step.py            # full run
    PYTHONPATH=src python benchmarks/bench_train_step.py --tiny     # tiny only
    PYTHONPATH=src python benchmarks/bench_train_step.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import nullcontext
from pathlib import Path

import numpy as np

from repro.autodiff import Tensor
from repro.autodiff.fused import REFERENCE_KERNELS_ENV
from repro.autodiff.pool import BufferPool
from repro.core.model import build_forecaster
from repro.data import CTSData
from repro.data.windows import iterate_batches
from repro.nn.loss import mae_loss
from repro.obs import MetricsRegistry, metrics_scope
from repro.obs.profile import profile
from repro.optim import Adam, clip_grad_norm
from repro.space import ArchHyper
from repro.space.arch import Architecture, Edge
from repro.space.hyperparams import HyperParameters
from repro.tasks import Task

RESULTS_PATH = Path(__file__).parent / "results" / "train_step.json"
# --check fails when tiny-size step time exceeds baseline x this factor.
CHECK_TOLERANCE = 1.5

SIZES = {
    # Proxy-training-like size: the headline before/after measurement.
    "default": dict(
        nodes=8, t=256, p=12, q=3, batch_size=32, hidden=16, warmup=3, steps=25
    ),
    # CI smoke size: seconds-fast, still exercises every kernel path.
    "tiny": dict(
        nodes=4, t=96, p=8, q=2, batch_size=16, hidden=8, warmup=2, steps=10
    ),
}


def _toy_task(nodes: int, t: int, p: int, q: int) -> Task:
    rng = np.random.default_rng(0)
    steps = np.arange(t)
    values = np.stack(
        [
            np.sin(2 * np.pi * steps / 24 + k) + 0.1 * rng.standard_normal(t)
            for k in range(nodes)
        ]
    )
    data = CTSData(
        "bench-train-step",
        values[..., None].astype(np.float32),
        np.ones((nodes, nodes), np.float32),
        "test",
    )
    return Task(data, p=p, q=q, max_train_windows=128)


def _bench_arch(hidden: int) -> ArchHyper:
    """A fixed conv-heavy arch-hyper: gdcc (gated dilated causal convs) and
    dgcn edges, the substrate the im2col/fused/pooled kernels optimize —
    and the dominant operators in the paper's discovered architectures.
    A fixed DAG (not a random sample) keeps the workload stable across
    benchmark revisions, so committed baselines stay comparable."""
    arch = Architecture(
        num_nodes=4,
        edges=(
            Edge(0, 1, "gdcc"),
            Edge(0, 2, "dgcn"),
            Edge(1, 2, "gdcc"),
            Edge(1, 3, "dgcn"),
            Edge(2, 3, "gdcc"),
        ),
    )
    hyper = HyperParameters(
        num_blocks=2,
        num_nodes=4,
        hidden_dim=hidden,
        output_dim=hidden,
        output_mode=0,
        dropout=0,
    )
    return ArchHyper(arch, hyper)


def _materialize_batches(task: Task, batch_size: int) -> list:
    windows = task.prepared.train
    rng = np.random.default_rng(1)
    return list(iterate_batches(windows, batch_size, rng=rng))


def run_mode(
    name: str,
    task: Task,
    arch_hyper,
    batches: list,
    *,
    reference: bool,
    pool: bool,
    warmup: int,
    steps: int,
) -> dict:
    """Time ``steps`` full training steps; returns timings + final params."""
    previous_env = os.environ.get(REFERENCE_KERNELS_ENV)
    os.environ[REFERENCE_KERNELS_ENV] = "1" if reference else "0"
    try:
        model = build_forecaster(arch_hyper, task.data, task.horizon, seed=0)
        model.train()
        optimizer = Adam(model.parameters(), lr=1e-3, weight_decay=1e-4)
        buffer_pool = BufferPool() if pool else None
        durations = []
        for step in range(warmup + steps):
            x, y = batches[step % len(batches)]
            start = time.perf_counter()
            with buffer_pool.step() if buffer_pool is not None else nullcontext():
                optimizer.zero_grad()
                loss = mae_loss(model(Tensor(x)), y)
                loss.item()
                loss.backward()
                clip_grad_norm(optimizer.parameters, 5.0)
                optimizer.step()
            if step >= warmup:
                durations.append(time.perf_counter() - start)
        # Median, not mean: one scheduler hiccup on a shared box would
        # otherwise dominate a 10-step sample.
        per_step = float(np.median(durations))
        return {
            "mode": name,
            "steps": steps,
            "seconds_per_step": per_step,
            "steps_per_sec": 1.0 / per_step,
            "mean_seconds_per_step": float(np.mean(durations)),
            "pool_stats": buffer_pool.stats() if buffer_pool is not None else None,
            "state": model.state_dict(),
        }
    finally:
        if previous_env is None:
            del os.environ[REFERENCE_KERNELS_ENV]
        else:
            os.environ[REFERENCE_KERNELS_ENV] = previous_env


def profile_section(task: Task, arch_hyper, batches: list, steps: int = 5) -> dict:
    """Per-kernel timings/counts from the observability profiling hooks."""
    registry = MetricsRegistry()
    with metrics_scope(registry), profile(True):
        run_mode(
            "profiled",
            task,
            arch_hyper,
            batches,
            reference=False,
            pool=True,
            warmup=1,
            steps=steps,
        )
    snapshot = registry.snapshot()
    ops = {
        name[len("profile.ops.") :]: snap["value"]
        for name, snap in snapshot.items()
        if name.startswith("profile.ops.")
    }
    forwards = [
        {
            "module": name[len("profile.forward.") : -len(".seconds")],
            "seconds": snap["value"],
        }
        for name, snap in snapshot.items()
        if name.startswith("profile.forward.") and name.endswith(".seconds")
    ]
    forwards.sort(key=lambda entry: entry["seconds"], reverse=True)
    return {"profiled_steps": steps, "ops": ops, "top_forward": forwards[:10]}


def run_size(size: str, with_profile: bool) -> dict:
    spec = SIZES[size]
    task = _toy_task(spec["nodes"], spec["t"], spec["p"], spec["q"])
    arch_hyper = _bench_arch(spec["hidden"])
    batches = _materialize_batches(task, spec["batch_size"])
    common = dict(warmup=spec["warmup"], steps=spec["steps"])

    print(f"[{size}] nodes={spec['nodes']} t={spec['t']} "
          f"batch={spec['batch_size']} hidden={spec['hidden']} "
          f"steps={spec['steps']}")
    modes = {}
    for name, reference, pool in (
        ("reference", True, False),
        ("optimized", False, False),
        ("pooled", False, True),
    ):
        result = run_mode(
            name, task, arch_hyper, batches,
            reference=reference, pool=pool, **common,
        )
        modes[name] = result
        print(
            f"  {name:>9}: {result['steps_per_sec']:8.2f} steps/s "
            f"({result['seconds_per_step'] * 1e3:7.2f} ms/step)"
        )

    bitwise = all(
        np.array_equal(modes["optimized"]["state"][key], modes["pooled"]["state"][key])
        for key in modes["optimized"]["state"]
    )
    if not bitwise:
        raise AssertionError(
            "pooled training diverged bitwise from pool-off training"
        )
    print("  pooled == optimized final parameters: bitwise identical")

    speedup = {
        "optimized_vs_reference": (
            modes["reference"]["seconds_per_step"]
            / modes["optimized"]["seconds_per_step"]
        ),
        "pooled_vs_reference": (
            modes["reference"]["seconds_per_step"]
            / modes["pooled"]["seconds_per_step"]
        ),
        "pooled_vs_optimized": (
            modes["optimized"]["seconds_per_step"]
            / modes["pooled"]["seconds_per_step"]
        ),
    }
    for key, value in speedup.items():
        print(f"  {key}: {value:.2f}x")

    for result in modes.values():
        result.pop("state")  # not JSON material
    section = {
        "config": spec,
        "modes": modes,
        "speedup": speedup,
        "bitwise_pooled_equals_unpooled": bitwise,
    }
    if with_profile:
        section["profile"] = profile_section(task, arch_hyper, batches)
    return section


def check_against_baseline() -> int:
    """CI gate: rerun tiny, fail on >CHECK_TOLERANCE x step-time regression."""
    if not RESULTS_PATH.exists():
        print(f"no committed baseline at {RESULTS_PATH}; run without --check first")
        return 1
    baseline = json.loads(RESULTS_PATH.read_text())
    tiny_baseline = baseline.get("tiny", {}).get("modes", {})
    current = run_size("tiny", with_profile=False)
    failures = []
    for mode in ("optimized", "pooled"):
        base = tiny_baseline.get(mode, {}).get("seconds_per_step")
        if base is None:
            print(f"baseline lacks tiny/{mode}; re-generate {RESULTS_PATH}")
            return 1
        now = current["modes"][mode]["seconds_per_step"]
        ratio = now / base
        verdict = "OK" if ratio <= CHECK_TOLERANCE else "REGRESSION"
        print(
            f"check {mode}: {now * 1e3:.2f} ms/step vs baseline "
            f"{base * 1e3:.2f} ms/step ({ratio:.2f}x, limit "
            f"{CHECK_TOLERANCE}x) {verdict}"
        )
        if ratio > CHECK_TOLERANCE:
            failures.append(mode)
    if failures:
        print(f"step-time regression in: {', '.join(failures)}")
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--tiny", action="store_true", help="run only the tiny CI size"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="rerun tiny and fail on regression vs the committed baseline",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="do not write the results JSON"
    )
    parser.add_argument(
        "--steps", type=int, default=None, help="override timed steps per mode"
    )
    args = parser.parse_args()

    if args.check:
        return check_against_baseline()

    if args.steps is not None:
        for spec in SIZES.values():
            spec["steps"] = args.steps

    report = {"benchmark": "train_step"}
    if not args.tiny:
        report["default"] = run_size("default", with_profile=True)
    report["tiny"] = run_size("tiny", with_profile=False)

    if not args.no_save:
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
