"""Figure 6 — two-dimensional visualization of task embeddings.

The paper embeds subsets of every source dataset under two forecasting
settings with the pre-trained T-AHC and shows that tasks cluster by domain
and by forecasting setting.  Without a display we reproduce the *quantified*
shape: project embeddings to 2-D with PCA, print the coordinates, and check
that the mean intra-group distance (same source dataset + setting) is
smaller than the inter-group distance.
"""

from __future__ import annotations

import numpy as np

from repro.data import get_dataset
from repro.embedding import preliminary_task_embedding
from repro.experiments import ResultTable, print_and_save
from repro.tasks import Task, derive_subset

SOURCES = ("PEMS08", "METR-LA", "ETTh1", "Solar-Energy", "ExchangeRate")
SUBSETS_PER_SOURCE = 3


def _pca_2d(vectors: np.ndarray) -> np.ndarray:
    centered = vectors - vectors.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:2].T


def run_fig6(scale, artifacts):
    rng = np.random.default_rng(0)
    model, embedder = artifacts.model, artifacts.embedder
    labels, vectors = [], []
    for source in SOURCES:
        data = get_dataset(source, seed=0)
        for setting in scale.pretrain_settings:
            for _ in range(SUBSETS_PER_SOURCE):
                subset = derive_subset(data, rng)
                task = Task(subset, *setting)
                preliminary = preliminary_task_embedding(
                    embedder, task.embedding_windows(scale.embedding_windows)
                )
                vectors.append(model.task_embedding_vector(preliminary))
                labels.append(f"{source}|P{setting[0]}/Q{setting[1]}")
    vectors = np.stack(vectors)
    coords = _pca_2d(vectors)

    # Quantify the clustering the paper's figure shows.
    labels_arr = np.array(labels)
    distances = np.linalg.norm(coords[:, None] - coords[None, :], axis=-1)
    same = labels_arr[:, None] == labels_arr[None, :]
    off_diag = ~np.eye(len(labels), dtype=bool)
    intra = distances[same & off_diag].mean()
    inter = distances[~same].mean()

    table = ResultTable(title="Figure 6 — task embedding clusters (PCA)")
    for label, (x, y) in zip(labels, coords):
        table.add(label, "coord", "x", f"{x:+.3f}")
        table.add(label, "coord", "y", f"{y:+.3f}")
    table.add("summary", "distance", "intra-group", f"{intra:.3f}")
    table.add("summary", "distance", "inter-group", f"{inter:.3f}")
    table.add("summary", "distance", "ratio", f"{intra / max(inter, 1e-9):.3f}")
    return table, intra, inter


def test_fig06_task_embeddings(benchmark, scale, artifacts_full):
    table, intra, inter = benchmark.pedantic(
        run_fig6, args=(scale, artifacts_full), iterations=1, rounds=1
    )
    print_and_save(table, "fig06_task_embeddings")
    # The paper's claim: same-task subsets cluster together.
    assert intra < inter * 1.5
