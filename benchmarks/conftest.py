"""Shared fixtures for the benchmark suite.

Benchmarks regenerate the paper's tables and figures at the ``TINY`` scale
(see ``repro.experiments.config``): identical code paths to the paper's
pipeline, scaled-down sizes.  The expensive T-AHC pre-training runs once per
variant and is cached on disk under ``benchmarks/.cache``.
"""

from __future__ import annotations

import pytest

from repro.experiments import TINY, pretrain_variant


@pytest.fixture(scope="session")
def scale():
    return TINY


@pytest.fixture(scope="session")
def artifacts_full():
    return pretrain_variant(TINY, "full", seed=0)


@pytest.fixture(scope="session")
def artifacts_by_variant():
    return {
        variant: pretrain_variant(TINY, variant, seed=0)
        for variant in ("full", "wo_ts2vec", "wo_set_transformer", "wo_shared")
    }
