"""Table 11 — ablation study, P-48/Q-48 forecasting."""

from ablation_common import run_ablation_table

from repro.experiments import print_and_save


def test_table11_ablation_p48(benchmark, scale, artifacts_by_variant):
    table = benchmark.pedantic(
        run_ablation_table,
        args=(scale, artifacts_by_variant, "P-48/Q-48", "Table 11 — ablation, P-48/Q-48"),
        iterations=1,
        rounds=1,
    )
    print_and_save(table, "table11_ablation_p48")
