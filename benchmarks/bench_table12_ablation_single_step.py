"""Table 12 — ablation study, P-168/Q-1 (3rd) single-step forecasting."""

from ablation_common import run_ablation_table

from repro.experiments import print_and_save


def test_table12_ablation_single_step(benchmark, scale, artifacts_by_variant):
    table = benchmark.pedantic(
        run_ablation_table,
        args=(
            scale,
            artifacts_by_variant,
            "P-168/Q-1 (3rd)",
            "Table 12 — ablation, P-168/Q-1 (3rd)",
        ),
        iterations=1,
        rounds=1,
    )
    print_and_save(table, "table12_ablation_single_step")
