"""Table 6 — performance of P-24/Q-24 multi-step forecasting.

This setting was *not* used when pre-training T-AHC, so winning here
evidences generalization of the zero-shot ranking to unseen forecasting
settings, not just unseen datasets.
"""

from perf_common import run_performance_table

from repro.experiments import print_and_save


def test_table06_perf_p24(benchmark, scale, artifacts_full):
    table = benchmark.pedantic(
        run_performance_table,
        args=(scale, artifacts_full, "P-24/Q-24", "Table 6 — P-24/Q-24 forecasting"),
        iterations=1,
        rounds=1,
    )
    print_and_save(table, "table06_perf_p24")
