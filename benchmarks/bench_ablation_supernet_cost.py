"""Design-choice ablation — per-task supernet search vs zero-shot ranking.

The paper's efficiency motivation (Section 1/2.3): supernet-based frameworks
(AutoCTS/AutoSTG) re-run an expensive search *from scratch for every new
task*, while AutoCTS++ amortizes one pre-training and answers new tasks in
minutes.  This benchmark times both on the same unseen task.  Shape to hold:
the zero-shot search phase (embed + rank) is much cheaper than a supernet
search, and the gap is what multiplies across many tasks.
"""

from __future__ import annotations

import time

from repro.experiments import ResultTable, make_searcher, print_and_save, target_task
from repro.supernet import SupernetConfig, supernet_search

DATASET = "PEMSD7M"
SETTING = "P-12/Q-12"


def run_supernet_cost(scale, artifacts):
    setting = scale.setting(SETTING)
    task = target_task(scale, DATASET, setting, seed=0)

    start = time.perf_counter()
    supernet_result = supernet_search(
        task,
        SupernetConfig(
            num_nodes=min(scale.hyper_space.num_nodes),
            hidden_dim=min(scale.hyper_space.hidden_dims),
            epochs=scale.final_train_epochs + 2,
            batch_size=scale.batch_size,
        ),
    )
    supernet_seconds = time.perf_counter() - start

    searcher = make_searcher(artifacts, scale, seed=0)
    start = time.perf_counter()
    preliminary = searcher.embed_task(task)
    top, _ = searcher.rank(preliminary)
    zero_shot_seconds = time.perf_counter() - start

    table = ResultTable(title="Ablation — per-task supernet search vs zero-shot ranking")
    row = f"{DATASET} {SETTING}"
    table.add(row, "search seconds", "supernet (per task)", f"{supernet_seconds:.1f}")
    table.add(row, "search seconds", "zero-shot (per task)", f"{zero_shot_seconds:.1f}")
    table.add(row, "search seconds", "speedup", f"{supernet_seconds / max(zero_shot_seconds, 1e-9):.1f}x")
    table.add(row, "derived arch", "supernet", str(supernet_result.architecture))
    table.add(row, "derived arch", "zero-shot best", str(top[0].arch))
    return table, supernet_seconds, zero_shot_seconds


def test_ablation_supernet_cost(benchmark, scale, artifacts_full):
    table, supernet_s, zero_shot_s = benchmark.pedantic(
        run_supernet_cost, args=(scale, artifacts_full), iterations=1, rounds=1
    )
    print_and_save(table, "ablation_supernet_cost")
    assert zero_shot_s < supernet_s  # the paper's efficiency claim
