"""Tests for the baseline forecasting models."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.baselines import (
    AGCRN,
    ALL_BASELINES,
    Autoformer,
    FEDformer,
    MANUAL_BASELINES,
    MTGNN,
    PDFormer,
    TRANSFER_BASELINES,
    build_baseline,
    fixed_arch_hyper,
    series_decomposition,
)
from repro.core import TrainConfig, train_forecaster
from repro.data import CTSData
from repro.space import HyperSpace
from repro.tasks import Task

B, P, N, F, Q = 2, 12, 5, 1, 3
RNG = np.random.default_rng(0)


def _task(t=200, seed=0):
    rng = np.random.default_rng(seed)
    steps = np.arange(t)
    values = np.stack(
        [np.sin(2 * np.pi * steps / 12 + k) + 0.1 * rng.standard_normal(t) for k in range(N)]
    )
    adj = np.eye(N, dtype=np.float32)
    adj[0, 1] = adj[1, 0] = 0.8
    return Task(
        CTSData("toy", values[..., None].astype(np.float32), adj, "test"), p=P, q=Q
    )


def _x():
    return RNG.standard_normal((B, P, N, F)).astype(np.float32)


TINY_HYPER = HyperSpace(
    num_blocks=(1, 2), num_nodes=(3,), hidden_dims=(8,), output_dims=(8,),
    output_modes=(0, 1), dropout=(0, 1),
)


class TestShapes:
    @pytest.mark.parametrize("name", MANUAL_BASELINES)
    def test_manual_baseline_output_shape(self, name):
        model = build_baseline(name, _task(), hidden_dim=8)
        out = model(_x())
        assert out.shape == (B, Q, N, F)

    @pytest.mark.parametrize("name", TRANSFER_BASELINES)
    def test_transfer_baseline_output_shape(self, name):
        model = build_baseline(name, _task(), hyper_space=TINY_HYPER)
        out = model(_x())
        assert out.shape == (B, Q, N, F)

    def test_unknown_baseline_raises(self):
        with pytest.raises(KeyError):
            build_baseline("LSTM9000", _task())

    @pytest.mark.parametrize("name", MANUAL_BASELINES)
    def test_gradients_flow(self, name):
        model = build_baseline(name, _task(), hidden_dim=8)
        model(_x()).sum().backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads

    def test_input_validation(self):
        model = MTGNN(n_nodes=N, n_features=F, horizon=Q, hidden_dim=8)
        with pytest.raises(ValueError):
            model(np.zeros((B, P, N + 1, F), dtype=np.float32))


class TestMechanisms:
    def test_series_decomposition_reconstructs(self):
        x = Tensor(RNG.standard_normal((2, 20, 3)).astype(np.float32))
        seasonal, trend = series_decomposition(x, kernel=5)
        np.testing.assert_allclose(
            seasonal.data + trend.data, x.data, rtol=1e-5, atol=1e-6
        )

    def test_trend_smoother_than_input(self):
        x = Tensor(RNG.standard_normal((1, 50, 1)).astype(np.float32))
        _, trend = series_decomposition(x, kernel=9)
        assert np.abs(np.diff(trend.data[0, :, 0])).mean() < np.abs(
            np.diff(x.data[0, :, 0])
        ).mean()

    def test_fedformer_rejects_wrong_length(self):
        model = FEDformer(n_nodes=N, n_features=F, horizon=Q, input_steps=P, hidden_dim=8)
        with pytest.raises(ValueError):
            model(np.zeros((B, P + 1, N, F), dtype=np.float32))

    def test_pdformer_identity_mask_blocks_cross_node_attention(self):
        model = PDFormer(n_nodes=N, n_features=F, horizon=Q, adjacency=None, hidden_dim=8)
        model.eval()
        x = _x()
        base = model(x).data.copy()
        x2 = x.copy()
        x2[:, :, 0, :] += 10.0
        out = model(x2).data
        np.testing.assert_allclose(out[:, :, 1:, :], base[:, :, 1:, :], rtol=1e-3)

    def test_agcrn_hidden_state_evolves(self):
        model = AGCRN(n_nodes=N, n_features=F, horizon=Q, hidden_dim=8)
        model.eval()
        x = _x()
        x2 = x.copy()
        x2[:, 0] += 5.0  # early input still influences output through the GRU
        assert not np.allclose(model(x).data, model(x2).data)


class TestFixedArchs:
    def test_all_transfer_baselines_defined(self):
        for name in TRANSFER_BASELINES:
            ah = fixed_arch_hyper(name, TINY_HYPER)
            ah.arch.validate()
            assert TINY_HYPER.contains(ah.hyper)

    def test_autostg_plus_has_no_attention(self):
        ah = fixed_arch_hyper("AutoSTG+", TINY_HYPER)
        ops = {e.op for e in ah.arch.edges}
        assert "inf_t" not in ops and "inf_s" not in ops

    def test_autocts_plus_tunes_hyperparameters(self):
        plain = fixed_arch_hyper("AutoCTS", TINY_HYPER)
        joint = fixed_arch_hyper("AutoCTS+", TINY_HYPER)
        assert joint.hyper.hidden_dim >= plain.hyper.hidden_dim

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            fixed_arch_hyper("AutoML")

    def test_deterministic(self):
        assert fixed_arch_hyper("AutoCTS").key() == fixed_arch_hyper("AutoCTS").key()


class TestTrainability:
    @pytest.mark.parametrize("name", ["MTGNN", "AGCRN"])
    def test_baseline_learns_sine(self, name):
        task = _task()
        prepared = task.prepared
        model = build_baseline(name, task, hidden_dim=8)
        result = train_forecaster(
            model, prepared.train, prepared.val,
            TrainConfig(epochs=3, batch_size=32, patience=3),
        )
        assert result.train_losses[-1] < result.train_losses[0]
