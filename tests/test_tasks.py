"""Tests for the task abstraction, enrichment, and the early-validation proxy."""

import numpy as np
import pytest

from repro.data import CTSData, get_dataset
from repro.space import JointSearchSpace, HyperSpace
from repro.tasks import (
    EnrichmentConfig,
    ProxyConfig,
    Task,
    derive_subset,
    enrich_tasks,
    measure_arch_hyper,
    supported_settings,
)

TINY_HYPER = HyperSpace(
    num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,), output_dims=(8,),
    output_modes=(0, 1), dropout=(0, 1),
)


def _toy_data(n=4, t=300, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.normal(10, 2, size=(n, t, 1)).astype(np.float32)
    adj = np.ones((n, n), dtype=np.float32)
    return CTSData("toy", values, adj, "test")


class TestTask:
    def test_name_encodes_setting(self):
        task = Task(_toy_data(), p=12, q=12)
        assert task.name == "toy/P12-Q12(M)"
        assert Task(_toy_data(), p=12, q=3, single_step=True).name.endswith("(S)")

    def test_horizon(self):
        assert Task(_toy_data(), p=12, q=12).horizon == 12
        assert Task(_toy_data(), p=12, q=3, single_step=True).horizon == 1

    def test_rejects_too_short_dataset(self):
        with pytest.raises(ValueError):
            Task(_toy_data(t=50), p=24, q=24)

    def test_rejects_nonpositive_setting(self):
        with pytest.raises(ValueError):
            Task(_toy_data(), p=0, q=12)

    def test_prepared_splits_and_scaling(self):
        task = Task(_toy_data(), p=6, q=6, split_ratio=(6, 2, 2))
        prepared = task.prepared
        assert len(prepared.train) > len(prepared.val)
        # Training windows are standardized (approximately zero mean).
        assert abs(prepared.train.x.mean()) < 0.3

    def test_inverse_recovers_units(self):
        task = Task(_toy_data(), p=6, q=6)
        prepared = task.prepared
        raw = prepared.inverse(prepared.train.y)
        assert 5 < raw.mean() < 15  # original scale had mean 10

    def test_prepared_is_cached(self):
        task = Task(_toy_data(), p=6, q=6)
        assert task.prepared is task.prepared

    def test_embedding_windows_shape(self):
        task = Task(_toy_data(), p=6, q=6)
        windows = task.embedding_windows(max_windows=5)
        assert windows.ndim == 4
        assert windows.shape[1] == 4  # N
        assert windows.shape[2] == 12  # S = P + Q
        assert windows.shape[0] <= 5

    def test_embedding_windows_depend_on_setting(self):
        data = _toy_data()
        w1 = Task(data, p=6, q=6).embedding_windows()
        w2 = Task(data, p=12, q=12).embedding_windows()
        assert w1.shape[2] != w2.shape[2]


class TestEnrichment:
    def test_derive_subset_shrinks(self):
        data = _toy_data(n=8, t=400)
        subset = derive_subset(data, np.random.default_rng(0))
        assert subset.n_series <= data.n_series
        assert subset.n_steps <= data.n_steps
        assert subset.adjacency.shape == (subset.n_series, subset.n_series)

    def test_subset_values_come_from_source(self):
        data = _toy_data(n=4, t=300)
        subset = derive_subset(data, np.random.default_rng(1))
        # Every subset row must appear somewhere in the source rows.
        source_flat = data.values[:, :, 0]
        row = subset.values[0, :, 0]
        matches = [
            np.where((source_flat[i, : data.n_steps - len(row) + 1] == row[0]))[0]
            for i in range(data.n_series)
        ]
        assert any(m.size > 0 for m in matches)

    def test_supported_settings_filters_long_horizons(self):
        data = _toy_data(t=100)
        settings = supported_settings(data, [(6, 6), (48, 48)], min_windows=10)
        assert (6, 6) in settings
        assert (48, 48) not in settings

    def test_enrich_tasks_produces_valid_tasks(self):
        sources = [_toy_data(n=6, t=400, seed=s) for s in range(2)]
        tasks = enrich_tasks(sources, [(6, 6), (12, 12)], n_subsets=4, seed=0)
        assert len(tasks) >= 4
        for task in tasks:
            assert task.data.n_steps >= task.window_span * 3

    def test_enrich_tasks_deterministic(self):
        sources = [_toy_data(n=6, t=400)]
        t1 = enrich_tasks(sources, [(6, 6)], n_subsets=3, seed=5)
        t2 = enrich_tasks(sources, [(6, 6)], n_subsets=3, seed=5)
        assert [t.name for t in t1] == [t.name for t in t2]

    def test_enrich_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            enrich_tasks([], [(6, 6)], n_subsets=1)
        with pytest.raises(ValueError):
            enrich_tasks([_toy_data()], [], n_subsets=1)

    def test_enrichment_config_validation(self):
        with pytest.raises(ValueError):
            EnrichmentConfig(min_fraction_steps=0.0)


class TestProxy:
    def test_proxy_returns_finite_error(self):
        task = Task(_toy_data(t=200), p=6, q=3)
        space = JointSearchSpace(hyper_space=TINY_HYPER)
        ah = space.sample(np.random.default_rng(0))
        score = measure_arch_hyper(ah, task, ProxyConfig(epochs=1, batch_size=32))
        assert np.isfinite(score)
        assert score > 0

    def test_proxy_is_deterministic(self):
        task = Task(_toy_data(t=200), p=6, q=3)
        space = JointSearchSpace(hyper_space=TINY_HYPER)
        ah = space.sample(np.random.default_rng(1))
        config = ProxyConfig(epochs=1, batch_size=32, seed=3)
        assert measure_arch_hyper(ah, task, config) == pytest.approx(
            measure_arch_hyper(ah, task, config)
        )

    def test_real_dataset_smoke(self):
        data = get_dataset("SZ-TAXI", seed=0)
        task = Task(data, p=6, q=3)
        space = JointSearchSpace(hyper_space=TINY_HYPER)
        ah = space.sample(np.random.default_rng(0))
        score = measure_arch_hyper(ah, task, ProxyConfig(epochs=1, batch_size=64))
        assert np.isfinite(score)
