"""Fault-injection suite for the evaluator's retry/timeout/degradation layer.

Faults are injected via module-level eval functions (picklable, so they work
on the process-pool backend) whose state lives in a tempfile counter — the
counter survives process boundaries, letting a fault fire in a pool worker
and the recovery happen in the parent or a fresh worker.

The invariant under test everywhere: injected faults may change stats
counters and wall-clock, but never a returned score.
"""

import os
import time

import numpy as np
import pytest

from repro.data import CTSData
from repro.runtime import (
    EvalFailedError,
    EvalTimeoutError,
    ProxyEvaluator,
    RetryPolicy,
    proxy_fingerprint,
    resolve_retry_policy,
)
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import Task

TINY_HYPER = HyperSpace(
    num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,), output_dims=(8,),
    output_modes=(0, 1), dropout=(0, 1),
)

# Environment plumbing for the injected-fault eval functions: module-level
# functions can't take extra arguments, and pool workers are separate
# processes, so the counter path and fault budget travel via the environment
# (inherited on fork) and the counter itself lives in a file.
FAULT_FILE_ENV = "REPRO_TEST_FAULT_FILE"
FAULT_BUDGET_ENV = "REPRO_TEST_FAULT_BUDGET"


def _toy_task(t=200, seed=0, name="toy"):
    rng = np.random.default_rng(seed)
    values = rng.normal(10, 2, size=(4, t, 1)).astype(np.float32)
    adj = np.ones((4, 4), dtype=np.float32)
    return Task(CTSData(name, values, adj, "test"), p=6, q=3)


def _candidates(count, seed=0):
    space = JointSearchSpace(hyper_space=TINY_HYPER)
    return space.sample_batch(count, np.random.default_rng(seed))


def _bump_fault_counter() -> int:
    """Increment the cross-process fault counter; returns the prior count.

    Must be atomic across processes: after a pool worker hard-crashes, the
    parent's degraded-serial re-run can race a still-alive worker on this
    file.  A naive ``open(path, "w")`` truncates before writing, so a racing
    reader could observe an empty file, read the count as 0, and take a
    crash branch meant for a worker *inside the pytest process itself*
    (killing the whole run).  flock + write-before-truncate closes both the
    lost-update and the torn-read windows.
    """
    import fcntl

    path = os.environ[FAULT_FILE_ENV]
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            count = int(os.read(fd, 64).decode().strip() or 0)
        except ValueError:
            count = 0
        data = str(count + 1).encode()
        os.lseek(fd, 0, os.SEEK_SET)
        os.write(fd, data)
        os.ftruncate(fd, len(data))
    finally:
        os.close(fd)  # releases the lock
    return count


def cheap_eval(arch_hyper, task, config):
    """Deterministic, instant, fault-free reference eval (picklable)."""
    digest = proxy_fingerprint(arch_hyper, task, config)
    return int(digest[:8], 16) / 0xFFFFFFFF + 0.25


def flaky_eval(arch_hyper, task, config):
    """Raises on the first $REPRO_TEST_FAULT_BUDGET calls, then succeeds."""
    count = _bump_fault_counter()
    if count < int(os.environ.get(FAULT_BUDGET_ENV, "1")):
        raise RuntimeError(f"injected fault #{count}")
    return cheap_eval(arch_hyper, task, config)


def crashing_eval(arch_hyper, task, config):
    """Hard-kills the hosting process on the first call (pool poison)."""
    count = _bump_fault_counter()
    if count < int(os.environ.get(FAULT_BUDGET_ENV, "1")):
        os._exit(17)  # simulate a segfaulted/OOM-killed worker
    return cheap_eval(arch_hyper, task, config)


def hanging_eval(arch_hyper, task, config):
    """Hangs well past any test timeout on the first call, then succeeds."""
    count = _bump_fault_counter()
    if count < int(os.environ.get(FAULT_BUDGET_ENV, "1")):
        time.sleep(30)
    return cheap_eval(arch_hyper, task, config)


def always_failing_eval(arch_hyper, task, config):
    raise RuntimeError("permanently broken")


@pytest.fixture
def fault_env(tmp_path, monkeypatch):
    """Point the injected-fault counter at a fresh tempfile."""
    path = tmp_path / "fault-counter"
    monkeypatch.setenv(FAULT_FILE_ENV, str(path))
    monkeypatch.setenv(FAULT_BUDGET_ENV, "1")
    return monkeypatch


def _no_sleep_policy(**kwargs) -> RetryPolicy:
    kwargs.setdefault("backoff_base", 0.0)
    return RetryPolicy(**kwargs)


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.3)  # capped

    def test_jitter_is_deterministic_per_fingerprint(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.5)
        fp = "ab" * 32
        assert policy.delay(0, fp) == policy.delay(0, fp)
        assert policy.delay(0, fp) != policy.delay(1, fp)
        assert policy.delay(0, fp) != policy.delay(0, "cd" * 32)

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0, jitter=0.25)
        for i in range(20):
            delay = policy.delay(0, f"{i:064x}")
            assert 0.75 <= delay <= 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_resolve_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_EVAL_TIMEOUT", raising=False)
        assert resolve_retry_policy() is None
        monkeypatch.setenv("REPRO_MAX_RETRIES", "3")
        policy = resolve_retry_policy()
        assert policy is not None and policy.max_retries == 3
        monkeypatch.setenv("REPRO_EVAL_TIMEOUT", "1.5")
        assert resolve_retry_policy().timeout == 1.5
        # explicit arguments beat the environment
        assert resolve_retry_policy(max_retries=1).max_retries == 1


class TestRetryUntilSuccess:
    def test_serial_retries_through_crashes(self, fault_env):
        fault_env.setenv(FAULT_BUDGET_ENV, "2")
        task = _toy_task()
        candidates = _candidates(3)
        evaluator = ProxyEvaluator(
            workers=1, cache=None, eval_fn=flaky_eval,
            retry_policy=_no_sleep_policy(max_retries=3),
        )
        scores = evaluator.evaluate_many(candidates, task)
        reference = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        assert scores == reference.evaluate_many(candidates, task)
        assert evaluator.stats.retries == 2
        assert evaluator.stats.failures == 0

    def test_pool_retries_through_crashes(self, fault_env):
        fault_env.setenv(FAULT_BUDGET_ENV, "2")
        task = _toy_task()
        candidates = _candidates(4)
        evaluator = ProxyEvaluator(
            workers=2, cache=None, eval_fn=flaky_eval,
            retry_policy=_no_sleep_policy(max_retries=4),
        )
        scores = evaluator.evaluate_many(candidates, task)
        reference = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        assert scores == reference.evaluate_many(candidates, task)
        assert evaluator.stats.retries >= 2
        assert evaluator.stats.failures == 0

    def test_faults_never_change_scores_with_cache(self, fault_env, tmp_path):
        from repro.runtime import EvalCache

        fault_env.setenv(FAULT_BUDGET_ENV, "3")
        task = _toy_task()
        candidates = _candidates(4)
        faulty = ProxyEvaluator(
            workers=1, cache=EvalCache(tmp_path / "cache"), eval_fn=flaky_eval,
            retry_policy=_no_sleep_policy(max_retries=5),
        )
        clean = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        assert faulty.evaluate_many(candidates, task) == clean.evaluate_many(
            candidates, task
        )
        # A warm rerun answers from cache and sees no further faults.
        rerun = ProxyEvaluator(
            workers=1, cache=EvalCache(tmp_path / "cache"), eval_fn=always_failing_eval,
            retry_policy=_no_sleep_policy(max_retries=0),
        )
        assert rerun.evaluate_many(candidates, task) == clean.evaluate_many(
            candidates, task
        )


class TestRetryExhaustion:
    def test_serial_raises_typed_error(self):
        task = _toy_task()
        (ah,) = _candidates(1)
        evaluator = ProxyEvaluator(
            workers=1, cache=None, eval_fn=always_failing_eval,
            retry_policy=_no_sleep_policy(max_retries=2),
        )
        with pytest.raises(EvalFailedError) as excinfo:
            evaluator.evaluate(ah, task)
        assert excinfo.value.attempts == 3  # first try + 2 retries
        assert isinstance(excinfo.value.last_error, RuntimeError)
        assert evaluator.stats.retries == 2
        assert evaluator.stats.failures == 1

    def test_no_policy_fails_fast_with_typed_error(self):
        task = _toy_task()
        (ah,) = _candidates(1)
        evaluator = ProxyEvaluator(workers=1, cache=None, eval_fn=always_failing_eval)
        with pytest.raises(EvalFailedError) as excinfo:
            evaluator.evaluate(ah, task)
        assert excinfo.value.attempts == 1
        assert evaluator.stats.retries == 0

    def test_pool_raises_typed_error(self):
        task = _toy_task()
        candidates = _candidates(2)
        evaluator = ProxyEvaluator(
            workers=2, cache=None, eval_fn=always_failing_eval,
            retry_policy=_no_sleep_policy(max_retries=1),
        )
        with pytest.raises(EvalFailedError):
            evaluator.evaluate_many(candidates, task)


class TestTimeouts:
    def test_serial_timeout_retries_then_succeeds(self, fault_env):
        task = _toy_task()
        (ah,) = _candidates(1)
        evaluator = ProxyEvaluator(
            workers=1, cache=None, eval_fn=hanging_eval,
            retry_policy=_no_sleep_policy(max_retries=2, timeout=0.3),
        )
        score = evaluator.evaluate(ah, task)
        reference = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        assert score == reference.evaluate(ah, task)
        assert evaluator.stats.timeouts == 1
        assert evaluator.stats.retries == 1

    def test_timeout_exhaustion_is_typed(self, fault_env):
        fault_env.setenv(FAULT_BUDGET_ENV, "99")
        task = _toy_task()
        (ah,) = _candidates(1)
        evaluator = ProxyEvaluator(
            workers=1, cache=None, eval_fn=hanging_eval,
            retry_policy=_no_sleep_policy(max_retries=1, timeout=0.2),
        )
        with pytest.raises(EvalFailedError) as excinfo:
            evaluator.evaluate(ah, task)
        assert isinstance(excinfo.value.last_error, EvalTimeoutError)
        assert evaluator.stats.timeouts == 2


class TestPoolDegradation:
    def test_broken_pool_degrades_to_serial(self, fault_env):
        task = _toy_task()
        candidates = _candidates(4)
        evaluator = ProxyEvaluator(
            workers=2, cache=None, eval_fn=crashing_eval,
            retry_policy=_no_sleep_policy(max_retries=2),
        )
        scores = evaluator.evaluate_many(candidates, task)
        reference = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        assert scores == reference.evaluate_many(candidates, task)
        assert evaluator.stats.degradations == 1
        assert evaluator.stats.failures == 0

    def test_degradation_without_policy_still_completes(self, fault_env):
        # A hard worker crash is a *pool* fault, not an evaluation error:
        # recovery must not require a retry policy.
        task = _toy_task()
        candidates = _candidates(3)
        evaluator = ProxyEvaluator(workers=2, cache=None, eval_fn=crashing_eval)
        scores = evaluator.evaluate_many(candidates, task)
        reference = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        assert scores == reference.evaluate_many(candidates, task)
        assert evaluator.stats.degradations == 1


class TestStatsReport:
    def test_report_surfaces_fault_counters(self, fault_env):
        fault_env.setenv(FAULT_BUDGET_ENV, "1")
        task = _toy_task()
        evaluator = ProxyEvaluator(
            workers=1, cache=None, eval_fn=flaky_eval,
            retry_policy=_no_sleep_policy(max_retries=2),
        )
        evaluator.evaluate_many(_candidates(2), task)
        report = evaluator.stats.report()
        assert "1 retries" in report
        assert "timeouts" in report
        assert "pool degradations" in report
        assert evaluator.stats.faults == 1
