"""End-to-end tests of the search service.

Each test boots the real stack — ``ThreadingHTTPServer`` on an ephemeral
port, a worker daemon, a temporary sqlite registry, and an Engine wrapping
tiny synthetic artifacts — and talks to it over actual HTTP.  Covered:

* submit → poll → result for zero-shot ranking, via the queue and the
  synchronous ``POST /rank`` path,
* HTTP rankings bitwise-identical to the same search run through the
  :class:`~repro.service.Engine` directly (the CLI code path),
* cross-tenant dedup: the second submission is served from the registry
  with zero new evaluator calls / encoder forwards, asserted through the
  metrics registry,
* daemon killed mid-job and restarted: the job is recovered and resumes
  from its checkpoint bitwise-identically, without re-running finished
  evaluations,
* malformed payloads as 4xx, never 500s or hangs,
* concurrent clients and daemons with no double-claimed jobs,
* per-job runtime overrides (divergence policy, buffer pooling) beating
  the daemon's environment,
* ``repro submit`` CLI against a live server.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.comparator.pretrain import PretrainHistory
from repro.comparator.tahc import TAHC
from repro.core.health import DivergenceError
from repro.data import CTSData
from repro.embedding import MLPEmbedder
from repro.experiments.config import SCALES
from repro.experiments.harness import PretrainedArtifacts
from repro.obs import global_registry
from repro.runtime.fingerprint import proxy_fingerprint
from repro.service import (
    Daemon,
    Engine,
    RegistryError,
    ServiceAPI,
    ServiceDB,
    build_task,
    task_fingerprint,
)
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks.proxy import SENTINEL_SCORE

TINY_HYPER = HyperSpace(
    num_blocks=(1,), num_nodes=(3,), hidden_dims=(8, 12), output_dims=(8,),
    output_modes=(0, 1), dropout=(0, 1),
)


def cheap_eval(arch_hyper, task, config):
    """Deterministic fingerprint-derived score: fast and content-addressed."""
    digest = proxy_fingerprint(arch_hyper, task, config)
    return int(digest[:8], 16) / 0xFFFFFFFF + 0.25


def diverging_eval(arch_hyper, task, config):
    raise DivergenceError("synthetic divergence")


class InterruptAfter:
    """Raise KeyboardInterrupt after N successful evaluations (dead daemon)."""

    def __init__(self, fn, after):
        self.fn = fn
        self.after = after
        self.calls = 0

    def __call__(self, *args, **kwargs):
        if self.calls >= self.after:
            raise KeyboardInterrupt("injected daemon kill")
        self.calls += 1
        return self.fn(*args, **kwargs)


class CountingEval:
    def __init__(self, fn):
        self.fn = fn
        self.calls = 0
        self.configs = []

    def __call__(self, arch_hyper, task, config):
        self.calls += 1
        self.configs.append(config)
        return self.fn(arch_hyper, task, config)


def _artifacts():
    return PretrainedArtifacts(
        variant="full",
        model=TAHC(
            embed_dim=8, gin_layers=1, hidden_dim=8, preliminary_dim=8,
            task_embed_dim=8, seed=0,
        ),
        embedder=MLPEmbedder(input_dim=1, output_dim=8),
        space=JointSearchSpace(hyper_space=TINY_HYPER),
        sample_sets=[],
        history=PretrainHistory(),
    )


def _task_spec(t=120, seed=0, name="toy"):
    rng = np.random.default_rng(seed)
    values = rng.normal(10, 2, size=(4, t, 1)).astype(np.float32)
    adjacency = np.ones((4, 4), dtype=np.float32)
    return {
        "name": name,
        "values": values.tolist(),
        "adjacency": adjacency.tolist(),
        "p": 6,
        "q": 3,
    }


class Service:
    """One booted stack; close() tears everything down."""

    def __init__(self, tmp_path, eval_fn=None, start_daemon=True):
        self.engine = Engine(
            _artifacts(),
            SCALES["smoke"],
            checkpoint_dir=tmp_path / "ckpt",
            artifact_dir=tmp_path / "artifacts",
            eval_fn=eval_fn,
            cache_enabled=False,
        )
        self.db = ServiceDB(tmp_path / "registry.sqlite")
        self.daemon = Daemon(self.db, self.engine, poll_interval=0.01)
        if start_daemon:
            self.daemon.start()
        self.api = ServiceAPI(self.db, self.engine).start()

    @property
    def address(self):
        return self.api.address

    def close(self):
        self.api.stop()
        self.daemon.stop()

    # ------------------------------------------------------------------
    # HTTP helpers
    # ------------------------------------------------------------------
    def request(self, path, payload=None, tenant=None):
        headers = {"Content-Type": "application/json"}
        if tenant:
            headers["X-Repro-Tenant"] = tenant
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(self.address + path, data=data, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def wait_for(self, job_id, timeout=30.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, body = self.request(f"/jobs/{job_id}")
            assert status == 200
            if body["job"]["status"] in ("done", "failed"):
                return body
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} did not finish within {timeout}s")


@pytest.fixture
def service(tmp_path):
    stack = Service(tmp_path, eval_fn=cheap_eval)
    yield stack
    stack.close()


def _counter_value(snapshot, name):
    entry = snapshot.get(name)
    return entry["value"] if entry else 0


class TestRoutes:
    def test_health_and_metrics(self, service):
        status, body = service.request("/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["engine"] == service.engine.fingerprint
        assert set(body["jobs"]) == {"pending", "running", "done", "failed"}
        status, body = service.request("/metrics")
        assert status == 200
        assert isinstance(body["metrics"], dict)

    def test_unknown_routes_404(self, service):
        assert service.request("/nope")[0] == 404
        assert service.request("/jobs/zzz")[0] == 404
        assert service.request("/results/deadbeef")[0] == 404


class TestRankJob:
    def test_submit_poll_result(self, service):
        status, body = service.request(
            "/jobs", {"kind": "rank", "task": _task_spec(), "options": {"top_k": 2}}
        )
        assert status == 202
        assert body["job"]["status"] == "pending" or body["job"]["status"] == "running"
        final = service.wait_for(body["job"]["id"])
        assert final["job"]["status"] == "done"
        result = final["result"]
        assert result["task"].startswith("toy/")
        assert len(result["candidates"]) == 2
        assert result["comparisons"] > 0
        # The result is also addressable by fingerprint.
        status, by_fp = service.request(f"/results/{body['job']['fingerprint']}")
        assert status == 200
        assert by_fp["result"] == result

    def test_http_rank_bitwise_identical_to_engine_path(self, service, tmp_path):
        spec = _task_spec()
        status, body = service.request(
            "/rank", {"task": spec, "options": {"top_k": 2}}
        )
        assert status == 200 and not body["deduped"]
        # A *fresh* engine over identically-constructed artifacts — the CLI
        # code path — must produce the identical ranking.
        engine = Engine(_artifacts(), SCALES["smoke"], cache_enabled=False)
        assert engine.fingerprint == service.engine.fingerprint
        task = build_task(spec)
        outcome = engine.rank_task(task, task_fingerprint(task), seed=0, top_k=2)
        assert body["result"]["comparisons"] == outcome.comparisons
        # json round-trip normalizes tuples to lists before comparing.
        assert body["result"]["candidates"] == json.loads(
            json.dumps([ah.to_dict() for ah in outcome.candidates])
        )

    def test_sync_rank_dedup_zero_new_encoder_forwards(self, service):
        payload = {"task": _task_spec(), "options": {"top_k": 1}}
        status, first = service.request("/rank", payload, tenant="alice")
        assert status == 200 and not first["deduped"]
        before = global_registry().snapshot()
        status, second = service.request("/rank", payload, tenant="bob")
        after = global_registry().snapshot()
        assert status == 200 and second["deduped"]
        assert second["result"] == first["result"]
        assert second["fingerprint"] == first["fingerprint"]
        # Served from the registry: not a single new encoder forward or
        # comparator score anywhere in the process.
        for metric in ("rank.embed_misses", "rank.pair_scores", "eval.misses"):
            assert _counter_value(after, metric) == _counter_value(before, metric)

    def test_rank_cache_shared_across_distinct_requests(self, service):
        # Same task, different top_k: different fingerprints, but the
        # engine's per-task cache means the second request adds zero
        # encoder forwards for candidates already embedded.
        spec = _task_spec()
        service.request("/rank", {"task": spec, "options": {"top_k": 1}})
        before = _counter_value(global_registry().snapshot(), "rank.embed_hits")
        status, body = service.request("/rank", {"task": spec, "options": {"top_k": 2}})
        assert status == 200 and not body["deduped"]
        after = _counter_value(global_registry().snapshot(), "rank.embed_hits")
        assert after > before  # re-used cached candidate embeddings


class TestTrainJob:
    def test_rank_then_train_artifact(self, service, tmp_path):
        # The intended two-step flow: rank candidates, then queue a train
        # job for the winner and get a persisted forecaster artifact back.
        spec = _task_spec(t=100)
        status, ranked = service.request(
            "/rank", {"task": spec, "options": {"top_k": 1}}
        )
        assert status == 200
        winner = ranked["result"]["candidates"][0]
        status, submitted = service.request(
            "/jobs",
            {
                "kind": "train",
                "task": spec,
                "options": {"arch_hyper": winner, "epochs": 1},
            },
        )
        assert status == 202
        final = service.wait_for(submitted["job"]["id"], timeout=120)
        assert final["job"]["status"] == "done"
        result = final["result"]
        assert np.isfinite(result["test_mae"])
        assert result["arch_hyper"]["hyper"] == winner["hyper"]
        from pathlib import Path

        artifact = Path(result["artifact"])
        assert artifact.is_dir()
        assert (artifact / "model.json").exists()


class TestDedup:
    def test_queued_dedup_across_tenants_zero_new_evals(self, service):
        payload = {
            "kind": "collect",
            "task": _task_spec(),
            "options": {"n_samples": 4},
        }
        status, body = service.request("/jobs", payload, tenant="alice")
        assert status == 202
        final = service.wait_for(body["job"]["id"])
        assert final["job"]["status"] == "done"
        before = global_registry().snapshot()
        status, again = service.request("/jobs", payload, tenant="bob")
        after = global_registry().snapshot()
        assert status == 200 and again["deduped"]
        assert again["job"]["id"] == body["job"]["id"]
        assert again["job"]["tenants"] == ["alice", "bob"]
        assert again["job"]["submissions"] == 2
        # The cached result is inlined in the dedup response, and no new
        # evaluation ran anywhere in the process.
        assert again["result"] == final["result"]
        assert _counter_value(after, "eval.misses") == _counter_value(
            before, "eval.misses"
        )
        assert service.db.counts()["done"] == 1

    def test_different_options_do_not_dedupe(self, service):
        base = {"kind": "collect", "task": _task_spec()}
        _, first = service.request(
            "/jobs", {**base, "options": {"n_samples": 2}}
        )
        _, second = service.request(
            "/jobs", {**base, "options": {"n_samples": 3}}
        )
        assert first["job"]["fingerprint"] != second["job"]["fingerprint"]

    def test_score_inert_runtime_knobs_dedupe(self, service):
        base = {"kind": "collect", "task": _task_spec(), "options": {"n_samples": 2}}
        _, first = service.request(
            "/jobs", {**base, "runtime": {"workers": 1, "max_retries": 2}}
        )
        _, second = service.request(
            "/jobs", {**base, "runtime": {"workers": 4, "buffer_pool": False}}
        )
        assert second["deduped"]
        assert first["job"]["fingerprint"] == second["job"]["fingerprint"]


class TestKillRestart:
    def test_daemon_kill_and_restart_resumes_bitwise(self, tmp_path):
        # Reference: an uninterrupted run of the same job.
        ref = Service(tmp_path / "ref", eval_fn=cheap_eval)
        payload = {
            "kind": "collect",
            "task": _task_spec(),
            "options": {"n_samples": 6},
        }
        _, submitted = ref.request("/jobs", payload)
        reference = ref.wait_for(submitted["job"]["id"])["result"]
        ref.close()

        # Interrupted: the eval function kills the "process" (the worker
        # loop) after 3 evaluations; run the daemon synchronously so the
        # KeyboardInterrupt propagates to us like a real SIGINT would.
        interrupting = InterruptAfter(cheap_eval, after=3)
        crashed = Service(
            tmp_path / "crash", eval_fn=interrupting, start_daemon=False
        )
        _, submitted = crashed.request("/jobs", payload)
        job_id = submitted["job"]["id"]
        with pytest.raises(KeyboardInterrupt):
            crashed.daemon.run_once()
        # The daemon died mid-job: the job is still 'running', with 3
        # scores already flushed to its progress checkpoint.
        assert crashed.db.get_job(job_id)["status"] == "running"
        crashed.api.stop()

        # Restart: a fresh daemon (fresh engine, same artifacts, same
        # registry and checkpoint dir) recovers the orphan and finishes it.
        counting = CountingEval(cheap_eval)
        engine = Engine(
            _artifacts(),
            SCALES["smoke"],
            checkpoint_dir=tmp_path / "crash" / "ckpt",
            eval_fn=counting,
            cache_enabled=False,
        )
        assert engine.fingerprint == crashed.engine.fingerprint
        db = ServiceDB(tmp_path / "crash" / "registry.sqlite")
        daemon = Daemon(db, engine, poll_interval=0.01)
        recovered = db.recover_orphans()
        assert [job["id"] for job in recovered] == [job_id]
        assert daemon.run_once()
        final = db.get_job(job_id)
        assert final["status"] == "done"
        # Only the 3 unfinished evaluations ran; the first 3 were resumed
        # from the checkpoint...
        assert counting.calls == 3
        assert final["metrics"]["eval.resumed"]["value"] == 3
        # ...and the merged result is bitwise-identical to the
        # uninterrupted reference run.
        assert db.get_result(final["fingerprint"]) == reference


class TestFailures:
    @pytest.mark.parametrize(
        "payload",
        [
            {"task": _task_spec()},  # missing kind
            {"kind": "nope", "task": _task_spec()},
            {"kind": "rank"},  # missing task
            {"kind": "rank", "task": {"p": 6, "q": 3}},  # no dataset/values
            {"kind": "rank", "task": {"dataset": "NOT-A-DATASET", "p": 6, "q": 3}},
            {"kind": "rank", "task": {**_task_spec(), "p": "six"}},
            {"kind": "rank", "task": {**_task_spec(), "values": [[["x"]]]}},
            {"kind": "train", "task": _task_spec()},  # no arch_hyper
            {"kind": "rank", "task": _task_spec(), "runtime": {"divergence_policy": "maybe"}},
            [1, 2, 3],  # not an object
        ],
    )
    def test_malformed_payloads_are_4xx(self, service, payload):
        status, body = service.request("/jobs", payload)
        assert status == 400
        assert "error" in body

    def test_invalid_json_is_400(self, service):
        req = urllib.request.Request(
            service.address + "/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_non_finite_series_rejected(self, service):
        # NaN without an imputation policy is a typed 422 naming the fix
        # (see tests/test_robustness.py for the repair path).
        spec = _task_spec()
        spec["values"][0][0][0] = float("nan")
        status, body = service.request("/jobs", {"kind": "rank", "task": spec})
        assert status == 422
        assert "imputation" in body["error"]

    def test_sync_rank_rejects_other_kinds(self, service):
        status, _ = service.request(
            "/rank", {"kind": "collect", "task": _task_spec()}
        )
        assert status == 400

    def test_failed_job_records_error_and_requeues(self, tmp_path):
        stack = Service(tmp_path, eval_fn=diverging_eval)
        try:
            payload = {
                "kind": "collect",
                "task": _task_spec(),
                "options": {"n_samples": 2},
                "runtime": {"divergence_policy": "raise"},
            }
            _, submitted = stack.request("/jobs", payload)
            final = stack.wait_for(submitted["job"]["id"])
            assert final["job"]["status"] == "failed"
            assert "DivergenceError" in final["job"]["error"]
            # A failed job can be requeued over HTTP (and fails again).
            status, body = stack.request(
                f"/jobs/{submitted['job']['id']}/requeue", {}
            )
            assert status == 200
            assert body["job"]["status"] == "pending"
            final = stack.wait_for(submitted["job"]["id"])
            assert final["job"]["status"] == "failed"
            assert final["job"]["attempts"] == 2
        finally:
            stack.close()


class TestDaemonRobustness:
    def test_worker_loop_survives_registry_exceptions(self, tmp_path):
        # A transient RegistryError in the claim cycle (sqlite contention,
        # a lost transition race) must not silently kill the worker while
        # the API keeps accepting jobs.
        stack = Service(tmp_path, eval_fn=cheap_eval)
        try:
            original = stack.db.claim_next
            failures = {"left": 3}

            def flaky_claim(owner):
                if failures["left"] > 0:
                    failures["left"] -= 1
                    raise RegistryError("synthetic contention")
                return original(owner)

            stack.db.claim_next = flaky_claim
            _, submitted = stack.request(
                "/jobs",
                {"kind": "collect", "task": _task_spec(), "options": {"n_samples": 2}},
            )
            final = stack.wait_for(submitted["job"]["id"])
            assert final["job"]["status"] == "done"
            assert failures["left"] == 0  # the loop really did hit the faults
            assert stack.daemon.running
        finally:
            stack.close()

    def test_restarting_daemon_does_not_steal_live_jobs(self, tmp_path):
        # A second `repro serve` on the same registry must not requeue a
        # job a live worker elsewhere is still heartbeating (double
        # execution + a lost running->done race for the first worker).
        db = ServiceDB(tmp_path / "registry.sqlite")
        engine = Engine(_artifacts(), SCALES["smoke"], cache_enabled=False)
        job, _ = db.submit_job("fp-live", "collect", {"task": _task_spec()})
        db.claim_next("live-worker")  # fresh claim == fresh heartbeat
        restarted = Daemon(db, engine, recover_stale_after=30.0)
        assert restarted.recover_once() == []
        assert db.get_job(job["id"])["status"] == "running"
        # Once the heartbeat goes quiet past the threshold it is an orphan.
        db._connection().execute(
            "UPDATE jobs SET updated = updated - 60 WHERE id = ?", (job["id"],)
        )
        recovered = restarted.recover_once()
        assert [j["id"] for j in recovered] == [job["id"]]
        assert db.get_job(job["id"])["status"] == "pending"


class TestEngineRanking:
    def test_concurrent_ranks_match_sequential_reference(self):
        # Daemon rank jobs race synchronous /rank calls on one engine; the
        # engine-level lock must keep every result bitwise-identical to a
        # sequential run on a fresh engine.
        specs = [_task_spec(seed=index, name=f"toy-{index}") for index in range(3)]
        tasks = [build_task(spec) for spec in specs]
        reference_engine = Engine(_artifacts(), SCALES["smoke"], cache_enabled=False)
        reference = {}
        for task in tasks:
            outcome = reference_engine.rank_task(
                task, task_fingerprint(task), seed=0, top_k=2
            )
            reference[task.name] = [ah.to_dict() for ah in outcome.candidates]

        engine = Engine(_artifacts(), SCALES["smoke"], cache_enabled=False)
        results: dict[str, list] = {}
        errors: list[Exception] = []

        def worker(task):
            try:
                outcome = engine.rank_task(
                    task, task_fingerprint(task), seed=0, top_k=2
                )
                candidates = [ah.to_dict() for ah in outcome.candidates]
                previous = results.setdefault(task.name, candidates)
                assert previous == candidates  # repeat ranks agree too
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(task,)) for task in tasks * 2
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert results == reference

    def test_rank_cache_is_bounded_lru(self):
        engine = Engine(
            _artifacts(), SCALES["smoke"], cache_enabled=False, rank_cache_size=2
        )
        for index in range(3):
            task = build_task(_task_spec(seed=index, name=f"toy-{index}"))
            engine.rank_task(task, task_fingerprint(task), seed=0, top_k=1)
        assert len(engine._rank_cache) == 2
        # The most recent two tasks survived, the oldest was evicted.
        newest = build_task(_task_spec(seed=2, name="toy-2"))
        assert task_fingerprint(newest) in engine._rank_cache


class TestConcurrency:
    def test_concurrent_clients_no_double_execution(self, tmp_path):
        stack = Service(tmp_path, eval_fn=cheap_eval)
        # A second daemon on the same registry: claims must not collide.
        second = Daemon(stack.db, stack.engine, poll_interval=0.01).start()
        try:
            specs = [
                {
                    "kind": "collect",
                    "task": _task_spec(seed=index, name=f"toy-{index}"),
                    "options": {"n_samples": 2},
                }
                for index in range(6)
            ]
            results: dict[int, dict] = {}
            errors: list[Exception] = []

            def client(index):
                try:
                    status, body = stack.request("/jobs", specs[index])
                    assert status == 202, body
                    results[index] = stack.wait_for(body["job"]["id"])
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(len(specs))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert len(results) == len(specs)
            for body in results.values():
                assert body["job"]["status"] == "done"
                # Exactly one claim per job: no daemon double-executed it.
                assert body["job"]["attempts"] == 1
                assert len(body["result"]["samples"]) == 2
        finally:
            second.stop()
            stack.close()


class TestRuntimeOverrides:
    def test_per_job_divergence_policy_beats_daemon_env(self, tmp_path, monkeypatch):
        # The daemon's environment says 'raise'; the job says 'sentinel'.
        # The job must win: divergence becomes the deterministic sentinel
        # score instead of failing the job.
        monkeypatch.setenv("REPRO_DIVERGENCE_POLICY", "raise")
        stack = Service(tmp_path, eval_fn=diverging_eval)
        try:
            payload = {
                "kind": "collect",
                "task": _task_spec(),
                "options": {"n_samples": 2},
                "runtime": {"divergence_policy": "sentinel"},
            }
            _, submitted = stack.request("/jobs", payload)
            final = stack.wait_for(submitted["job"]["id"])
            assert final["job"]["status"] == "done"
            assert [s["score"] for s in final["result"]["samples"]] == [
                SENTINEL_SCORE,
                SENTINEL_SCORE,
            ]

            # And with no per-job override, the daemon's env applies.
            payload = {
                "kind": "collect",
                "task": _task_spec(seed=1, name="toy-b"),
                "options": {"n_samples": 2},
            }
            _, submitted = stack.request("/jobs", payload)
            final = stack.wait_for(submitted["job"]["id"])
            assert final["job"]["status"] == "failed"
            assert "DivergenceError" in final["job"]["error"]
        finally:
            stack.close()

    def test_per_job_buffer_pool_threaded_into_proxy_config(self, tmp_path):
        counting = CountingEval(cheap_eval)
        stack = Service(tmp_path, eval_fn=counting)
        try:
            _, submitted = stack.request(
                "/jobs",
                {
                    "kind": "collect",
                    "task": _task_spec(),
                    "options": {"n_samples": 1},
                    "runtime": {"buffer_pool": False},
                },
            )
            stack.wait_for(submitted["job"]["id"])
            assert counting.configs[-1].buffer_pool is False
            _, submitted = stack.request(
                "/jobs",
                {
                    "kind": "collect",
                    "task": _task_spec(seed=2, name="toy-c"),
                    "options": {"n_samples": 1},
                },
            )
            stack.wait_for(submitted["job"]["id"])
            # Unspecified stays tri-state None: resolved against the
            # worker's environment at training time, not frozen here.
            assert counting.configs[-1].buffer_pool is None
        finally:
            stack.close()


class TestTrainConfigTriState:
    """Regression: $REPRO_BUFFER_POOL must be a fallback resolved at use
    time, with an explicit config value winning over the environment."""

    def _ran_with_pool(self, monkeypatch, buffer_pool):
        import repro.core.trainer as trainer_module
        from repro.core import TrainConfig, build_forecaster, train_forecaster
        from repro.tasks import Task

        created = []
        real_pool = trainer_module.BufferPool

        class SpyPool(real_pool):
            def __init__(self, *args, **kwargs):
                created.append(self)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(trainer_module, "BufferPool", SpyPool)
        rng = np.random.default_rng(0)
        values = rng.normal(10, 2, size=(4, 80, 1)).astype(np.float32)
        task = Task(
            CTSData("pool-probe", values, np.ones((4, 4), dtype=np.float32), "test"),
            p=6,
            q=3,
        )
        space = JointSearchSpace(hyper_space=TINY_HYPER)
        ah = space.sample(np.random.default_rng(0))
        model = build_forecaster(ah, task.data, task.horizon, seed=0)
        train_forecaster(
            model,
            task.prepared.train,
            task.prepared.val,
            TrainConfig(epochs=1, batch_size=16, patience=1, buffer_pool=buffer_pool),
        )
        return bool(created)

    def test_explicit_true_beats_env_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BUFFER_POOL", "0")
        assert self._ran_with_pool(monkeypatch, buffer_pool=True)

    def test_default_resolves_env_at_use_time(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BUFFER_POOL", "0")
        assert not self._ran_with_pool(monkeypatch, buffer_pool=None)
        monkeypatch.delenv("REPRO_BUFFER_POOL")
        assert self._ran_with_pool(monkeypatch, buffer_pool=None)

    def test_explicit_false_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BUFFER_POOL", raising=False)
        assert not self._ran_with_pool(monkeypatch, buffer_pool=False)


class TestCLISubmit:
    def test_cli_sync_rank_against_live_server(self, service, capsys):
        from repro.cli import main

        code = main(
            [
                "submit",
                "SZ-TAXI",
                "--sync",
                "--url",
                service.address,
                "--options",
                '{"top_k": 1}',
                "--tenant",
                "cli-user",
            ]
        )
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert not body["deduped"]
        assert len(body["result"]["candidates"]) == 1

    def test_cli_submit_wait_roundtrip(self, service, capsys):
        from repro.cli import main

        code = main(
            [
                "submit",
                "SZ-TAXI",
                "--kind",
                "collect",
                "--url",
                service.address,
                "--options",
                '{"n_samples": 2}',
                "--wait",
                "--poll",
                "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # First line is the submission echo; the rest is the result JSON.
        header, _, rest = out.partition("\n")
        assert "job " in header
        result = json.loads(rest)
        assert len(result["samples"]) == 2
