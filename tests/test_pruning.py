"""Tests for task-adaptive search-space pruning."""

import numpy as np
import pytest

from repro.space import JointSearchSpace
from repro.space.pruning import PruningConfig, prune_space, space_reduction


def _measured(space, count=20, seed=0):
    """Synthetic measurements: smaller hidden dims score better."""
    rng = np.random.default_rng(seed)
    samples = space.sample_batch(count, rng)
    return [(ah, float(ah.hyper.hidden_dim)) for ah in samples]


class TestPruning:
    def test_pruned_space_is_subset(self):
        space = JointSearchSpace()
        pruned = prune_space(space, _measured(space))
        assert set(pruned.operators) <= set(space.operators)
        for key, values in pruned.hyper_space.as_dict().items():
            assert set(values) <= set(space.hyper_space.as_dict()[key])

    def test_pruning_reduces_cardinality(self):
        space = JointSearchSpace()
        pruned = prune_space(space, _measured(space), PruningConfig(quantile=0.3))
        assert space_reduction(space, pruned) > 0.0

    def test_pruned_space_keeps_best_region(self):
        """The best measured hyper values must survive pruning."""
        space = JointSearchSpace()
        measured = _measured(space)
        best = min(measured, key=lambda pair: pair[1])[0]
        pruned = prune_space(space, measured, PruningConfig(quantile=0.5))
        assert best.hyper.hidden_dim in pruned.hyper_space.hidden_dims

    def test_pruned_space_remains_searchable(self):
        space = JointSearchSpace()
        pruned = prune_space(space, _measured(space), PruningConfig(quantile=0.2))
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert pruned.sample(rng).is_searchable()

    def test_sampling_from_pruned_space_works(self):
        space = JointSearchSpace()
        pruned = prune_space(space, _measured(space))
        batch = pruned.sample_batch(5, np.random.default_rng(1))
        assert len(batch) == 5

    def test_rejects_too_few_samples(self):
        space = JointSearchSpace()
        with pytest.raises(ValueError):
            prune_space(space, _measured(space, count=1))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PruningConfig(quantile=0.0)

    def test_quantile_one_keeps_everything_used(self):
        space = JointSearchSpace()
        measured = _measured(space, count=40)
        pruned = prune_space(space, measured, PruningConfig(quantile=1.0))
        used_h = {ah.hyper.hidden_dim for ah, _ in measured}
        assert set(pruned.hyper_space.hidden_dims) == used_h
