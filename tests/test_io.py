"""Tests for model persistence."""

import numpy as np
import pytest

from repro.core import CTSForecaster, build_forecaster
from repro.data import CTSData
from repro.io import load_forecaster, save_forecaster
from repro.space import ArchHyper, Architecture, Edge, HyperParameters


def _arch_hyper():
    arch = Architecture(3, (Edge(0, 1, "gdcc"), Edge(1, 2, "dgcn")))
    return ArchHyper(arch, HyperParameters(1, 3, 8, 8, 0, 0))


def _data(n=4):
    values = np.random.default_rng(0).normal(size=(n, 60, 1)).astype(np.float32)
    return CTSData("toy", values, np.eye(n, dtype=np.float32), "test")


class TestPersistence:
    def test_roundtrip_preserves_predictions(self, tmp_path):
        model = build_forecaster(_arch_hyper(), _data(), horizon=3, seed=1)
        model.eval()
        x = np.random.default_rng(1).normal(size=(2, 6, 4, 1)).astype(np.float32)
        expected = model(x).numpy().copy()
        save_forecaster(model, tmp_path / "m")
        loaded = load_forecaster(tmp_path / "m")
        loaded.eval()
        np.testing.assert_allclose(loaded(x).numpy(), expected, rtol=1e-5)

    def test_roundtrip_preserves_arch_hyper(self, tmp_path):
        model = build_forecaster(_arch_hyper(), _data(), horizon=3)
        save_forecaster(model, tmp_path / "m")
        loaded = load_forecaster(tmp_path / "m")
        assert loaded.arch_hyper.key() == model.arch_hyper.key()

    def test_supports_restored(self, tmp_path):
        model = build_forecaster(_arch_hyper(), _data(), horizon=3)
        save_forecaster(model, tmp_path / "m")
        loaded = load_forecaster(tmp_path / "m")
        assert len(loaded.supports) == len(model.supports)
        np.testing.assert_allclose(loaded.supports[0], model.supports[0])

    def test_model_without_supports(self, tmp_path):
        model = CTSForecaster(_arch_hyper(), n_nodes=4, n_features=1, horizon=2)
        save_forecaster(model, tmp_path / "m")
        loaded = load_forecaster(tmp_path / "m")
        assert loaded.supports == []

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_forecaster(tmp_path / "nothing")

    def test_version_check(self, tmp_path):
        model = CTSForecaster(_arch_hyper(), n_nodes=4, n_features=1, horizon=2)
        path = save_forecaster(model, tmp_path / "m")
        meta = (path / "model.json").read_text().replace('"format_version": 1', '"format_version": 99')
        (path / "model.json").write_text(meta)
        with pytest.raises(ValueError):
            load_forecaster(path)
