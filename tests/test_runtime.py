"""Tests for the runtime layer: ProxyEvaluator backends and the score cache."""

import json
import os

import numpy as np
import pytest

from repro.data import CTSData
from repro.runtime import (
    EvalCache,
    ProxyEvaluator,
    configure_default_evaluator,
    get_default_evaluator,
    proxy_fingerprint,
    resolve_workers,
    set_default_evaluator,
)
from repro.runtime.cache import CACHE_FORMAT_VERSION
from repro.space import HyperSpace, JointSearchSpace
from repro.tasks import ProxyConfig, Task

TINY_HYPER = HyperSpace(
    num_blocks=(1,), num_nodes=(3,), hidden_dims=(8,), output_dims=(8,),
    output_modes=(0, 1), dropout=(0, 1),
)


def _toy_task(t=200, seed=0, name="toy"):
    rng = np.random.default_rng(seed)
    values = rng.normal(10, 2, size=(4, t, 1)).astype(np.float32)
    adj = np.ones((4, 4), dtype=np.float32)
    return Task(CTSData(name, values, adj, "test"), p=6, q=3)


def _candidates(count, seed=0):
    space = JointSearchSpace(hyper_space=TINY_HYPER)
    return space.sample_batch(count, np.random.default_rng(seed))


def cheap_eval(arch_hyper, task, config):
    """A deterministic, instant eval function (module-level: picklable)."""
    digest = proxy_fingerprint(arch_hyper, task, config)
    return int(digest[:8], 16) / 0xFFFFFFFF + 0.25


class TestFingerprint:
    def test_stable_across_calls(self):
        (ah,) = _candidates(1)
        task = _toy_task()
        config = ProxyConfig(epochs=1)
        assert proxy_fingerprint(ah, task, config) == proxy_fingerprint(
            ah, task, config
        )

    def test_sensitive_to_proxy_config(self):
        (ah,) = _candidates(1)
        task = _toy_task()
        assert proxy_fingerprint(ah, task, ProxyConfig(epochs=1)) != proxy_fingerprint(
            ah, task, ProxyConfig(epochs=2)
        )

    def test_sensitive_to_task_data(self):
        (ah,) = _candidates(1)
        config = ProxyConfig(epochs=1)
        assert proxy_fingerprint(ah, _toy_task(seed=0), config) != proxy_fingerprint(
            ah, _toy_task(seed=1), config
        )

    def test_sensitive_to_arch_hyper(self):
        a, b = _candidates(2)
        task = _toy_task()
        config = ProxyConfig(epochs=1)
        assert proxy_fingerprint(a, task, config) != proxy_fingerprint(
            b, task, config
        )


class TestEvalCache:
    def test_roundtrip_is_bitwise(self, tmp_path):
        cache = EvalCache(tmp_path)
        score = 0.1 + 0.2  # a float that doesn't render prettily
        cache.put("ab" + "0" * 62, score)
        assert cache.get("ab" + "0" * 62) == score

    def test_miss_on_absent(self, tmp_path):
        assert EvalCache(tmp_path).get("cd" + "0" * 62) is None

    def test_truncated_entry_discarded(self, tmp_path):
        cache = EvalCache(tmp_path)
        fp = "ef" + "0" * 62
        cache.put(fp, 1.5)
        path = cache.path_for(fp)
        path.write_text(path.read_text()[:10])  # truncate mid-JSON
        assert cache.get(fp) is None
        assert not path.exists()  # bad file removed, not left to fail again

    def test_wrong_version_discarded(self, tmp_path):
        cache = EvalCache(tmp_path)
        fp = "01" + "0" * 62
        path = cache.path_for(fp)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"version": CACHE_FORMAT_VERSION + 1, "score": 2.0}))
        assert cache.get(fp) is None
        assert not path.exists()

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = EvalCache(tmp_path)
        for i in range(5):
            cache.put(f"{i:02d}" + "0" * 62, float(i))
        assert len(cache) == 5
        assert not list(tmp_path.rglob("*.tmp*"))

    def test_clear(self, tmp_path):
        cache = EvalCache(tmp_path)
        cache.put("aa" + "0" * 62, 1.0)
        cache.put("bb" + "0" * 62, 2.0)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestProxyEvaluator:
    def test_serial_matches_direct_measure(self):
        from repro.tasks import measure_arch_hyper

        task = _toy_task()
        candidates = _candidates(2)
        config = ProxyConfig(epochs=1, batch_size=32)
        evaluator = ProxyEvaluator(workers=1, cache=None)
        scores = evaluator.evaluate_many(candidates, task, config)
        direct = [measure_arch_hyper(ah, task, config) for ah in candidates]
        assert scores == direct

    def test_parallel_bitwise_identical_to_serial_real_proxy(self):
        task = _toy_task()
        candidates = _candidates(2)
        config = ProxyConfig(epochs=1, batch_size=32)
        serial = ProxyEvaluator(workers=1, cache=None)
        parallel = ProxyEvaluator(workers=2, cache=None)
        assert serial.evaluate_many(candidates, task, config) == parallel.evaluate_many(
            candidates, task, config
        )

    def test_parallel_bitwise_identical_to_serial_synthetic(self):
        task = _toy_task()
        candidates = _candidates(6)
        serial = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        parallel = ProxyEvaluator(workers=3, cache=None, eval_fn=cheap_eval)
        assert serial.evaluate_many(candidates, task) == parallel.evaluate_many(
            candidates, task
        )

    def test_order_preserved_with_mixed_hits(self, tmp_path):
        task = _toy_task()
        candidates = _candidates(4)
        cache = EvalCache(tmp_path)
        warm = ProxyEvaluator(workers=1, cache=cache, eval_fn=cheap_eval)
        # Warm only half the pool, then score everything: positions must align.
        warm.evaluate_many(candidates[::2], task)
        full = ProxyEvaluator(workers=1, cache=cache, eval_fn=cheap_eval)
        scores = full.evaluate_many(candidates, task)
        reference = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        assert scores == reference.evaluate_many(candidates, task)
        assert full.stats.hits == 2
        assert full.stats.misses == 2

    def test_cache_hit_miss_counters(self, tmp_path):
        task = _toy_task()
        candidates = _candidates(3)
        evaluator = ProxyEvaluator(
            workers=1, cache=EvalCache(tmp_path), eval_fn=cheap_eval
        )
        first = evaluator.evaluate_many(candidates, task)
        assert evaluator.stats.misses == 3
        assert evaluator.stats.hits == 0
        second = evaluator.evaluate_many(candidates, task)
        assert second == first  # warm rerun, bitwise
        assert evaluator.stats.hits == 3
        assert evaluator.stats.misses == 3  # unchanged: no fresh evals
        assert evaluator.stats.evaluations == 3

    def test_cache_invalidated_on_config_change(self, tmp_path):
        task = _toy_task()
        candidates = _candidates(2)
        evaluator = ProxyEvaluator(
            workers=1, cache=EvalCache(tmp_path), eval_fn=cheap_eval
        )
        evaluator.evaluate_many(candidates, task, ProxyConfig(epochs=1))
        evaluator.evaluate_many(candidates, task, ProxyConfig(epochs=2))
        assert evaluator.stats.hits == 0
        assert evaluator.stats.misses == 4

    def test_recovers_from_truncated_cache_entry(self, tmp_path):
        task = _toy_task()
        (ah,) = _candidates(1)
        cache = EvalCache(tmp_path)
        evaluator = ProxyEvaluator(workers=1, cache=cache, eval_fn=cheap_eval)
        expected = evaluator.evaluate(ah, task)
        path = cache.path_for(proxy_fingerprint(ah, task, ProxyConfig()))
        path.write_bytes(path.read_bytes()[:7])  # deliberately truncate
        again = ProxyEvaluator(workers=1, cache=cache, eval_fn=cheap_eval)
        assert again.evaluate(ah, task) == expected  # recomputed, not crashed
        assert again.stats.misses == 1
        # The recompute repaired the cache entry.
        third = ProxyEvaluator(workers=1, cache=cache, eval_fn=cheap_eval)
        assert third.evaluate(ah, task) == expected
        assert third.stats.hits == 1

    def test_stats_report_mentions_counts(self, tmp_path):
        task = _toy_task()
        evaluator = ProxyEvaluator(
            workers=1, cache=EvalCache(tmp_path), eval_fn=cheap_eval
        )
        evaluator.evaluate_many(_candidates(2), task)
        report = evaluator.stats.report()
        assert "2 fresh" in report
        assert "hit rate" in report


class TestWorkerResolution:
    def test_explicit_wins(self):
        assert resolve_workers(4) == 4

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-2) == 1


class TestDefaultEvaluator:
    def teardown_method(self):
        set_default_evaluator(None)

    def test_configure_installs_default(self, tmp_path):
        evaluator = configure_default_evaluator(
            workers=2, cache_enabled=True, cache_dir=tmp_path
        )
        assert get_default_evaluator() is evaluator
        assert evaluator.workers == 2
        assert evaluator.cache is not None

    def test_cache_can_be_disabled(self):
        evaluator = configure_default_evaluator(cache_enabled=False)
        assert evaluator.cache is None

    def test_lazy_default_exists(self):
        set_default_evaluator(None)
        assert get_default_evaluator() is get_default_evaluator()


class TestCallSiteWiring:
    """The four call sites route through an injected evaluator."""

    def test_random_search_uses_evaluator(self, tmp_path):
        from repro.search import random_search

        task = _toy_task()
        space = JointSearchSpace(hyper_space=TINY_HYPER)
        evaluator = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        trace = random_search(task, space, 3, seed=0, evaluator=evaluator)
        assert evaluator.stats.misses == 3
        assert len(trace.scores) == 3
        assert np.isfinite(trace.best_score)

    def test_grid_search_uses_evaluator(self):
        from repro.search import grid_search_hyper

        task = _toy_task()
        (base,) = _candidates(1)
        evaluator = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        trace = grid_search_hyper(base, task, (8,), (8,), evaluator=evaluator)
        assert evaluator.stats.misses == 1
        assert len(trace.candidates) == 1

    def test_collect_task_samples_uses_evaluator(self):
        from repro.comparator import PretrainConfig, collect_task_samples
        from repro.embedding import MLPEmbedder

        tasks = [_toy_task(seed=0, name="a"), _toy_task(seed=1, name="b")]
        space = JointSearchSpace(hyper_space=TINY_HYPER)
        embedder = MLPEmbedder(input_dim=1, output_dim=8)
        config = PretrainConfig(shared_samples=2, random_samples=1)
        evaluator = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        sets = collect_task_samples(
            tasks, space, embedder, config, evaluator=evaluator
        )
        # 2 tasks x (2 shared + 1 random) = 6 evaluations, scores aligned.
        assert evaluator.stats.misses == 6
        assert [len(s.scores) for s in sets] == [3, 3]
        assert all(s.shared_count == 2 for s in sets)
        # Shared arch-hypers are identical across tasks.
        assert [ah.key() for ah in sets[0].arch_hypers[:2]] == [
            ah.key() for ah in sets[1].arch_hypers[:2]
        ]


class TestCrossBackendDeterminism:
    """Property: backend choice and caching never change a score's bits."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        seed=st.integers(0, 10_000),
        count=st.integers(1, 4),
        use_cache=st.booleans(),
    )
    @settings(max_examples=5, deadline=None)
    def test_serial_pool_and_cache_agree_bitwise(
        self, tmp_path_factory, seed, count, use_cache
    ):
        task = _toy_task(seed=seed % 7)
        candidates = _candidates(count, seed=seed)
        pairs = [(ah, task) for ah in candidates]

        serial = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        expected = serial.evaluate_pairs(pairs)

        cache = None
        if use_cache:
            cache = EvalCache(tmp_path_factory.mktemp("xbackend") / "cache")
        pooled = ProxyEvaluator(workers=2, cache=cache, eval_fn=cheap_eval)
        assert pooled.evaluate_pairs(pairs) == expected
        if use_cache:
            # Second pass answers from cache — still bitwise identical.
            rerun = ProxyEvaluator(workers=2, cache=cache, eval_fn=cheap_eval)
            assert rerun.evaluate_pairs(pairs) == expected
            assert rerun.stats.hits == len(pairs)


class TestNoSharedMutableDefaults:
    """Regression: ``config: ProxyConfig = ProxyConfig()`` in a signature is a
    single shared instance born at import time; every signature must use the
    ``None`` sentinel instead and resolve a fresh config per call."""

    def test_signatures_use_none_sentinel(self):
        import inspect

        from repro.search import grid_search_hyper, random_search
        from repro.tasks import full_train_score, measure_arch_hyper

        evaluator = ProxyEvaluator(workers=1, cache=None, eval_fn=cheap_eval)
        callables = [
            evaluator.evaluate,
            evaluator.evaluate_many,
            evaluator.evaluate_pairs,
            measure_arch_hyper,
            full_train_score,
        ]
        for fn in callables:
            default = inspect.signature(fn).parameters["config"].default
            assert default is None, f"{fn.__qualname__} shares a default config"
        for fn in (random_search, grid_search_hyper):
            default = inspect.signature(fn).parameters["proxy"].default
            assert default is None, f"{fn.__qualname__} shares a default config"

    def test_each_call_resolves_a_fresh_config(self):
        seen = []

        def capture_eval(arch_hyper, task, config):
            seen.append(config)
            return 1.0

        task = _toy_task()
        (ah,) = _candidates(1)
        evaluator = ProxyEvaluator(workers=1, cache=None, eval_fn=capture_eval)
        evaluator.evaluate(ah, task)
        evaluator.evaluate(ah, task)
        assert len(seen) == 2
        assert all(isinstance(c, ProxyConfig) for c in seen)
        assert seen[0] is not seen[1]
