"""Tests for optimizers and schedulers."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Linear, Parameter, mse_loss
from repro.optim import Adam, CosineAnnealingLR, SGD, StepLR, clip_grad_norm


def _quadratic_step(optimizer, param):
    """One optimization step on f(w) = ||w||^2."""
    optimizer.zero_grad()
    (param * param).sum().backward()
    optimizer.step()


class TestSGD:
    def test_descends_quadratic(self):
        w = Parameter(np.array([4.0, -2.0]))
        opt = SGD([w], lr=0.1)
        for _ in range(50):
            _quadratic_step(opt, w)
        assert np.abs(w.data).max() < 1e-3

    def test_momentum_accelerates(self):
        w_plain = Parameter(np.array([10.0]))
        w_momentum = Parameter(np.array([10.0]))
        plain, momentum = SGD([w_plain], lr=0.01), SGD([w_momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            _quadratic_step(plain, w_plain)
            _quadratic_step(momentum, w_momentum)
        assert abs(w_momentum.data[0]) < abs(w_plain.data[0])

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (w * 0.0).sum().backward()
        opt.step()
        assert w.data[0] < 1.0


class TestAdam:
    def test_descends_quadratic(self):
        w = Parameter(np.array([3.0, -5.0]))
        opt = Adam([w], lr=0.1)
        for _ in range(200):
            _quadratic_step(opt, w)
        assert np.abs(w.data).max() < 1e-2

    def test_fits_linear_regression(self):
        rng = np.random.default_rng(0)
        true_w = np.array([[2.0, -1.0]])
        x = rng.standard_normal((64, 2))
        y = x @ true_w.T
        model = Linear(2, 1, rng=rng)
        opt = Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = mse_loss(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        np.testing.assert_allclose(model.weight.data, true_w, atol=0.05)

    def test_skips_parameters_without_grad(self):
        w = Parameter(np.array([1.0]))
        unused = Parameter(np.array([5.0]))
        opt = Adam([w, unused], lr=0.1)
        _quadratic_step(opt, w)
        np.testing.assert_array_equal(unused.data, [5.0])

    def test_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        norm = clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-5)

    def test_leaves_small_gradients(self):
        w = Parameter(np.zeros(2))
        w.grad = np.array([0.1, 0.1])
        clip_grad_norm([w], max_norm=5.0)
        np.testing.assert_allclose(w.grad, [0.1, 0.1])


class TestSchedulers:
    def test_step_lr_halves(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_reaches_min(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineAnnealingLR(opt, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_step_lr_rejects_bad_step(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
