"""Tests for forecasting and ranking metrics, incl. hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    ForecastScores,
    corr,
    evaluate_forecast,
    kendall_tau,
    mae,
    mape,
    masked_mae,
    masked_rmse,
    pairwise_accuracy,
    rmse,
    rrse,
    spearman,
    top_k_regret,
)

finite_floats = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)


class TestPointMetrics:
    def test_perfect_prediction_zero_error(self):
        target = np.random.default_rng(0).normal(10, 2, size=(5, 3))
        scores = evaluate_forecast(target.copy(), target)
        assert scores.mae == 0.0
        assert scores.rmse == 0.0
        assert scores.rrse == 0.0

    def test_mae_known_value(self):
        assert mae(np.array([1.0, 3.0]), np.array([2.0, 1.0])) == pytest.approx(1.5)

    def test_rmse_dominates_mae(self):
        rng = np.random.default_rng(0)
        pred, targ = rng.normal(size=50), rng.normal(size=50)
        assert rmse(pred, targ) >= mae(pred, targ)

    def test_mape_masks_small_targets(self):
        pred = np.array([1.0, 5.0])
        targ = np.array([0.0, 4.0])  # zero target masked
        assert mape(pred, targ) == pytest.approx(0.25)

    def test_mape_all_masked_returns_zero(self):
        assert mape(np.ones(3), np.zeros(3)) == 0.0

    def test_rrse_of_mean_predictor_is_one(self):
        targ = np.random.default_rng(0).normal(size=100)
        pred = np.full_like(targ, targ.mean())
        assert rrse(pred, targ) == pytest.approx(1.0, rel=1e-6)

    def test_corr_perfect(self):
        targ = np.random.default_rng(0).normal(size=(40, 3))
        assert corr(2 * targ + 1, targ) == pytest.approx(1.0, abs=1e-6)

    def test_corr_anti(self):
        targ = np.random.default_rng(0).normal(size=(40, 2))
        assert corr(-targ, targ) == pytest.approx(-1.0, abs=1e-6)

    def test_masked_mae_excludes_null_positions(self):
        pred = np.array([1.0, 5.0, 2.0])
        targ = np.array([2.0, 0.0, 2.0])  # middle reading missing
        assert masked_mae(pred, targ) == pytest.approx(0.5)

    def test_masked_mae_all_null_returns_zero(self):
        assert masked_mae(np.ones(3), np.zeros(3)) == 0.0

    def test_masked_rmse_matches_unmasked_when_no_nulls(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(5, 1, size=20)
        targ = rng.normal(5, 1, size=20)
        assert masked_rmse(pred, targ) == pytest.approx(rmse(pred, targ))

    def test_masked_rmse_custom_null_value(self):
        pred = np.array([1.0, 9.0])
        targ = np.array([2.0, -1.0])
        assert masked_rmse(pred, targ, null_value=-1.0) == pytest.approx(1.0)

    def test_evaluate_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_forecast(np.zeros(3), np.zeros(4))

    def test_primary_metric_selection(self):
        scores = ForecastScores(1.0, 2.0, 3.0, 4.0, 5.0)
        assert scores.primary() == 1.0
        assert scores.primary(single_step=True) == 4.0

    @given(hnp.arrays(np.float64, st.integers(2, 30), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_mae_nonnegative_and_symmetric(self, values):
        other = np.zeros_like(values)
        assert mae(values, other) >= 0.0
        assert mae(values, other) == pytest.approx(mae(other, values))

    @given(hnp.arrays(np.float64, st.integers(2, 30), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_rmse_triangle_with_scaling(self, values):
        assert rmse(2 * values, values) == pytest.approx(
            rmse(values, np.zeros_like(values)), rel=1e-9, abs=1e-12
        )


class TestRankMetrics:
    def test_spearman_monotone_transform_invariant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=20)
        assert spearman(a, np.exp(a)) == pytest.approx(1.0)

    def test_spearman_reversed_is_minus_one(self):
        a = np.arange(10.0)
        assert spearman(a, -a) == pytest.approx(-1.0)

    def test_spearman_matches_scipy(self):
        from scipy.stats import spearmanr

        rng = np.random.default_rng(3)
        a, b = rng.normal(size=30), rng.normal(size=30)
        assert spearman(a, b) == pytest.approx(spearmanr(a, b).statistic, abs=1e-9)

    def test_spearman_handles_ties_like_scipy(self):
        from scipy.stats import spearmanr

        a = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 3.0])
        b = np.array([2.0, 1.0, 1.0, 5.0, 4.0, 4.0])
        assert spearman(a, b) == pytest.approx(spearmanr(a, b).statistic, abs=1e-9)

    def test_spearman_rejects_short_input(self):
        with pytest.raises(ValueError):
            spearman(np.array([1.0]), np.array([2.0]))

    def test_kendall_matches_scipy(self):
        from scipy.stats import kendalltau

        rng = np.random.default_rng(5)
        a, b = rng.normal(size=25), rng.normal(size=25)
        assert kendall_tau(a, b) == pytest.approx(kendalltau(a, b).statistic, abs=1e-9)

    @given(
        hnp.arrays(
            np.float64,
            st.integers(3, 20),
            elements=finite_floats,
            unique=True,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_spearman_self_correlation_is_one(self, values):
        assert spearman(values, values) == pytest.approx(1.0)

    @given(
        hnp.arrays(np.float64, st.integers(3, 15), elements=finite_floats, unique=True)
    )
    @settings(max_examples=50, deadline=None)
    def test_spearman_bounded(self, values):
        shuffled = values.copy()
        np.random.default_rng(0).shuffle(shuffled)
        assert -1.0 - 1e-9 <= spearman(values, shuffled) <= 1.0 + 1e-9

    def test_pairwise_accuracy_perfect_comparator(self):
        scores = np.array([0.3, 0.1, 0.5])
        wins = (scores[:, None] < scores[None, :]).astype(int)
        assert pairwise_accuracy(wins, scores) == 1.0

    def test_pairwise_accuracy_inverted_comparator(self):
        scores = np.array([0.3, 0.1, 0.5])
        wins = (scores[:, None] > scores[None, :]).astype(int)
        assert pairwise_accuracy(wins, scores) == 0.0

    def test_top_k_regret_zero_when_best_included(self):
        scores = np.array([0.5, 0.2, 0.9])
        assert top_k_regret([1, 2], scores) == 0.0

    def test_top_k_regret_positive_otherwise(self):
        scores = np.array([0.5, 0.2, 0.9])
        assert top_k_regret([0, 2], scores) == pytest.approx(0.3)
