"""Tests for the neural-network layer library."""

import numpy as np
import pytest

from repro import nn
from repro.autodiff import Tensor, check_gradients
from repro.nn import (
    CausalConv2d,
    ChannelNorm2d,
    Conv1d,
    Dropout,
    LayerNorm,
    Linear,
    MLP,
    Module,
    ModuleList,
    MultiHeadAttention,
    Parameter,
    PointwiseConv2d,
    ProbSparseAttention,
    Sequential,
)

RNG = np.random.default_rng(11)


def _rand(*shape):
    return RNG.standard_normal(shape).astype(np.float64)


class TestModuleSystem:
    def test_parameter_registration(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.inner = Linear(2, 2)

        toy = Toy()
        names = dict(toy.named_parameters())
        assert "w" in names
        assert "inner.weight" in names
        assert "inner.bias" in names

    def test_num_parameters(self):
        layer = Linear(4, 3)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2), Dropout(0.5))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, rng=np.random.default_rng(1))
        b = Linear(3, 2, rng=np.random.default_rng(2))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_rejects_mismatch(self):
        a = Linear(3, 2)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight.data})

    def test_state_dict_rejects_bad_shape(self):
        a = Linear(3, 2)
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_module_list_iterates_in_order(self):
        layers = ModuleList([Linear(1, 1) for _ in range(3)])
        assert len(layers) == 3
        assert layers[1] is list(layers)[1]

    def test_zero_grad(self):
        layer = Linear(2, 2)
        out = layer(Tensor(_rand(4, 2)))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinear:
    def test_forward_matches_manual(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = _rand(5, 3)
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    def test_gradients(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))

        def fn(x, w, b):
            layer.weight.data = w.data
            layer.bias.data = b.data
            from repro.autodiff import matmul

            return matmul(x, w.transpose()) + b

        check_gradients(fn, [_rand(4, 3), _rand(2, 3), _rand(2)])

    def test_mlp_shapes(self):
        mlp = MLP([4, 8, 2], rng=np.random.default_rng(0))
        out = mlp(Tensor(_rand(7, 4)))
        assert out.shape == (7, 2)

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])


class TestConv:
    def test_causal_conv_shape_preserved(self):
        conv = CausalConv2d(3, 5, kernel_size=2, dilation=2, rng=np.random.default_rng(0))
        out = conv(Tensor(_rand(2, 3, 4, 12)))
        assert out.shape == (2, 5, 4, 12)

    def test_causality(self):
        """Changing a future input must not change past outputs."""
        conv = CausalConv2d(1, 1, kernel_size=2, dilation=1, rng=np.random.default_rng(0))
        x = _rand(1, 1, 1, 8)
        base = conv(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[..., 5] += 10.0
        out = conv(Tensor(x2)).data
        np.testing.assert_allclose(out[..., :5], base[..., :5], rtol=1e-5)
        assert not np.allclose(out[..., 5:], base[..., 5:])

    def test_conv_matches_manual_k2(self):
        conv = CausalConv2d(1, 1, kernel_size=2, dilation=1, bias=False,
                            rng=np.random.default_rng(3))
        x = _rand(1, 1, 1, 6)
        w = conv.weight.data  # (1, 1, 2)
        out = conv(Tensor(x)).data[0, 0, 0]
        padded = np.concatenate([[0.0], x[0, 0, 0]])
        expected = w[0, 0, 0] * padded[:-1] + w[0, 0, 1] * padded[1:]
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_conv_gradients(self):
        def fn(x, w):
            return nn.conv2d_1xk(x, w, dilation=2)

        check_gradients(fn, [_rand(2, 2, 3, 7), _rand(3, 2, 2)])

    def test_pointwise_conv(self):
        conv = PointwiseConv2d(3, 4, rng=np.random.default_rng(0))
        out = conv(Tensor(_rand(2, 3, 5, 6)))
        assert out.shape == (2, 4, 5, 6)

    def test_conv1d_same_padding_shape(self):
        conv = Conv1d(2, 3, kernel_size=3, dilation=2, rng=np.random.default_rng(0))
        out = conv(Tensor(_rand(4, 2, 11)))
        assert out.shape == (4, 3, 11)

    def test_conv1d_causal(self):
        conv = Conv1d(1, 1, kernel_size=3, padding="causal", rng=np.random.default_rng(0))
        x = _rand(1, 1, 9)
        base = conv(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[..., 6] += 5.0
        out = conv(Tensor(x2)).data
        np.testing.assert_allclose(out[..., :6], base[..., :6], rtol=1e-5)

    def test_conv1d_rejects_bad_padding(self):
        with pytest.raises(ValueError):
            nn.conv1d(Tensor(_rand(1, 1, 4)), Tensor(_rand(1, 1, 3)), padding="full")

    def test_conv1d_gradients(self):
        def fn(x, w):
            return nn.conv1d(x, w, dilation=1, padding="same")

        check_gradients(fn, [_rand(2, 2, 6), _rand(3, 2, 3)])


class TestNorm:
    def test_layernorm_normalizes(self):
        ln = LayerNorm(8)
        out = ln(Tensor(_rand(4, 8) * 10 + 3)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_gradients(self):
        ln = LayerNorm(5)
        check_gradients(lambda x: ln(x), [_rand(3, 5)])

    def test_channelnorm_normalizes_channel_axis(self):
        cn = ChannelNorm2d(6)
        out = cn(Tensor(_rand(2, 6, 3, 4) * 4 - 1)).data
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-4)


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = _rand(10, 10)
        np.testing.assert_array_equal(drop(Tensor(x)).data, x)

    def test_train_mode_zeroes_and_scales(self):
        drop = Dropout(0.5, seed=0)
        x = np.ones((100, 100))
        out = drop(Tensor(x)).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        # Inverted dropout preserves the expectation.
        assert abs(out.mean() - 1.0) < 0.05

    def test_zero_rate_identity(self):
        drop = Dropout(0.0)
        x = _rand(5, 5)
        np.testing.assert_array_equal(drop(Tensor(x)).data, x)

    def test_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestAttention:
    def test_mha_shape(self):
        mha = MultiHeadAttention(8, num_heads=2, rng=np.random.default_rng(0))
        out = mha(Tensor(_rand(3, 6, 8)))
        assert out.shape == (3, 6, 8)

    def test_mha_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, num_heads=2)

    def test_mha_gradients_flow(self):
        mha = MultiHeadAttention(4, num_heads=2, rng=np.random.default_rng(0))
        out = mha(Tensor(_rand(2, 3, 4), requires_grad=True))
        out.sum().backward()
        assert mha.q_proj.weight.grad is not None
        assert mha.out_proj.weight.grad is not None

    def test_mask_blocks_attention(self):
        mha = MultiHeadAttention(4, num_heads=1, rng=np.random.default_rng(0))
        x = _rand(1, 4, 4)
        causal = np.tril(np.ones((4, 4), dtype=bool))
        base = mha(Tensor(x), mask=causal).data.copy()
        x2 = x.copy()
        x2[0, 3] += 100.0  # future position
        out = mha(Tensor(x2), mask=causal).data
        np.testing.assert_allclose(out[0, :3], base[0, :3], rtol=1e-4)

    def test_probsparse_reduces_to_full_for_short_sequences(self):
        rng = np.random.default_rng(0)
        sparse = ProbSparseAttention(8, num_heads=2, factor=10.0, rng=rng)
        x = _rand(2, 4, 8)
        full = sparse.inner(Tensor(x)).data
        np.testing.assert_allclose(sparse(Tensor(x)).data, full, rtol=1e-5)

    def test_probsparse_long_sequence_shape_and_grad(self):
        sparse = ProbSparseAttention(8, num_heads=2, factor=1.0,
                                     rng=np.random.default_rng(0))
        x = Tensor(_rand(2, 32, 8), requires_grad=True)
        out = sparse(x)
        assert out.shape == (2, 32, 8)
        out.sum().backward()
        assert sparse.inner.v_proj.weight.grad is not None
